"""The paper's Fig 7: preliminary promise of DR in three scenarios.

Each function reproduces one panel with the §4.2 parameters:

* :func:`run_fig7a` — trace bias (WISE / Fig 4 scenario).
* :func:`run_fig7b` — model bias (FastMPC / Fig 2 scenario).
* :func:`run_fig7c` — variance (CFA / Fig 5 scenario).

Each returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows are the mean/min/max relative evaluation errors over the
requested number of runs (the paper uses 50).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import abr, api
from repro.cbn.scenario import WiseScenario
from repro.cbn.wise import WiseRewardModel
from repro.cfa.scenario import CfaScenario
from repro.core.metrics import relative_error
from repro.core.models import KNNRewardModel
from pathlib import Path

from repro.experiments.harness import ExperimentResult, run_repeated
from repro.runtime import RetryPolicy


def run_fig7a(
    runs: int = 50,
    seed: int = 0,
    scenario: WiseScenario | None = None,
    retry: RetryPolicy | None = None,
    ledger_path: str | Path | None = None,
    resume: bool = False,
    workers: int = 1,
    telemetry_path: str | Path | None = None,
) -> ExperimentResult:
    """Fig 7a — DR vs WISE on the Fig 4 CDN-configuration scenario.

    Per run: generate the 500-per-arrow / 5-per-rare-combo trace, learn a
    fresh CBN (the WISE evaluator), and compare the relative error of the
    WISE DM estimate with DR using the same CBN as its reward model.
    """
    scenario = scenario or WiseScenario()
    old = scenario.old_policy()
    new = scenario.new_policy()

    def run(rng: np.random.Generator) -> Dict[str, float]:
        trace = scenario.generate_trace(rng)
        truth = scenario.ground_truth_value(new, trace)
        wise = api.evaluate(
            trace,
            new,
            estimator="dm",
            model=WiseRewardModel(decision_factors=("frontend", "backend")),
            propensities=old,
            diagnostics=False,
        )
        dr = api.evaluate(
            trace,
            new,
            estimator="dr",
            model=WiseRewardModel(decision_factors=("frontend", "backend")),
            propensities=old,
            diagnostics=False,
        )
        return {
            "wise": relative_error(truth, wise.value),
            "dr": relative_error(truth, dr.value),
        }

    return run_repeated(
        "fig7a-trace-bias",
        run,
        runs=runs,
        seed=seed,
        baseline="wise",
        treatment="dr",
        retry=retry,
        ledger_path=ledger_path,
        resume=resume,
        workers=workers,
        telemetry_path=telemetry_path,
    )


def run_fig7b(
    runs: int = 50,
    seed: int = 0,
    bandwidth_mbps: float = 3.0,
    chunk_count: int = 100,
    exploration: float = 0.25,
    retry: RetryPolicy | None = None,
    ledger_path: str | Path | None = None,
    resume: bool = False,
    workers: int = 1,
    telemetry_path: str | Path | None = None,
) -> ExperimentResult:
    """Fig 7b — DR vs the FastMPC evaluator on the ABR scenario.

    Per run (§4.2 parameters): a 100-chunk session with five bitrates and
    constant bandwidth b; the old (logging) policy is buffer-based BBA
    with exploration; observed throughput is b·p(r) with p monotone in
    the bitrate.  The new policy is MPC ("FastMPC").  The baseline
    estimator is the Direct Method with the throughput-independence
    reward model; DR adds the importance-weighted residual correction.
    """
    manifest = abr.VideoManifest(chunk_count=chunk_count)
    efficiency = abr.BitrateEfficiency(manifest.ladder, floor=0.2, exponent=0.8)
    truth_model = abr.ObservedThroughputModel(efficiency)
    oracle = abr.ChunkRewardOracle(manifest, truth_model, bandwidth_mbps)
    new_controller = abr.ExploratoryABR(abr.MPCPolicy(manifest), epsilon=0.05)
    new_policy = abr.abr_core_policy(new_controller, manifest)

    def run(rng: np.random.Generator) -> Dict[str, float]:
        # A lean starting buffer (2 s) keeps the session in the regime
        # where phantom-rebuffer predictions matter: the biased model's
        # download-time overestimates then translate into large QoE
        # errors on most chunks, not just occasional ones.
        simulator = abr.SessionSimulator(
            manifest,
            abr.ConstantBandwidth(bandwidth_mbps),
            abr.ObservedThroughputModel(efficiency, noise_sigma=0.05),
            initial_buffer_seconds=2.0,
        )
        old_controller = abr.ExploratoryABR(
            abr.BufferBasedPolicy(manifest.ladder, reservoir_seconds=4.0),
            epsilon=exploration,
        )
        session = simulator.run(old_controller, rng)
        trace = session.to_trace()
        truth = oracle.policy_value(new_policy, trace)
        fastmpc = api.evaluate(
            trace,
            new_policy,
            estimator="dm",
            model=abr.IndependentThroughputModel(manifest),
            diagnostics=False,
        )
        dr = api.evaluate(
            trace,
            new_policy,
            estimator="dr",
            model=abr.IndependentThroughputModel(manifest),
            diagnostics=False,
        )
        return {
            "fastmpc": relative_error(truth, fastmpc.value),
            "dr": relative_error(truth, dr.value),
        }

    return run_repeated(
        "fig7b-model-bias",
        run,
        runs=runs,
        seed=seed,
        baseline="fastmpc",
        treatment="dr",
        retry=retry,
        ledger_path=ledger_path,
        resume=resume,
        workers=workers,
        telemetry_path=telemetry_path,
    )


def run_fig7c(
    runs: int = 50,
    seed: int = 0,
    scenario: CfaScenario | None = None,
    knn_k: int = 5,
    retry: RetryPolicy | None = None,
    ledger_path: str | Path | None = None,
    resume: bool = False,
    workers: int = 1,
    telemetry_path: str | Path | None = None,
) -> ExperimentResult:
    """Fig 7c — DR vs the CFA matching evaluator.

    Per run: a fresh randomly-logged trace; the CFA baseline averages the
    rewards of clients whose logged decision matches the new policy
    (high-variance, few matches — Fig 5); DR uses a k-NN reward model
    (§4.2) for every client plus the importance correction.
    """
    scenario = scenario or CfaScenario()
    quality = scenario.quality()
    old = scenario.old_policy()
    new = scenario.new_policy(quality)

    def run(rng: np.random.Generator) -> Dict[str, float]:
        trace = scenario.generate_trace(rng, quality)
        truth = scenario.ground_truth_value(new, trace, quality)
        cfa_result = api.evaluate(trace, new, estimator="matching", diagnostics=False)
        dr = api.evaluate(
            trace,
            new,
            estimator="dr",
            model=KNNRewardModel(k=knn_k),
            propensities=old,
            diagnostics=False,
        )
        return {
            "cfa": relative_error(truth, cfa_result.value),
            "dr": relative_error(truth, dr.value),
        }

    return run_repeated(
        "fig7c-variance",
        run,
        runs=runs,
        seed=seed,
        baseline="cfa",
        treatment="dr",
        retry=retry,
        ledger_path=ledger_path,
        resume=resume,
        workers=workers,
        telemetry_path=telemetry_path,
    )
