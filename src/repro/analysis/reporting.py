"""Render :class:`~repro.analysis.linter.LintReport` for humans and CI.

Three formats:

* **text** — one ``path:line: RULE message`` line per finding plus a
  summary footer (the historical format, now with warning/baseline/cache
  counters when relevant).
* **json** — the report's stable JSON document, for tooling.
* **sarif** — SARIF 2.1.0, the interchange format GitHub code scanning
  and most editors ingest; error findings map to level ``error``,
  warning findings to level ``warning``.

Exit-code policy (:func:`exit_code_for`): ``0`` for a clean run (warnings
alone never fail), ``1`` when error-severity violations remain after
noqa/baseline filtering, ``2`` for usage errors (unknown rule ids,
unreadable paths — raised as :class:`~repro.errors.AnalysisError` and
mapped by the CLI).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.linter import LintReport, Violation, rule_class_for
from repro.errors import AnalysisError

#: The SARIF version and schema this renderer targets.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"


def render_text(report: LintReport) -> str:
    """Human-readable report: findings first, summary footer last."""
    lines: List[str] = []
    for violation in report.violations:
        lines.append(f"{violation.location}: {violation.rule_id} {violation.message}")
    for warning in report.warnings:
        lines.append(
            f"{warning.location}: {warning.rule_id} [warning] {warning.message}"
        )
    lines.append(_summary_line(report))
    extras = _extras_line(report)
    if extras:
        lines.append(extras)
    return "\n".join(lines)


def _summary_line(report: LintReport) -> str:
    rules = len(report.rule_ids)
    if report.ok:
        return f"ok: {report.checked_files} file(s) clean under {rules} rule(s)"
    files_hit = len({violation.path for violation in report.violations})
    return (
        f"{len(report.violations)} violation(s) in {files_hit} file(s) "
        f"({report.checked_files} checked)"
    )


def _extras_line(report: LintReport) -> Optional[str]:
    parts: List[str] = []
    if report.warnings:
        parts.append(f"{len(report.warnings)} warning(s)")
    if report.baselined:
        parts.append(f"{report.baselined} baselined")
    if report.cached_files:
        parts.append(
            f"cache: {report.cached_files} hit(s), "
            f"{report.analyzed_files} analyzed"
        )
    return "; ".join(parts) if parts else None


def render_json(report: LintReport) -> str:
    """Machine-readable report; round-trips through ``json.loads``."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def _sarif_rule(rule_id: str) -> Dict[str, object]:
    try:
        description = rule_class_for(rule_id).description
    except AnalysisError:
        # Hand-built reports may carry ids outside the registry; the
        # SARIF rule metadata then falls back to the bare id.
        description = rule_id
    return {
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
    }


def _sarif_result(
    violation: Violation, rule_index: Dict[str, int]
) -> Dict[str, object]:
    level = "warning" if violation.severity == "warning" else "error"
    result: Dict[str, object] = {
        "ruleId": violation.rule_id,
        "level": level,
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(violation.line, 1)},
                }
            }
        ],
    }
    if violation.rule_id in rule_index:
        result["ruleIndex"] = rule_index[violation.rule_id]
    return result


def render_sarif(report: LintReport) -> str:
    """The report as a SARIF 2.1.0 document (errors + warnings)."""
    rules = [_sarif_rule(rule_id) for rule_id in report.rule_ids]
    rule_index = {rule_id: i for i, rule_id in enumerate(report.rule_ids)}
    results = [
        _sarif_result(violation, rule_index)
        for violation in (*report.violations, *report.warnings)
    ]
    document = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(report: LintReport, fmt: str) -> str:
    """Dispatch on format name (``text``/``json``/``sarif``)."""
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise AnalysisError(
            f"unknown format {fmt!r}; choose from {', '.join(sorted(_RENDERERS))}"
        )
    return renderer(report)


def exit_code_for(report: LintReport) -> int:
    """``0`` clean (warnings never fail), ``1`` violations remain; usage
    errors surface as exit ``2`` via AnalysisError in the CLI."""
    return 0 if report.ok else 1
