"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`run_randomness_ablation` — estimator error vs logging
  exploration epsilon (§4.1 "Coverage and randomness"), including
  known- vs estimated-propensity DR.
* :func:`run_dimensionality_ablation` — error vs decision-space size
  (§3's curse of dimensionality), including clipped IPS.
* :func:`run_trace_size_ablation` — error vs trace length (§2.2 data
  scarcity).
* :func:`run_second_order_ablation` — DR error vs the product of reward
  -model bias and propensity error (§3's "second-order bias").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.estimators import (
    IPS,
    ClippedIPS,
    DirectMethod,
    DoublyRobust,
    SelfNormalizedDR,
    SelfNormalizedIPS,
)
from repro.core.metrics import ErrorSummary, relative_error
from repro.core.models import OracleRewardModel, TabularMeanModel
from repro.core.propensity import EmpiricalPropensityModel
from repro.errors import EstimatorError
from repro.experiments.harness import ExperimentResult, run_repeated
from repro.workloads.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of an ablation sweep."""

    x: float
    summaries: Dict[str, ErrorSummary]


def render_sweep(points: Sequence[SweepPoint], x_label: str) -> str:
    """Text table: one row per sweep point, one column per estimator."""
    if not points:
        return "(empty sweep)"
    labels = list(points[0].summaries.keys())
    header = f"{x_label:>12}  " + "  ".join(f"{label:>12}" for label in labels)
    lines = [header]
    for point in points:
        cells = "  ".join(
            f"{point.summaries[label].mean:12.4f}" for label in labels
        )
        lines.append(f"{point.x:12.4g}  {cells}")
    return "\n".join(lines)


def run_randomness_ablation(
    epsilons: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    runs: int = 30,
    n_trace: int = 1500,
    seed: int = 0,
) -> List[SweepPoint]:
    """Error of DM/IPS/SNIPS/DR/SNDR/DR-estimated-propensity vs logging
    exploration.

    At epsilon = 1 the logging policy is uniform (IPS thrives); as
    epsilon shrinks, importance weights blow up on the new policy's
    preferred decisions and model-free estimators degrade — DM's bias is
    constant, and DR tracks the better of the two.
    """
    workload = SyntheticWorkload()
    new = workload.optimal_policy()
    points: List[SweepPoint] = []
    for epsilon in epsilons:
        old = workload.logging_policy(epsilon=epsilon)

        def run(rng: np.random.Generator, old=old) -> Dict[str, float]:
            trace = workload.generate_trace(old, n_trace, rng)
            truth = workload.ground_truth_value(new, trace)
            outcome: Dict[str, float] = {}
            outcome["dm"] = relative_error(
                truth,
                DirectMethod(TabularMeanModel(key_features=("f0",)))
                .estimate(new, trace)
                .value,
            )
            outcome["ips"] = relative_error(
                truth, IPS().estimate(new, trace, old_policy=old).value
            )
            outcome["snips"] = relative_error(
                truth, SelfNormalizedIPS().estimate(new, trace, old_policy=old).value
            )
            outcome["dr"] = relative_error(
                truth,
                DoublyRobust(TabularMeanModel(key_features=("f0",)))
                .estimate(new, trace, old_policy=old)
                .value,
            )
            outcome["sndr"] = relative_error(
                truth,
                SelfNormalizedDR(TabularMeanModel(key_features=("f0",)))
                .estimate(new, trace, old_policy=old)
                .value,
            )
            estimated = EmpiricalPropensityModel(
                workload.space(), key_features=("f0",)
            ).fit(trace)
            outcome["dr-est-prop"] = relative_error(
                truth,
                DoublyRobust(TabularMeanModel(key_features=("f0",)))
                .estimate(new, trace, propensity_model=estimated)
                .value,
            )
            return outcome

        result = run_repeated(
            f"randomness-eps-{epsilon}", run, runs=runs, seed=seed
        )
        points.append(SweepPoint(x=float(epsilon), summaries=result.summaries))
    return points


def run_dimensionality_ablation(
    decision_counts: Sequence[int] = (2, 4, 8, 16),
    runs: int = 30,
    n_trace: int = 1200,
    seed: int = 0,
) -> List[SweepPoint]:
    """Error vs decision-space size under mildly-explored logging.

    Includes clipped IPS to show the clipping bias/variance trade as
    weights grow with |D|.
    """
    points: List[SweepPoint] = []
    for count in decision_counts:
        workload = SyntheticWorkload(n_decisions=count)
        new = workload.optimal_policy()
        old = workload.logging_policy(epsilon=0.3)

        def run(rng: np.random.Generator, workload=workload, new=new, old=old) -> Dict[str, float]:
            trace = workload.generate_trace(old, n_trace, rng)
            truth = workload.ground_truth_value(new, trace)
            return {
                "dm": relative_error(
                    truth,
                    DirectMethod(TabularMeanModel(key_features=("f0",)))
                    .estimate(new, trace)
                    .value,
                ),
                "ips": relative_error(
                    truth, IPS().estimate(new, trace, old_policy=old).value
                ),
                "clipped-ips": relative_error(
                    truth,
                    ClippedIPS(clip=10.0)
                    .estimate(new, trace, old_policy=old)
                    .value,
                ),
                "dr": relative_error(
                    truth,
                    DoublyRobust(TabularMeanModel(key_features=("f0",)))
                    .estimate(new, trace, old_policy=old)
                    .value,
                ),
            }

        result = run_repeated(f"dimensionality-{count}", run, runs=runs, seed=seed)
        points.append(SweepPoint(x=float(count), summaries=result.summaries))
    return points


def run_trace_size_ablation(
    sizes: Sequence[int] = (100, 300, 1000, 3000),
    runs: int = 30,
    seed: int = 0,
) -> List[SweepPoint]:
    """Error vs trace length for DM/IPS/DR (§2.2's data-scarcity axis)."""
    workload = SyntheticWorkload()
    new = workload.optimal_policy()
    old = workload.logging_policy(epsilon=0.3)
    points: List[SweepPoint] = []
    for size in sizes:

        def run(rng: np.random.Generator, size=size) -> Dict[str, float]:
            trace = workload.generate_trace(old, size, rng)
            truth = workload.ground_truth_value(new, trace)
            return {
                "dm": relative_error(
                    truth,
                    DirectMethod(TabularMeanModel(key_features=("f0",)))
                    .estimate(new, trace)
                    .value,
                ),
                "ips": relative_error(
                    truth, IPS().estimate(new, trace, old_policy=old).value
                ),
                "dr": relative_error(
                    truth,
                    DoublyRobust(TabularMeanModel(key_features=("f0",)))
                    .estimate(new, trace, old_policy=old)
                    .value,
                ),
            }

        result = run_repeated(f"trace-size-{size}", run, runs=runs, seed=seed)
        points.append(SweepPoint(x=float(size), summaries=result.summaries))
    return points


@dataclass(frozen=True)
class SecondOrderPoint:
    """One cell of the second-order-bias grid."""

    model_bias: float
    propensity_error: float
    dm_error_mean: float
    ips_error_mean: float
    dr_error_mean: float


def run_second_order_ablation(
    model_biases: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    propensity_errors: Sequence[float] = (0.0, 0.25, 0.5),
    runs: int = 20,
    n_trace: int = 1500,
    seed: int = 0,
) -> List[SecondOrderPoint]:
    """The §3 "second-order bias" property, empirically.

    Uses an :class:`~repro.core.models.OracleRewardModel` with an
    additive bias knob, and corrupts propensities multiplicatively by
    ``(1 + propensity_error)``.  DR's error should stay near zero along
    both axes (where either ingredient is accurate) and grow only when
    *both* are wrong — roughly like the product of the two errors.
    """
    workload = SyntheticWorkload(noise_scale=0.2)
    new = workload.optimal_policy()
    old = workload.logging_policy(epsilon=0.3)
    grid: List[SecondOrderPoint] = []
    for model_bias in model_biases:
        for propensity_error in propensity_errors:
            dm_errors: List[float] = []
            ips_errors: List[float] = []
            dr_errors: List[float] = []
            for index in range(runs):
                rng = np.random.default_rng(seed * 65537 + index)
                trace = workload.generate_trace(old, n_trace, rng)
                if propensity_error:
                    trace = _corrupt_propensities(trace, 1.0 + propensity_error)
                truth = workload.ground_truth_value(new, trace)
                model = OracleRewardModel(
                    workload.true_mean_reward, bias=model_bias
                )
                dm_errors.append(
                    relative_error(
                        truth, DirectMethod(model).estimate(new, trace).value
                    )
                )
                ips_errors.append(
                    relative_error(truth, IPS().estimate(new, trace).value)
                )
                dr_errors.append(
                    relative_error(
                        truth, DoublyRobust(model).estimate(new, trace).value
                    )
                )
            grid.append(
                SecondOrderPoint(
                    model_bias=float(model_bias),
                    propensity_error=float(propensity_error),
                    dm_error_mean=float(np.mean(dm_errors)),
                    ips_error_mean=float(np.mean(ips_errors)),
                    dr_error_mean=float(np.mean(dr_errors)),
                )
            )
    return grid


def run_model_family_ablation(
    runs: int = 20,
    seed: int = 0,
    scenario=None,
) -> List[SweepPoint]:
    """DR error by reward-model family on the CFA scenario.

    DESIGN.md design choice #3: the DM inside DR can be tabular, k-NN
    (the paper's §4.2 choice), ridge, or a regression tree.  The
    interaction-heavy CFA quality surface separates them: additive
    models are misspecified, memorisers are noisy — and DR's correction
    flattens much of the difference.
    """
    from repro.cfa.scenario import CfaScenario
    from repro.core.estimators import DirectMethod
    from repro.core.models import (
        DecisionTreeRewardModel,
        KNNRewardModel,
        RidgeRewardModel,
        TabularMeanModel,
    )

    scenario = scenario or CfaScenario(n_clients=800)
    quality = scenario.quality()
    old = scenario.old_policy()
    new = scenario.new_policy(quality)
    families = {
        "tabular": lambda: TabularMeanModel(key_features=("asn",)),
        "knn": lambda: KNNRewardModel(k=5),
        "ridge": lambda: RidgeRewardModel(alpha=1.0),
        "tree": lambda: DecisionTreeRewardModel(max_depth=8),
    }
    points: List[SweepPoint] = []
    for position, (family, factory) in enumerate(families.items()):

        def run(rng: np.random.Generator, factory=factory) -> Dict[str, float]:
            trace = scenario.generate_trace(rng, quality)
            truth = scenario.ground_truth_value(new, trace, quality)
            dm = DirectMethod(factory()).estimate(new, trace)
            dr = DoublyRobust(factory()).estimate(new, trace, old_policy=old)
            return {
                "dm": relative_error(truth, dm.value),
                "dr": relative_error(truth, dr.value),
            }

        result = run_repeated(f"model-family-{family}", run, runs=runs, seed=seed)
        point = SweepPoint(x=float(position), summaries=result.summaries)
        points.append(point)
    return points


MODEL_FAMILY_LABELS = ("tabular", "knn", "ridge", "tree")


def render_model_family_table(points: Sequence[SweepPoint]) -> str:
    """Text table for the model-family ablation."""
    lines = [f"{'family':>10}  {'dm error':>9}  {'dr error':>9}"]
    for label, point in zip(MODEL_FAMILY_LABELS, points):
        lines.append(
            f"{label:>10}  {point.summaries['dm'].mean:9.4f}  "
            f"{point.summaries['dr'].mean:9.4f}"
        )
    return "\n".join(lines)


def _corrupt_propensities(trace, factor: float):
    """Scale logged propensities by *factor* (clamped into (0, 1])."""
    from repro.core.types import Trace

    return Trace(
        record.with_propensity(min(1.0, record.propensity * factor))
        for record in trace
    )


def render_second_order_grid(grid: Sequence[SecondOrderPoint]) -> str:
    """Text table of the second-order-bias grid."""
    lines = [
        f"{'model bias':>10}  {'prop err':>8}  {'dm':>8}  {'ips':>8}  {'dr':>8}"
    ]
    for point in grid:
        lines.append(
            f"{point.model_bias:10.2f}  {point.propensity_error:8.2f}  "
            f"{point.dm_error_mean:8.4f}  {point.ips_error_mean:8.4f}  "
            f"{point.dr_error_mean:8.4f}"
        )
    return "\n".join(lines)
