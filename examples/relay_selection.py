#!/usr/bin/env python3
"""VoIP relay selection: the VIA scenario (Fig 3).

A call provider relays (mostly) NAT-ed calls through managed relay
paths.  Evaluating "relay everything" from those logs with per-AS-pair
averages underrates relaying, because NAT-ed endpoints have worse
last-mile quality and they dominate the relay buckets.  Three fixes are
compared: DR over the NAT-blind model, the paper's "add the feature"
remedy, and both combined.

Run:  python examples/relay_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import core
from repro.relay import RelayScenario


def main() -> None:
    rng = np.random.default_rng(31)
    scenario = RelayScenario(n_calls=4000)

    trace = scenario.generate_trace(rng)
    old = scenario.old_policy()
    new = scenario.new_policy()  # relay ~90% of calls, NAT or not

    relayed = trace.filter(lambda r: r.decision != "direct")
    nat_share = np.mean([r.context["nat"] == "nat" for r in relayed])
    direct = trace.filter(lambda r: r.decision == "direct")
    print(f"call log: {len(trace)} calls, {len(relayed)} relayed")
    print(f"NAT share among relayed calls: {nat_share:.0%}  "
          f"(population NAT share: {scenario.nat_fraction:.0%})")
    print(f"mean quality: relayed {relayed.mean_reward():.3f}, "
          f"direct {direct.mean_reward():.3f}  <- selection bias at work\n")

    truth = scenario.ground_truth_value(new, trace)
    rows = []

    via = core.DirectMethod(scenario.via_model()).estimate(new, trace)
    rows.append(("VIA evaluator (per-pair means, NAT-blind)", via.value))

    dr_blind = core.DoublyRobust(scenario.via_model()).estimate(
        new, trace, old_policy=old
    )
    rows.append(("DR over the NAT-blind model", dr_blind.value))

    feature_fix = core.DirectMethod(scenario.full_model()).estimate(new, trace)
    rows.append(("DM with the NAT feature added (paper's remedy)", feature_fix.value))

    dr_full = core.DoublyRobust(scenario.full_model()).estimate(
        new, trace, old_policy=old
    )
    rows.append(("DR with the NAT feature", dr_full.value))

    print(f"ground-truth quality of 'relay everything': {truth:.4f}\n")
    print(f"{'evaluator':<48} {'estimate':>9} {'rel.err':>8}")
    for name, value in rows:
        print(f"{name:<48} {value:9.4f} "
              f"{core.relative_error(truth, value):8.4f}")

    print("\n-> the NAT-blind average is biased; DR corrects it even "
          "without the feature, and the feature+DR combination is best "
          "(paper §3, 'Why DR for networking').")


if __name__ == "__main__":
    main()
