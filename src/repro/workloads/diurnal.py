"""Diurnal (state-labelled) trace generation.

Marries the :mod:`repro.netsim.diurnal` load profiles with a base
workload: each record gets an arrival hour drawn from the profile, a
state label from the profile's segment, and a reward scaled by a
per-state performance factor ("peak-hour performance is on average 20%
worse", §4.3).  The result feeds the state-aware estimators directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.policy import Policy
from repro.core.types import Trace, TraceRecord
from repro.errors import SimulationError
from repro.netsim.diurnal import DiurnalProfile, DiurnalSampler
from repro.workloads.synthetic import SyntheticWorkload

DEFAULT_FACTORS: Mapping[str, float] = {"peak": 0.8, "normal": 1.0, "off-peak": 1.1}


@dataclass(frozen=True)
class DiurnalWorkload:
    """A synthetic workload whose rewards depend on the time of day.

    Parameters
    ----------
    base:
        The underlying context/decision/reward workload.
    profile:
        Load profile determining arrival density and state labels.
    state_factors:
        Multiplicative reward factor per state label
        (``peak``/``normal``/``off-peak``).
    """

    base: SyntheticWorkload = field(default_factory=SyntheticWorkload)
    profile: DiurnalProfile = field(default_factory=DiurnalProfile)
    state_factors: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FACTORS)
    )

    def __post_init__(self) -> None:
        labels = {self.profile.segment_label(h) for h in np.arange(0.0, 24.0, 0.25)}
        missing = labels - set(self.state_factors)
        if missing:
            raise SimulationError(
                f"state_factors missing entries for states {sorted(missing)}"
            )
        if any(factor <= 0 for factor in self.state_factors.values()):
            raise SimulationError("state factors must be positive")

    def true_mean_reward(self, context, decision, state: str) -> float:
        """Noise-free reward of (context, decision) in *state*."""
        try:
            factor = self.state_factors[state]
        except KeyError:
            raise SimulationError(f"unknown state {state!r}") from None
        return factor * self.base.true_mean_reward(context, decision)

    def generate_trace(
        self,
        old_policy: Policy,
        n: int,
        rng: np.random.Generator,
    ) -> Trace:
        """A state-labelled trace with diurnal arrival density.

        Each record carries ``timestamp`` = arrival hour and ``state`` =
        the profile's segment label for that hour.
        """
        if n <= 0:
            raise SimulationError(f"n must be positive, got {n}")
        sampler = DiurnalSampler(self.profile)
        population = self.base.population()
        records = []
        for _ in range(n):
            hour = sampler.sample_hour(rng)
            state = self.profile.segment_label(hour)
            context = population.sample(rng)
            decision = old_policy.sample(context, rng)
            reward = self.true_mean_reward(context, decision, state) + rng.normal(
                0.0, self.base.noise_scale
            )
            records.append(
                TraceRecord(
                    context=context,
                    decision=decision,
                    reward=float(reward),
                    propensity=old_policy.propensity(decision, context),
                    timestamp=float(hour),
                    state=state,
                )
            )
        return Trace(records)

    def ground_truth_value(self, policy: Policy, trace: Trace, state: str) -> float:
        """Exact V(policy, T) if deployment runs entirely in *state*."""
        total = 0.0
        for record in trace:
            for decision, probability in policy.probabilities(record.context).items():
                if probability > 0:
                    total += probability * self.true_mean_reward(
                        record.context, decision, state
                    )
        return total / len(trace)
