"""The on-disk sharded trace format: shard files plus a JSON manifest.

A **sharded trace** is a directory of ``shard-NNNNN.npz`` files plus one
``manifest.json``.  Each shard holds the same struct-of-arrays layout as
:class:`~repro.core.types.TraceColumns` — one array per record field —
so readers can hand whole columns to the batched estimator paths without
ever materialising per-record Python objects for the full trace:

* ``rewards`` / ``propensities`` / ``timestamps`` — ``float64`` columns
  (``nan`` encodes a missing propensity/timestamp, which
  :class:`~repro.core.types.TraceRecord` stores as ``None``);
* ``decision_codes`` + ``decision_vocab`` — decisions as integer codes
  into a per-shard first-seen vocabulary (vocabulary entries are
  JSON-encoded with the same tuple tagging as ``Trace.to_jsonl``, so
  composite decisions like ``("cdn-1", 720)`` round-trip exactly);
* ``state_codes`` + ``state_vocab`` — system-state labels, code ``-1``
  encoding ``None``;
* one column per context feature, named ``feature_<i>`` in sorted
  feature-name order.  A feature column is stored as raw ``float64`` /
  ``int64`` when every value in the shard is a plain Python float/int,
  and falls back to the coded (codes + JSON vocabulary) encoding for
  everything else — both are exact round-trips.

The manifest records the format version, the feature schema and its
hash, per-shard record counts, and per-shard reward/propensity
summaries.  **Invalidation rules** (enforced by the reader, documented
in DESIGN.md §10): a manifest whose ``version`` differs from
:data:`FORMAT_VERSION` is refused; a manifest whose ``schema_hash`` does
not match the hash recomputed from its own schema is refused; a shard
whose array lengths disagree with the manifest's record count for it is
refused at load time.  Writers must only ever create a directory
atomically-enough that a torn write leaves no ``manifest.json`` behind
(the manifest is written last, after every shard has been flushed).
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.types import (
    ClientContext,
    Trace,
    TraceRecord,
    _decode_value,
    _encode_value,
)
from repro.errors import StoreError, TraceError
from repro.obs.spans import observe, recording, span

#: Identifies a repro shard directory; readers refuse anything else.
FORMAT_NAME = "repro-sharded-trace"

#: Bump on any incompatible layout change; readers refuse mismatches.
FORMAT_VERSION = 1

#: Manifest filename inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Default records per shard for writers that are not told otherwise.
DEFAULT_SHARD_SIZE = 100_000

#: Raw (non-coded) feature column encodings.
_RAW_KINDS = ("f8", "i8")


def schema_hash(feature_names: Sequence[str]) -> str:
    """Deterministic hash of a trace's feature schema.

    Covers the format version and the sorted feature names — the two
    things that decide whether a reader can interpret the columns at
    all.  Stored in the manifest and recomputed by the reader; a
    mismatch means the manifest was hand-edited or corrupted.
    """
    payload = json.dumps(
        {"version": FORMAT_VERSION, "features": sorted(feature_names)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def shard_filename(index: int) -> str:
    """Canonical filename of the *index*-th shard."""
    return f"shard-{index:05d}.npz"


def _canonical(value: Any) -> Any:
    """Normalise numpy scalars to plain Python so JSON vocabularies and
    equality against freshly-decoded values both behave."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _encode_object_column(values: List[Any]) -> Tuple[np.ndarray, str]:
    """Code *values* into a first-seen vocabulary.

    Returns the ``intp`` code array and the JSON-encoded vocabulary
    (tuple-tagged, exactly like ``Trace.to_jsonl``).
    """
    codes = np.empty(len(values), dtype=np.intp)
    vocabulary: List[Any] = []
    positions: Dict[Any, int] = {}
    for index, value in enumerate(values):
        # Keyed by (type, value): Python hashes True == 1 == 1.0, which
        # would otherwise conflate vocabulary entries that must decode
        # back to distinct objects.
        key = (value.__class__, value)
        code = positions.get(key)
        if code is None:
            code = len(vocabulary)
            positions[key] = code
            vocabulary.append(value)
        codes[index] = code
    encoded = json.dumps([_encode_value(entry) for entry in vocabulary])
    return codes, encoded


def _decode_object_column(codes: np.ndarray, vocabulary_json: str) -> List[Any]:
    """Inverse of :func:`_encode_object_column`."""
    vocabulary = [_decode_value(entry) for entry in json.loads(vocabulary_json)]
    return [vocabulary[int(code)] for code in codes]


def _encode_feature_column(values: List[Any]) -> Tuple[str, np.ndarray, Optional[str]]:
    """Pick the tightest exact encoding for one feature column.

    ``("f8", array, None)`` when every value is a plain float,
    ``("i8", array, None)`` when every value is a plain int that fits
    ``int64``, else ``("coded", codes, vocab_json)``.  ``bool`` is an
    ``int`` subclass but must round-trip as ``bool``, so it always takes
    the coded path.
    """
    if values and all(type(value) is float for value in values):
        return "f8", np.asarray(values, dtype=np.float64), None
    if values and all(
        type(value) is int and -(2**63) <= value < 2**63 for value in values
    ):
        return "i8", np.asarray(values, dtype=np.int64), None
    codes, vocabulary = _encode_object_column(values)
    return "coded", codes, vocabulary


def _decode_feature_column(
    kind: str, array: np.ndarray, vocabulary_json: Optional[str]
) -> List[Any]:
    """Inverse of :func:`_encode_feature_column`."""
    if kind in _RAW_KINDS:
        return array.tolist()
    return _decode_object_column(array, vocabulary_json)


def _summary(values: np.ndarray) -> Dict[str, float]:
    """Min/max/sum summary of one finite-or-nan float column."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return {"count": 0, "min": None, "max": None, "sum": 0.0}
    return {
        "count": int(finite.size),
        "min": float(finite.min()),
        "max": float(finite.max()),
        "sum": float(finite.sum()),
    }


class ShardWriter:
    """Stream records into a shard directory, one shard per ``shard_size``.

    Usage::

        with ShardWriter(directory, shard_size=100_000) as writer:
            for record in records:
                writer.append(record)
        sharded = ShardedTrace(directory)

    The writer buffers at most one shard of records at a time, so a
    10M-record trace can be written with O(shard_size) memory.  The first
    record fixes the feature schema; later records with a different
    schema raise :class:`~repro.errors.TraceError` (the format stores
    one column per feature, so a sharded trace is schema-consistent by
    construction).  The manifest is written by :meth:`close`, after the
    final shard — a crash mid-write leaves shards but no manifest, and
    the reader refuses the directory.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        shard_size: int = DEFAULT_SHARD_SIZE,
    ):
        if shard_size <= 0:
            raise StoreError(f"shard_size must be positive, got {shard_size}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        if (self._directory / MANIFEST_NAME).exists():
            raise StoreError(
                f"{self._directory} already holds a sharded trace; "
                "refusing to overwrite it"
            )
        self._shard_size = int(shard_size)
        self._feature_names: Optional[Tuple[str, ...]] = None
        self._buffer: List[TraceRecord] = []
        self._shards: List[Dict[str, Any]] = []
        self._total = 0
        self._closed = False

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    @property
    def directory(self) -> Path:
        """The shard directory being written."""
        return self._directory

    def append(self, record: TraceRecord) -> None:
        """Buffer one record, flushing a full shard to disk."""
        if self._closed:
            raise StoreError("ShardWriter is closed")
        names = record.context.keys()
        if self._feature_names is None:
            self._feature_names = names
        elif names != self._feature_names:
            raise TraceError(
                "sharded traces require one feature schema; record "
                f"{self._total + len(self._buffer)} has {names}, expected "
                f"{self._feature_names}"
            )
        self._buffer.append(record)
        if len(self._buffer) >= self._shard_size:
            self._flush_shard()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append every record of *records* in order."""
        for record in records:
            self.append(record)

    def _flush_shard(self) -> None:
        records = self._buffer
        self._buffer = []
        index = len(self._shards)
        count = len(records)
        arrays: Dict[str, np.ndarray] = {}
        rewards = np.empty(count, dtype=np.float64)
        propensities = np.empty(count, dtype=np.float64)
        timestamps = np.empty(count, dtype=np.float64)
        decisions: List[Any] = []
        states: List[Any] = []
        for position, record in enumerate(records):
            rewards[position] = record.reward
            propensities[position] = (
                np.nan if record.propensity is None else record.propensity
            )
            timestamps[position] = (
                np.nan if record.timestamp is None else record.timestamp
            )
            decisions.append(_canonical(record.decision))
            states.append(_canonical(record.state))
        arrays["rewards"] = rewards
        arrays["propensities"] = propensities
        arrays["timestamps"] = timestamps
        decision_codes, decision_vocab = _encode_object_column(decisions)
        arrays["decision_codes"] = decision_codes
        arrays["decision_vocab"] = np.asarray(decision_vocab)
        state_values = [state for state in states if state is not None]
        state_codes, state_vocab = _encode_object_column(state_values)
        padded = np.full(count, -1, dtype=np.intp)
        padded[[i for i, state in enumerate(states) if state is not None]] = (
            state_codes
        )
        arrays["state_codes"] = padded
        arrays["state_vocab"] = np.asarray(state_vocab)
        feature_kinds: List[str] = []
        for feature_index, name in enumerate(self._feature_names or ()):
            column = [
                _canonical(record.context[name]) for record in records
            ]
            kind, array, vocabulary = _encode_feature_column(column)
            feature_kinds.append(kind)
            arrays[f"feature_{feature_index}"] = array
            if vocabulary is not None:
                arrays[f"feature_{feature_index}_vocab"] = np.asarray(vocabulary)
        path = self._directory / shard_filename(index)
        with span("store.write.shard", shard=index):
            with open(path, "wb") as handle:
                np.savez(handle, **arrays)
        if recording():
            observe("store.shard.bytes", float(path.stat().st_size))
        self._shards.append(
            {
                "file": path.name,
                "records": count,
                "feature_kinds": feature_kinds,
                "rewards": _summary(rewards),
                "propensities": _summary(propensities),
            }
        )
        self._total += count

    def close(self) -> Path:
        """Flush the final partial shard and write the manifest.

        Returns the manifest path.  Closing a writer that saw no records
        raises :class:`~repro.errors.StoreError` — an empty sharded
        trace cannot be evaluated and is almost certainly a bug at the
        call site.
        """
        if self._closed:
            return self._directory / MANIFEST_NAME
        if self._buffer:
            self._flush_shard()
        if self._total == 0:
            raise StoreError(
                f"{self._directory}: refusing to write an empty sharded trace"
            )
        features = sorted(self._feature_names or ())
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "schema": {"features": features},
            "schema_hash": schema_hash(features),
            "total_records": self._total,
            "requested_shard_size": self._shard_size,
            "shards": self._shards,
        }
        path = self._directory / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        self._closed = True
        return path


def write_shards(
    records: Iterable[TraceRecord],
    directory: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Path:
    """Write *records* (any iterable, consumed once) as a sharded trace.

    Returns the manifest path.  Memory stays O(shard_size) however large
    the iterable is, which is the point: pair it with a generator (e.g.
    :meth:`repro.workloads.SyntheticWorkload.iter_records` or
    :func:`iter_jsonl_records`) and a 10M-record trace never exists in
    RAM.
    """
    with span("store.write", directory=str(directory)):
        with ShardWriter(directory, shard_size=shard_size) as writer:
            writer.extend(records)
        return writer.close()


def iter_jsonl_records(path: Union[str, Path]) -> Iterable[TraceRecord]:
    """Stream :class:`TraceRecord` objects from a ``Trace.to_jsonl`` file.

    One line is decoded at a time, so converting a large JSONL trace to
    shards (``repro shard``) never holds the full trace in memory.
    """
    from repro.core.types import _record_from_json

    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_number}: invalid JSON") from exc
            yield _record_from_json(payload, where=f"{path}:{line_number}")


def load_manifest(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a shard directory's manifest.

    Applies the invalidation rules: unknown format name, version
    mismatch, schema-hash mismatch, and record-count inconsistencies all
    raise :class:`~repro.errors.StoreError`.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise StoreError(
            f"{directory} is not a sharded trace (no {MANIFEST_NAME}); "
            "was the writer interrupted before close()?"
        )
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path}: manifest is not valid JSON") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise StoreError(
            f"{path}: format {manifest.get('format')!r} is not {FORMAT_NAME!r}"
        )
    if manifest.get("version") != FORMAT_VERSION:
        raise StoreError(
            f"{path}: format version {manifest.get('version')!r} is not "
            f"supported (reader speaks version {FORMAT_VERSION}); "
            "regenerate the shards with this library version"
        )
    features = manifest.get("schema", {}).get("features")
    if not isinstance(features, list):
        raise StoreError(f"{path}: manifest schema carries no feature list")
    if manifest.get("schema_hash") != schema_hash(features):
        raise StoreError(
            f"{path}: schema_hash does not match the manifest's own schema; "
            "the manifest was edited or corrupted"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise StoreError(f"{path}: manifest lists no shards")
    counts = [shard.get("records") for shard in shards]
    if any(not isinstance(count, int) or count <= 0 for count in counts):
        raise StoreError(f"{path}: manifest shard record counts are malformed")
    if sum(counts) != manifest.get("total_records"):
        raise StoreError(
            f"{path}: total_records={manifest.get('total_records')} but the "
            f"shards sum to {sum(counts)}"
        )
    for shard in shards:
        if not (directory / shard["file"]).exists():
            raise StoreError(f"{directory}: missing shard file {shard['file']}")
    return manifest


def trace_to_shards(
    trace: Trace,
    directory: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Path:
    """Write an in-memory :class:`Trace` as a sharded trace directory."""
    return write_shards(iter(trace), directory, shard_size=shard_size)


def _decoded_context_builder(feature_names: Sequence[str]):
    """A fast per-record context factory for one shard's fixed schema.

    The public :class:`ClientContext` constructor re-validates and
    re-sorts the feature mapping per record; shard columns are already
    schema-checked and stored in sorted order, so records decode through
    the trusted constructor instead.
    """
    names = tuple(sorted(feature_names))

    def build(values: Sequence[Any]) -> ClientContext:
        return ClientContext._from_sorted_items(tuple(zip(names, values)))

    return build


def trusted_record(
    context: ClientContext,
    decision: Any,
    reward: float,
    propensity: Optional[float],
    timestamp: Optional[float],
    state: Any,
) -> TraceRecord:
    """Build a :class:`TraceRecord` without re-running field validation.

    Shard data was validated when the records were first constructed and
    written; re-validating on every decode would (a) double the read
    cost and (b) make corrupt-on-disk records (the fault-injection and
    quarantine test paths) impossible to *read* — the contracts layer,
    not the decoder, is where corruption must surface.
    """
    record = object.__new__(TraceRecord)
    object.__setattr__(record, "context", context)
    object.__setattr__(record, "decision", decision)
    object.__setattr__(record, "reward", reward)
    object.__setattr__(record, "propensity", propensity)
    object.__setattr__(record, "timestamp", timestamp)
    object.__setattr__(record, "state", state)
    return record


def _none_if_nan(value: float) -> Optional[float]:
    """Decode the column encoding of an optional float field."""
    return None if math.isnan(value) else value
