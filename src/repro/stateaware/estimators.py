"""State-aware Doubly Robust estimation (§4.1 challenges, §4.3 remedies).

Two estimators beyond the basic DR:

* :class:`StateMatchedDR` — "the DR estimator can use the empirical data
  in the trace when the network states match" (§4.3): run DR on the
  subset of records whose state label equals the target state.
* :class:`TransitionAdjustedDR` — translate the whole trace into the
  target state via a fitted :class:`StateTransitionModel`, then run DR on
  the translated trace (§4.3's "create a new trace by degrading the
  performance ... and use the DR estimator on the new trace").
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.contracts import check_trace
from repro.core.estimators.base import EstimateResult
from repro.core.estimators.dr import DoublyRobust
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.propensity import PropensityModel
from repro.core.types import Trace
from repro.errors import EstimatorError
from repro.stateaware.transition import StateTransitionModel


class StateMatchedDR:
    """DR restricted to records in the target system state.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh reward model (the model
        must be fit on the state-matched subset only, so a factory rather
        than an instance).
    target_state:
        The state under which the new policy will actually run.
    min_records:
        Minimum matching records required (guards against vacuous
        estimates when the target state is barely represented).
    """

    def __init__(self, model_factory, target_state: Hashable, min_records: int = 10):
        if min_records < 1:
            raise EstimatorError(f"min_records must be >= 1, got {min_records}")
        self._model_factory = model_factory
        self._target_state = target_state
        self._min_records = min_records

    @property
    def name(self) -> str:
        """Estimator name used in reports."""
        return "state-matched-dr"

    def estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
    ) -> EstimateResult:
        """DR over the state-matched subset of *trace*."""
        check_trace(trace, require_states=True, where=f"{self.name} input trace")
        matched = trace.filter(lambda record: record.state == self._target_state)
        if len(matched) < self._min_records:
            raise EstimatorError(
                f"only {len(matched)} records in state {self._target_state!r} "
                f"(need {self._min_records}); collect more target-state data "
                "or use TransitionAdjustedDR"
            )
        inner = DoublyRobust(self._model_factory())
        result = inner.estimate(
            new_policy, matched, old_policy=old_policy, propensity_model=propensity_model
        )
        diagnostics = dict(result.diagnostics)
        diagnostics["matched_records"] = len(matched)
        diagnostics["matched_fraction"] = len(matched) / len(trace)
        return EstimateResult(
            value=result.value,
            method=self.name,
            n=result.n,
            contributions=result.contributions,
            std_error=result.std_error,
            diagnostics=diagnostics,
        )


class TransitionAdjustedDR:
    """DR on a trace translated into the target state.

    Uses every record (unlike :class:`StateMatchedDR`) at the cost of
    trusting the fitted transition ratios — the bias/variance trade the
    paper flags ("modeling such a 'transition function' between network
    states may itself be error prone").
    """

    def __init__(self, model_factory, target_state: Hashable,
                 transition: Optional[StateTransitionModel] = None):
        self._model_factory = model_factory
        self._target_state = target_state
        self._transition = transition

    @property
    def name(self) -> str:
        """Estimator name used in reports."""
        return "transition-dr"

    def estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
    ) -> EstimateResult:
        """Translate *trace* to the target state, then run DR on it."""
        check_trace(trace, require_states=True, where=f"{self.name} input trace")
        transition = self._transition
        if transition is None:
            transition = StateTransitionModel().fit(trace)
        translated = transition.translate_trace(trace, self._target_state)
        inner = DoublyRobust(self._model_factory())
        result = inner.estimate(
            new_policy,
            translated,
            old_policy=old_policy,
            propensity_model=propensity_model,
        )
        diagnostics = dict(result.diagnostics)
        diagnostics["target_state"] = self._target_state
        ratios = {
            str(state): transition.transition(state, self._target_state).ratio
            for state in transition.states
        }
        diagnostics["transition_ratios"] = ratios
        return EstimateResult(
            value=result.value,
            method=self.name,
            n=result.n,
            contributions=result.contributions,
            std_error=result.std_error,
            diagnostics=diagnostics,
        )
