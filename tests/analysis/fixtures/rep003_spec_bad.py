"""REP003 spec fixture: to_dict without from_dict (line 10)."""


class HalfSerializedSpec:
    """Wire-format spec that can serialise but never rebuild."""

    def __init__(self, kind):
        self.kind = kind

    def to_dict(self):
        """Serialise — with no from_dict, nothing can read this back."""
        return {"kind": self.kind}


class ReadOnlyConfig:
    """Wire-format config that can parse but never emit (line 18)."""

    def from_dict(self, payload):
        """Deserialise — with no to_dict, nothing produces this payload."""
        return payload
