"""Property tests: the batch APIs are bit-identical to their scalar loops.

The perf rewrite's contract is strict: every vectorised override of
``propensity_batch`` / ``probability_matrix`` / ``greedy_decision_batch``
/ ``predict_batch`` must return exactly what the base-class loop default
(one scalar call per record) returns — same values bit for bit, same
errors in the same order.  These tests pin that contract with hypothesis
over generated traces and policy/model families, so a future "fast path"
that drifts by an ulp or reorders validation fails here, not in a figure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core
from repro.core.estimators import IPS, DirectMethod
from repro.core.models.base import ConstantRewardModel, RewardModel
from repro.core.models.ensemble import CrossFitModel, EnsembleRewardModel
from repro.core.models.knn import KNNRewardModel
from repro.core.models.tabular import TabularMeanModel
from repro.core.policy import Policy
from repro.core.propensity import (
    FlooredPropensitySource,
    LoggedPropensitySource,
    PolicyPropensitySource,
    PropensitySource,
)
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import PropensityError

DECISIONS = ("a", "b", "c")
SPACE = core.DecisionSpace(DECISIONS)

#: Exact-sum distributions for the tabular policy (no normalisation
#: rounding to worry about).
_TABLE_ROWS = (
    {"a": 0.5, "b": 0.25, "c": 0.25},
    {"a": 0.25, "b": 0.5, "c": 0.25},
    {"a": 0.125, "b": 0.375, "c": 0.5},
)


# -- strategies ---------------------------------------------------------------

@st.composite
def contexts(draw):
    x = draw(st.integers(min_value=0, max_value=4))
    isp = draw(st.sampled_from(["isp-0", "isp-1"]))
    return ClientContext(x=float(x), isp=isp)


@st.composite
def traces(draw, min_size=4, max_size=25):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    records = []
    for _ in range(size):
        records.append(
            TraceRecord(
                context=draw(contexts()),
                decision=draw(st.sampled_from(DECISIONS)),
                reward=draw(
                    st.floats(
                        min_value=-10,
                        max_value=10,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
                propensity=draw(st.floats(min_value=0.05, max_value=1.0)),
            )
        )
    return Trace(records)


@st.composite
def policies(draw):
    """One policy from every family that overrides a batch method."""
    kind = draw(
        st.sampled_from(
            ["uniform", "deterministic", "epsilon", "softmax", "mixture", "tabular"]
        )
    )
    target = draw(st.sampled_from(DECISIONS))
    if kind == "uniform":
        return core.UniformRandomPolicy(SPACE)
    if kind == "deterministic":
        return core.DeterministicPolicy(SPACE, lambda context: target)
    if kind == "epsilon":
        epsilon = draw(st.floats(min_value=0.0, max_value=1.0))
        return core.EpsilonGreedyPolicy(
            core.DeterministicPolicy(SPACE, lambda context: target), epsilon
        )
    if kind == "softmax":
        temperature = draw(st.floats(min_value=0.2, max_value=3.0))
        base = {"a": 1.0, "b": 2.0, "c": 3.0}
        return core.SoftmaxPolicy(
            SPACE,
            lambda context, decision: base[decision] + 0.1 * float(context["x"]),
            temperature=temperature,
        )
    if kind == "mixture":
        weight = draw(st.floats(min_value=0.0, max_value=1.0))
        return core.MixturePolicy(
            [
                core.DeterministicPolicy(SPACE, lambda context: target),
                core.UniformRandomPolicy(SPACE),
            ],
            [weight, 1.0 - weight],
        )
    table = {
        ("isp-0",): draw(st.sampled_from(_TABLE_ROWS)),
        ("isp-1",): draw(st.sampled_from(_TABLE_ROWS)),
    }
    return core.TabularPolicy(SPACE, ("isp",), table)


@st.composite
def full_support_policies(draw):
    """Policies that never assign zero propensity (valid logging policies)."""
    kind = draw(st.sampled_from(["uniform", "epsilon", "softmax"]))
    if kind == "uniform":
        return core.UniformRandomPolicy(SPACE)
    if kind == "epsilon":
        target = draw(st.sampled_from(DECISIONS))
        epsilon = draw(st.floats(min_value=0.1, max_value=1.0))
        return core.EpsilonGreedyPolicy(
            core.DeterministicPolicy(SPACE, lambda context: target), epsilon
        )
    base = {"a": 1.0, "b": 2.0, "c": 3.0}
    return core.SoftmaxPolicy(
        SPACE,
        lambda context, decision: base[decision] + 0.1 * float(context["x"]),
        temperature=draw(st.floats(min_value=0.5, max_value=3.0)),
    )


@st.composite
def reward_models(draw):
    """One model from every family that overrides ``predict_batch``."""
    kind = draw(st.sampled_from(["tabular", "knn", "constant", "ensemble"]))
    if kind == "tabular":
        keys = draw(st.sampled_from([("isp",), ("isp", "x"), None]))
        return TabularMeanModel(key_features=keys)
    if kind == "knn":
        return KNNRewardModel(
            k=draw(st.integers(min_value=1, max_value=3)),
            weighted=draw(st.booleans()),
        )
    if kind == "constant":
        return ConstantRewardModel()
    return EnsembleRewardModel(
        [TabularMeanModel(key_features=("isp",)), ConstantRewardModel()]
    )


# -- policy batch APIs vs the base-class loop defaults ------------------------

class TestPolicyBatchEquivalence:
    @given(policy=policies(), trace=traces())
    @settings(deadline=None)
    def test_propensity_batch_matches_loop_default(self, policy, trace):
        columns = trace.columns()
        batch = policy.propensity_batch(columns.decisions, columns.contexts)
        loop = Policy.propensity_batch(policy, columns.decisions, columns.contexts)
        assert batch.dtype == loop.dtype
        assert np.array_equal(batch, loop)

    @given(policy=policies(), trace=traces())
    @settings(deadline=None)
    def test_probability_matrix_matches_loop_default(self, policy, trace):
        columns = trace.columns()
        batch = policy.probability_matrix(columns.contexts)
        loop = Policy.probability_matrix(policy, columns.contexts)
        assert batch.shape == (len(trace), len(SPACE))
        assert np.array_equal(batch, loop)

    @given(policy=policies(), trace=traces())
    @settings(deadline=None)
    def test_greedy_decision_batch_matches_scalar_scan(self, policy, trace):
        columns = trace.columns()
        batch = policy.greedy_decision_batch(columns.contexts)
        assert list(batch) == [
            policy.greedy_decision(context) for context in columns.contexts
        ]


# -- model predict_batch vs the scalar loop -----------------------------------

class TestModelBatchEquivalence:
    @given(model=reward_models(), trace=traces())
    @settings(deadline=None)
    def test_predict_batch_matches_loop_default(self, model, trace):
        model.fit(trace)
        columns = trace.columns()
        batch = model.predict_batch(columns.contexts, columns.decisions)
        loop = RewardModel.predict_batch(model, columns.contexts, columns.decisions)
        assert batch.dtype == loop.dtype
        assert np.array_equal(batch, loop)

    @given(trace=traces(min_size=6))
    @settings(deadline=None)
    def test_cross_fit_batch_matches_per_index_loop(self, trace):
        model = CrossFitModel(
            lambda: TabularMeanModel(key_features=("isp",)), folds=2
        )
        model.fit(trace)
        columns = trace.columns()
        indices = list(range(len(trace)))
        batch = model.predict_batch_for_indices(
            indices, columns.contexts, columns.decisions
        )
        loop = np.asarray(
            [
                model.predict_for_index(index, context, decision)
                for index, context, decision in zip(
                    indices, columns.contexts, columns.decisions
                )
            ],
            dtype=float,
        )
        assert np.array_equal(batch, loop)


# -- propensity sources: same values, same errors -----------------------------

class TestPropensitySourceEquivalence:
    @given(trace=traces())
    def test_logged_source_matches_loop_default(self, trace):
        source = LoggedPropensitySource()
        batch = source.propensity_batch(trace)
        loop = PropensitySource.propensity_batch(source, trace)
        assert np.array_equal(batch, loop)

    @given(policy=full_support_policies(), trace=traces())
    @settings(deadline=None)
    def test_policy_source_matches_loop_default(self, policy, trace):
        source = PolicyPropensitySource(policy)
        batch = source.propensity_batch(trace)
        loop = PropensitySource.propensity_batch(source, trace)
        assert np.array_equal(batch, loop)

    @given(
        policy=full_support_policies(),
        trace=traces(),
        floor=st.floats(min_value=0.05, max_value=0.4),
    )
    @settings(deadline=None)
    def test_floored_source_matches_loop_default(self, policy, trace, floor):
        batch = FlooredPropensitySource(
            PolicyPropensitySource(policy), floor
        ).propensity_batch(trace)
        loop = PropensitySource.propensity_batch(
            FlooredPropensitySource(PolicyPropensitySource(policy), floor), trace
        )
        assert np.array_equal(batch, loop)

    @given(trace=traces())
    def test_batch_raises_the_scalar_error(self, trace):
        # A deterministic logger gives zero propensity to every other
        # decision; the batch path must raise the error the scalar loop
        # raises at its first offending record, message and all.
        policy = core.DeterministicPolicy(SPACE, lambda context: "a")
        source = PolicyPropensitySource(policy)
        scalar_error = batch_error = None
        try:
            PropensitySource.propensity_batch(source, trace)
        except PropensityError as exc:
            scalar_error = str(exc)
        try:
            source.propensity_batch(trace)
        except PropensityError as exc:
            batch_error = str(exc)
        assert batch_error == scalar_error


# -- estimators end to end vs hand-rolled scalar arithmetic -------------------

class TestEstimatorEquivalence:
    @given(policy=full_support_policies(), trace=traces())
    @settings(deadline=None)
    def test_ips_contributions_match_manual_loop(self, policy, trace):
        result = IPS().estimate(policy, trace)
        manual = np.asarray(
            [
                policy.propensity(record.decision, record.context)
                / record.propensity
                * record.reward
                for record in trace
            ],
            dtype=float,
        )
        assert np.array_equal(result.contributions, manual)

    @given(policy=full_support_policies(), trace=traces())
    @settings(deadline=None)
    def test_dm_contributions_match_manual_loop(self, trace, policy):
        model = TabularMeanModel(key_features=("isp",))
        result = DirectMethod(model).estimate(policy, trace)
        # Replays the vectorised accumulation scalar-ly: one dm term per
        # record, accumulated over decisions in canonical space order.
        manual = np.zeros(len(trace), dtype=float)
        for column, decision in enumerate(SPACE.decisions):
            for row, record in enumerate(trace):
                probability = policy.probabilities(record.context).get(decision, 0.0)
                manual[row] = manual[row] + probability * model.predict(
                    record.context, decision
                )
        assert np.array_equal(result.contributions, manual)


# -- the columnar cache itself ------------------------------------------------

class TestColumnarCache:
    @given(trace=traces(min_size=5), data=st.data())
    def test_take_matches_a_fresh_trace(self, trace, data):
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(trace) - 1),
                min_size=1,
                max_size=2 * len(trace),
            )
        )
        taken = trace.take(indices)
        fresh = Trace([trace[index] for index in indices])
        took, built = taken.columns(), fresh.columns()
        assert np.array_equal(took.rewards, built.rewards)
        assert np.array_equal(took.propensities, built.propensities, equal_nan=True)
        assert tuple(took.decisions) == tuple(built.decisions)
        assert tuple(took.contexts) == tuple(built.contexts)

    @given(trace=traces(min_size=5))
    def test_slice_shares_column_values(self, trace):
        sliced = trace[1:-1]
        columns = sliced.columns()
        assert np.array_equal(columns.rewards, trace.columns().rewards[1:-1])
        assert tuple(columns.decisions) == tuple(trace.columns().decisions[1:-1])
