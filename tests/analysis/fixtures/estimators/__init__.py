"""REP003 export-check fixture package: __all__ omits UnexportedEstimator."""

__all__ = ["AliasKeywordEstimator"]
