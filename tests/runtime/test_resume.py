"""End-to-end checkpoint/resume tests: a killed sweep, resumed from its
ledger, must produce byte-identical summaries to an uninterrupted one."""

from __future__ import annotations

import pytest

from repro.errors import EstimatorError, LedgerError
from repro.experiments.harness import run_repeated
from repro.runtime import RetryPolicy, RunLedger
from repro.testing import CrashAfter, FlakyRun, SimulatedCrash

RUNS = 50
SEED = 2017


def _run(rng):
    draws = rng.normal(size=3)
    return {
        "dm": abs(float(draws[0])),
        "snips": abs(float(draws[1])),
        "dr": 0.5 * abs(float(draws[2])),
    }


class _Counting:
    """Wrap a run function and count how many seeds actually executed."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def __call__(self, rng):
        self.calls += 1
        return self._inner(rng)


def _uninterrupted():
    return run_repeated(
        "sweep", _run, runs=RUNS, seed=SEED, baseline="dm", treatment="dr"
    )


class TestKilledSweepResumes:
    def test_resume_is_byte_identical_to_uninterrupted(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        # Kill the sweep after 20 completed seeds — SimulatedCrash is a
        # BaseException, so nothing in the harness may catch it.
        with pytest.raises(SimulatedCrash):
            run_repeated(
                "sweep",
                CrashAfter(_run, completed=20),
                runs=RUNS,
                seed=SEED,
                ledger_path=ledger_path,
            )
        _, journaled, _ = RunLedger(ledger_path).read()
        assert set(journaled) == set(range(20))

        resumed_run = _Counting(_run)
        resumed = run_repeated(
            "sweep",
            resumed_run,
            runs=RUNS,
            seed=SEED,
            baseline="dm",
            treatment="dr",
            ledger_path=ledger_path,
            resume=True,
        )
        assert resumed_run.calls == RUNS - 20  # only the missing seeds ran

        baseline = _uninterrupted()
        # Byte-identical: the ledger journals exact-repr floats, so the
        # replayed errors — and everything computed from them — match
        # the uninterrupted sweep bit for bit.
        assert resumed.summaries == baseline.summaries
        assert resumed.render() == baseline.render()
        assert resumed.reduction() == baseline.reduction()

    def test_resume_of_a_complete_ledger_runs_nothing(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        run_repeated("sweep", _run, runs=10, seed=SEED, ledger_path=ledger_path)
        counting = _Counting(_run)
        resumed = run_repeated(
            "sweep", counting, runs=10, seed=SEED, ledger_path=ledger_path, resume=True
        )
        assert counting.calls == 0
        assert resumed.render() == run_repeated("sweep", _run, runs=10, seed=SEED).render()

    def test_failed_seeds_are_journaled_and_replayed(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        flaky = FlakyRun(_run, fail_on=[3])
        first = run_repeated(
            "sweep", flaky, runs=10, seed=SEED, ledger_path=ledger_path
        )
        assert first.failed_runs == 1
        resumed = run_repeated(
            "sweep", _run, runs=10, seed=SEED, ledger_path=ledger_path, resume=True
        )
        # The journaled failure is replayed as a failure — resume never
        # silently retries what the original sweep recorded.
        assert resumed.failed_runs == 1
        assert resumed.records[2].error_type == "EstimatorError"
        assert resumed.render() == first.render()


class TestResumeValidation:
    def test_resume_requires_ledger_path(self):
        with pytest.raises(LedgerError, match="requires a ledger_path"):
            run_repeated("sweep", _run, runs=5, seed=SEED, resume=True)

    def test_foreign_ledger_rejected(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        run_repeated("other", _run, runs=5, seed=SEED, ledger_path=ledger_path)
        with pytest.raises(LedgerError, match="belongs to experiment"):
            run_repeated(
                "sweep", _run, runs=5, seed=SEED, ledger_path=ledger_path, resume=True
            )

    def test_foreign_root_seed_rejected(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        run_repeated("sweep", _run, runs=5, seed=SEED, ledger_path=ledger_path)
        with pytest.raises(LedgerError, match="root seed"):
            run_repeated(
                "sweep", _run, runs=5, seed=SEED + 1, ledger_path=ledger_path, resume=True
            )

    def test_resume_without_existing_ledger_starts_fresh(self, tmp_path):
        ledger_path = tmp_path / "new.jsonl"
        result = run_repeated(
            "sweep", _run, runs=5, seed=SEED, ledger_path=ledger_path, resume=True
        )
        assert ledger_path.exists()
        assert result.failed_runs == 0

    def test_ledger_journals_the_retry_policy(self, tmp_path):
        ledger_path = tmp_path / "sweep.jsonl"
        retry = RetryPolicy(max_attempts=2, timeout_seconds=30.0)
        run_repeated(
            "sweep", _run, runs=3, seed=SEED, ledger_path=ledger_path, retry=retry
        )
        header, _, _ = RunLedger(ledger_path).read()
        assert header.retry == retry.to_json()


class TestHarnessContract:
    def test_every_run_failing_raises(self):
        with pytest.raises(EstimatorError, match="every run failed"):
            run_repeated(
                "sweep", FlakyRun(_run, fail_on=range(1, 6)), runs=5, seed=SEED
            )

    def test_nonpositive_runs_rejected(self):
        with pytest.raises(EstimatorError, match="runs must be positive"):
            run_repeated("sweep", _run, runs=0, seed=SEED)

    def test_records_cover_every_seed_in_order(self):
        result = run_repeated("sweep", _run, runs=8, seed=SEED)
        assert [record.index for record in result.records] == list(range(8))
        assert all(record.ok for record in result.records)

    def test_failure_breakdown_and_render(self):
        result = run_repeated(
            "sweep", FlakyRun(_run, fail_on=[2, 5]), runs=10, seed=SEED
        )
        assert result.failed_runs == 2
        breakdown = result.failure_breakdown()
        assert [r.index for r in breakdown["EstimatorError"]] == [1, 4]
        text = result.render()
        assert "2 runs failed and were excluded" in text
        assert "EstimatorError x2 (runs 1, 4)" in text
