"""Composable, deterministic fault models for the resilience layer.

Every fault here is *explicit* (indices, counts, attempt numbers — no
hidden randomness), so the tests that use them are reproducible by
construction and ``repro lint``'s REP001 determinism rule stays happy.

Trace faults
------------
:func:`inject_nan_rewards`, :func:`inject_bad_propensities` and
:func:`inject_schema_drift` build *corrupt* traces — the kind a real
collection pipeline produces — by bypassing
:class:`~repro.core.types.TraceRecord` validation the same way corrupt
serialised data would.  :func:`duplicate_records` and
:func:`truncate_records` model logging-pipeline duplication and loss.
``check_trace(..., quarantine=True)`` must split these out; the strict
mode must raise on them.

Run-function faults
-------------------
:class:`FlakyRun` raises on chosen invocations (exercising retries);
:class:`CrashAfter` raises :class:`SimulatedCrash` — a
``BaseException``, like a real SIGKILL nothing should catch — after N
completed seeds (exercising ledger checkpoint/resume).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence, Set, Type, Union

import numpy as np

from repro.core.types import Trace, TraceRecord
from repro.errors import EstimatorError

RunLike = Callable[[np.random.Generator], Mapping[str, float]]


class SimulatedCrash(BaseException):
    """A stand-in for SIGKILL between seeds.

    Subclasses ``BaseException`` (not ``Exception``) so that no handler
    short of process death can accidentally swallow it — exactly how a
    real kill behaves from the harness's point of view.
    """


def _with_overrides(record: TraceRecord, **overrides) -> TraceRecord:
    """Copy *record* with field overrides, bypassing validation.

    ``TraceRecord.__post_init__`` (correctly) refuses NaN rewards and
    out-of-range propensities, but corrupt serialised data can smuggle
    them in; this reproduces that corruption for tests by writing the
    frozen fields directly.
    """
    clone = TraceRecord(
        context=record.context,
        decision=record.decision,
        reward=record.reward,
        propensity=record.propensity,
        timestamp=record.timestamp,
        state=record.state,
    )
    for name, value in overrides.items():
        object.__setattr__(clone, name, value)
    return clone


def _validate_indices(indices: Iterable[int], size: int, what: str) -> Set[int]:
    chosen = set(int(index) for index in indices)
    for index in chosen:
        if not 0 <= index < size:
            raise EstimatorError(
                f"{what}: index {index} out of range for a trace of {size}"
            )
    return chosen


def inject_nan_rewards(trace: Trace, indices: Sequence[int]) -> Trace:
    """A copy of *trace* whose records at *indices* carry NaN rewards."""
    chosen = _validate_indices(indices, len(trace), "inject_nan_rewards")
    return Trace(
        _with_overrides(record, reward=float("nan")) if index in chosen else record
        for index, record in enumerate(trace)
    )


def inject_bad_propensities(
    trace: Trace, indices: Sequence[int], value: float = 0.0
) -> Trace:
    """A copy of *trace* with invalid logged propensities at *indices*.

    *value* defaults to the classic corruption — an exact zero, the
    division-by-zero landmine of §4.1 — but any out-of-contract value
    (negative, > 1, NaN) models a different pipeline bug.
    """
    chosen = _validate_indices(indices, len(trace), "inject_bad_propensities")
    return Trace(
        _with_overrides(record, propensity=float(value)) if index in chosen else record
        for index, record in enumerate(trace)
    )


def inject_schema_drift(
    trace: Trace, indices: Sequence[int], feature: str = "drifted_feature"
) -> Trace:
    """A copy of *trace* whose records at *indices* gained an extra
    context feature — the schema-drift corruption of a mixed-version
    collection pipeline."""
    chosen = _validate_indices(indices, len(trace), "inject_schema_drift")
    return Trace(
        _with_overrides(record, context=record.context.with_features(**{feature: 1.0}))
        if index in chosen
        else record
        for index, record in enumerate(trace)
    )


def duplicate_records(trace: Trace, indices: Sequence[int]) -> Trace:
    """A copy of *trace* where each record at *indices* appears twice in
    a row (at-least-once delivery from a logging pipeline)."""
    chosen = _validate_indices(indices, len(trace), "duplicate_records")
    records = []
    for index, record in enumerate(trace):
        records.append(record)
        if index in chosen:
            records.append(record)
    return Trace(records)


def truncate_records(trace: Trace, keep: int) -> Trace:
    """The first *keep* records of *trace* (a partially-written file)."""
    if keep < 0:
        raise EstimatorError(f"truncate_records: keep must be >= 0, got {keep}")
    return trace[:keep]


class FlakyRun:
    """Wrap a run function so chosen invocations raise.

    *fail_on* names 1-based global invocation numbers (attempt 1 of
    seed 0 is invocation 1; with retries, attempt 2 of seed 0 is
    invocation 2, and so on).  Pinning failures to invocation numbers
    keeps the fault deterministic without needing to peek at seeds.
    """

    def __init__(
        self,
        inner: RunLike,
        fail_on: Iterable[int],
        error: Union[Type[BaseException], Callable[[int], BaseException]] = None,
    ):
        self._inner = inner
        self._fail_on = set(int(n) for n in fail_on)
        self._error = error if error is not None else EstimatorError
        self.calls = 0

    def __call__(self, rng: np.random.Generator) -> Mapping[str, float]:
        self.calls += 1
        if self.calls in self._fail_on:
            error = self._error
            if isinstance(error, type):
                raise error(f"injected fault on invocation {self.calls}")
            raise error(self.calls)
        return self._inner(rng)


class CrashAfter:
    """Wrap a run function to simulate a kill after N completed seeds.

    The first *completed* invocations run normally; the next one raises
    :class:`SimulatedCrash` *before* doing any work — modelling a
    process killed between seeds, after the ledger journaled the last
    completed one.
    """

    def __init__(self, inner: RunLike, completed: int):
        if completed < 0:
            raise EstimatorError(f"CrashAfter: completed must be >= 0, got {completed}")
        self._inner = inner
        self._completed = completed
        self.calls = 0

    def __call__(self, rng: np.random.Generator) -> Mapping[str, float]:
        if self.calls >= self._completed:
            raise SimulatedCrash(
                f"simulated kill after {self._completed} completed seeds"
            )
        self.calls += 1
        return self._inner(rng)
