"""The Fig 4 CDN-configuration scenario (ISP x frontend x backend).

Paper §2.2.1 and §4.2: requests from ISP-1 and ISP-2 choose a frontend
(FE-1/FE-2) and a backend (BE-1/BE-2).  Ground truth: an ISP-1 request is
slow *only* on the (FE-1, BE-1) pair; everything else is fast.  The
logging policy routes almost all traffic along two arrows —
(ISP-1 → FE-1, BE-1) and (ISP-2 → FE-2, BE-2) — with only a handful of
probe clients elsewhere ("500 clients for each measurement (arrow) ...
and 5 clients for each remaining choice"), so FE and BE are almost
perfectly correlated in the trace and a structure learner links response
time to just one of them.  The new policy moves 50% of ISP-1 clients to
(FE-1, BE-2), the configuration the learned CBN mispredicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.core.policy import Policy, TabularPolicy
from repro.core.spaces import ProductDecisionSpace
from repro.core.types import ClientContext, Decision, Trace, TraceRecord
from repro.errors import SimulationError

ISPS = ("isp-1", "isp-2")
FRONTENDS = ("fe-1", "fe-2")
BACKENDS = ("be-1", "be-2")


@dataclass(frozen=True)
class WiseScenario:
    """Parameters of the Fig 4 / Fig 7a experiment.

    Defaults follow §4.2 verbatim where stated (500 per arrow, 5 per
    remaining combination, 50% shift of ISP-1 clients); response-time
    levels and noise are our documented choices.
    """

    clients_per_arrow: int = 500
    clients_per_rare_combo: int = 5
    long_response_ms: float = 300.0
    short_response_ms: float = 100.0
    noise_ms: float = 15.0
    new_policy_shift: float = 0.5

    def __post_init__(self) -> None:
        if self.clients_per_arrow <= 0 or self.clients_per_rare_combo <= 0:
            raise SimulationError("client counts must be positive")
        if self.long_response_ms <= self.short_response_ms:
            raise SimulationError("long response time must exceed short")
        if self.noise_ms < 0:
            raise SimulationError("noise must be non-negative")
        if not 0.0 < self.new_policy_shift <= 1.0:
            raise SimulationError(
                f"new_policy_shift must lie in (0, 1], got {self.new_policy_shift}"
            )

    # -- ground truth ---------------------------------------------------------

    def true_mean_response(self, isp: str, decision: Decision) -> float:
        """Noise-free mean response time of (isp, fe, be)."""
        fe, be = decision
        if isp == "isp-1" and fe == "fe-1" and be == "be-1":
            return self.long_response_ms
        return self.short_response_ms

    def space(self) -> ProductDecisionSpace:
        """The (frontend, backend) decision space."""
        return ProductDecisionSpace(frontend=FRONTENDS, backend=BACKENDS)

    # -- policies -------------------------------------------------------------

    def _arrow_of(self, isp: str) -> Decision:
        return ("fe-1", "be-1") if isp == "isp-1" else ("fe-2", "be-2")

    def old_policy(self) -> Policy:
        """The logging policy implied by the paper's client counts.

        Per ISP, the dominant "arrow" configuration gets probability
        proportional to 500 and each of the other three combinations
        proportional to 5.
        """
        space = self.space()
        table: Dict[Tuple, Dict[Decision, float]] = {}
        for isp in ISPS:
            arrow = self._arrow_of(isp)
            total = self.clients_per_arrow + 3 * self.clients_per_rare_combo
            distribution = {
                decision: (
                    self.clients_per_arrow / total
                    if decision == arrow
                    else self.clients_per_rare_combo / total
                )
                for decision in space
            }
            table[(isp,)] = distribution
        return TabularPolicy(space, key_features=("isp",), table=table)

    def new_policy(self) -> Policy:
        """"The same traffic pattern, except that 50% of ISP-1 clients
        use FE-1 and BE-2" (§4.2)."""
        space = self.space()
        old = self.old_policy()
        shifted = ("fe-1", "be-2")
        table: Dict[Tuple, Dict[Decision, float]] = {}
        for isp in ISPS:
            context = ClientContext(isp=isp)
            base = old.probabilities(context)
            if isp == "isp-1":
                # The shifted configuration takes `new_policy_shift` of the
                # mass; the rest is split among the other decisions in
                # proportion to the old policy.
                remaining = 1.0 - self.new_policy_shift
                mass_elsewhere = sum(p for d, p in base.items() if d != shifted)
                distribution = {
                    decision: remaining * base[decision] / mass_elsewhere
                    for decision in space
                    if decision != shifted
                }
                distribution[shifted] = self.new_policy_shift
            else:
                distribution = dict(base)
            table[(isp,)] = distribution
        return TabularPolicy(space, key_features=("isp",), table=table)

    # -- trace generation -------------------------------------------------------

    def generate_trace(self, rng: np.random.Generator) -> Trace:
        """One trace with exactly the paper's per-combination counts.

        Record order is shuffled; propensities come from
        :meth:`old_policy` so IPS/DR corrections are exact.
        """
        old = self.old_policy()
        space = self.space()
        records = []
        for isp in ISPS:
            context = ClientContext(isp=isp)
            arrow = self._arrow_of(isp)
            for decision in space:
                count = (
                    self.clients_per_arrow
                    if decision == arrow
                    else self.clients_per_rare_combo
                )
                propensity = old.propensity(decision, context)
                mean = self.true_mean_response(isp, decision)
                for _ in range(count):
                    response = mean + rng.normal(0.0, self.noise_ms)
                    records.append(
                        TraceRecord(
                            context=context,
                            decision=decision,
                            reward=float(max(response, 1.0)),
                            propensity=propensity,
                        )
                    )
        rng.shuffle(records)
        return Trace(records)

    def ground_truth_value(self, policy: Policy, trace: Trace) -> float:
        """Exact V(policy, T) using the noise-free mean response times."""
        total = 0.0
        for record in trace:
            isp = record.context["isp"]
            for decision, probability in policy.probabilities(record.context).items():
                if probability > 0:
                    total += probability * self.true_mean_response(isp, decision)
        return total / len(trace)
