"""Fig 2 — the ABR throughput-independence bias, demonstrated.

A conservative logging controller streams low bitrates, so its observed
throughput sits far below the available bandwidth; replaying a more
aggressive controller over that throughput trace (the FastMPC-style
evaluation workflow) misestimates its QoE.
"""

import numpy as np

from repro.experiments import run_fig2_abr_bias

from benchmarks.conftest import report

RUNS = 5
SEED = 2017


def test_fig2_replay_misestimates(benchmark):
    def run_all():
        return [run_fig2_abr_bias(seed=SEED + index) for index in range(RUNS)]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["== fig2-abr-bias =="]
    for index, outcome in enumerate(outcomes):
        lines.append(
            f"seed {SEED + index}: replay={outcome.replay_estimate:.3f} "
            f"truth={outcome.true_qoe:.3f} rel.err={outcome.replay_relative_error:.3f} "
            f"(low-bitrate fraction {outcome.low_bitrate_fraction_logged:.0%})"
        )
    report("\n".join(lines))

    # Shape: the logged sessions really are low-bitrate, and the replay
    # estimate deviates substantially from the truth on every run.
    assert all(o.low_bitrate_fraction_logged > 0.5 for o in outcomes)
    assert np.mean([o.replay_relative_error for o in outcomes]) > 0.1
    # The bias direction is underestimation (throughput looks worse than
    # the channel actually is).
    assert all(o.replay_estimate < o.true_qoe for o in outcomes)
