"""Shard integrity: checksums, corruption classification, verification.

The paper's argument is that conclusions inherit the trustworthiness of
the data pipeline beneath them; this module is where the storage tier
earns that trust.  Every byte-level failure mode of a shard directory is
**classified** into the :class:`~repro.errors.ShardCorruptionError`
taxonomy instead of surfacing as a raw ``zipfile``/``numpy``/``OSError``
— so a degradation policy can decide per *kind*, ``repro verify`` can
report per kind, and no fault is ever mistaken for a smaller trace.

Three layers:

* **Byte checks** — :func:`read_shard_bytes` (the single choke point
  every shard read goes through, which is also where the chaos harness
  injects I/O faults) and :func:`check_shard_bytes`, which classifies a
  shard's raw bytes against its manifest entry: wrong size ⇒
  :class:`~repro.errors.ShardTruncatedError` (torn write), right size
  but wrong sha256 ⇒ :class:`~repro.errors.ShardChecksumError` (silent
  bit corruption).  Pre-checksum (v1) manifests carry neither field and
  skip these checks — decode-level classification still applies.
* **Retried reads** — :func:`read_shard_with_retry` drives transient
  ``OSError`` faults through a :class:`~repro.runtime.retry.RetryPolicy`
  with the same deterministic backoff schedule the experiment harness
  uses (seeded by shard index, so a replayed run sleeps identically);
  exhaustion classifies as :class:`~repro.errors.ShardReadError`.
* **Whole-store verification** — :func:`verify_store` eagerly checks
  every shard (existence, size, checksum, and optionally a full decode)
  and returns a :class:`StoreVerifyReport`; this is the engine behind
  ``repro verify <dir>``.

Quarantine accounting for degraded reads lives here too
(:class:`QuarantinedShard` / :class:`ShardQuarantineReport`), mirroring
the record-level ``check_trace(quarantine=True)`` report one level down
the stack.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.errors import (
    ShardChecksumError,
    ShardCorruptionError,
    ShardDecodeError,
    ShardMissingError,
    ShardReadError,
    ShardTruncatedError,
    StoreError,
)

#: Hash algorithm recorded in v2 manifests.  Named so the manifest is
#: self-describing; only sha256 is accepted today.
CHECKSUM_ALGORITHM = "sha256"

#: Test-only injection point: when set (by
#: :mod:`repro.testing.faults`), called with the path before every
#: shard-bytes read; may raise ``OSError`` (transient fault) or sleep
#: (slow read).  Never set in production code.
_read_fault_hook: Optional[Callable[[str], None]] = None


def shard_checksum(data: bytes) -> str:
    """Hex sha256 of one shard's bytes — the manifest's ``sha256`` field."""
    return hashlib.sha256(data).hexdigest()


def read_shard_bytes(path: Union[str, Path]) -> bytes:
    """Read one shard file fully into memory.

    The single choke point for shard I/O: verification hashes these
    bytes, the decoder parses them (via ``BytesIO``, so checksum and
    decode share one read), and the chaos harness injects faults here.

    Raises
    ------
    ShardMissingError
        When the file does not exist (never retryable).
    OSError
        On any other I/O failure — the *retryable* class, handled by
        :func:`read_shard_with_retry`.
    """
    hook = _read_fault_hook
    if hook is not None:
        hook(str(path))
    try:
        return Path(path).read_bytes()
    except FileNotFoundError as exc:
        raise ShardMissingError(
            f"{path}: shard file is missing", shard=str(path)
        ) from exc


def read_shard_with_retry(
    path: Union[str, Path],
    retry=None,
    seed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> bytes:
    """:func:`read_shard_bytes` with transient faults retried.

    *retry* is a :class:`~repro.runtime.retry.RetryPolicy` (or ``None``
    for a single attempt).  Only ``OSError`` is transient; a missing
    file is permanent and raises immediately.  Backoff is the policy's
    deterministic schedule seeded by *seed* (callers pass the shard
    index), so a resumed or replayed run sleeps the exact same delays.

    Raises
    ------
    ShardReadError
        When every attempt failed with a transient ``OSError``; chains
        the last failure and records how many attempts were made.
    """
    attempts = 1 if retry is None else retry.max_attempts
    attempt = 0
    while True:
        attempt += 1
        try:
            return read_shard_bytes(path)
        except ShardMissingError:
            raise
        except OSError as exc:
            if attempt >= attempts:
                raise ShardReadError(
                    f"{path}: read failed after {attempt} attempt(s): {exc}",
                    shard=str(path),
                ) from exc
            sleep(retry.backoff_delay(seed, attempt))


def check_shard_bytes(
    path: Union[str, Path],
    data: bytes,
    entry: Dict[str, object],
) -> None:
    """Classify *data* against the manifest *entry*'s integrity fields.

    v2 manifests record ``bytes`` (file size) and ``sha256`` per shard;
    a size mismatch is a torn write (:class:`ShardTruncatedError` —
    named for the common case, though padding is caught too), an equal
    size with a different hash is silent bit corruption
    (:class:`ShardChecksumError`).  v1 entries carry neither field and
    pass through unchecked — the caller's decode-level checks remain.
    """
    expected_bytes = entry.get("bytes")
    if isinstance(expected_bytes, int) and len(data) != expected_bytes:
        raise ShardTruncatedError(
            f"{path}: shard is {len(data)} bytes but the manifest recorded "
            f"{expected_bytes}; the file was truncated or padded",
            shard=str(path),
        )
    expected_hash = entry.get("sha256")
    if isinstance(expected_hash, str):
        actual = shard_checksum(data)
        if actual != expected_hash:
            raise ShardChecksumError(
                f"{path}: shard sha256 {actual[:12]}… does not match the "
                f"manifest's {expected_hash[:12]}…; the shard's bytes were "
                "corrupted after it was written",
                shard=str(path),
            )


def classify_decode_failure(
    path: Union[str, Path], exc: BaseException
) -> ShardCorruptionError:
    """Wrap a raw npz decode failure as a classified corruption error.

    Reached only when the byte-level checks passed (or were unavailable,
    v1) yet ``numpy`` could not parse the payload — still never a raw
    ``zipfile``/``numpy`` exception at the call site.
    """
    return ShardDecodeError(
        f"{path}: shard payload would not decode "
        f"({type(exc).__name__}: {exc})",
        shard=str(path),
    )


# -- whole-store verification (repro verify) ---------------------------------


@dataclass(frozen=True)
class ShardCheckResult:
    """Outcome of verifying one shard.

    ``kind`` is ``None`` for a clean shard, else the
    :class:`~repro.errors.ShardCorruptionError` classification tag.
    """

    index: int
    file: str
    records: int
    kind: Optional[str]
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this shard passed every check."""
        return self.kind is None


@dataclass(frozen=True)
class StoreVerifyReport:
    """Outcome of :func:`verify_store` over one shard directory.

    ``manifest_error`` is set (and ``shards`` empty) when the manifest
    itself was unusable — missing, torn, or failing its own invariants —
    in which case per-shard checks were impossible.
    """

    directory: str
    version: Optional[int]
    shards: Tuple[ShardCheckResult, ...]
    manifest_error: Optional[str] = None
    checksummed: bool = True

    @property
    def ok(self) -> bool:
        """Whether the manifest and every shard verified clean."""
        return self.manifest_error is None and all(s.ok for s in self.shards)

    @property
    def corrupt(self) -> Tuple[ShardCheckResult, ...]:
        """The failing shards only."""
        return tuple(s for s in self.shards if not s.ok)

    def render(self) -> str:
        """Human-readable multi-line report (what ``repro verify`` prints)."""
        lines = [f"verify {self.directory}"]
        if self.manifest_error is not None:
            lines.append(f"  manifest: CORRUPT ({self.manifest_error})")
            return "\n".join(lines)
        lines.append(
            f"  manifest: ok (format v{self.version}, "
            f"{len(self.shards)} shard(s)"
            + ("" if self.checksummed else ", pre-checksum — no sha256 fields")
            + ")"
        )
        for shard in self.shards:
            if shard.ok:
                lines.append(f"  {shard.file}: ok ({shard.records} records)")
            else:
                lines.append(
                    f"  {shard.file}: {shard.kind.upper()} — {shard.detail}"
                )
        bad = self.corrupt
        if bad:
            lost = sum(shard.records for shard in bad)
            lines.append(
                f"  RESULT: {len(bad)} corrupt shard(s), {lost} record(s) "
                "at risk — run `repro repair` to rebuild around them"
            )
        else:
            lines.append("  RESULT: all shards verified")
        return "\n".join(lines)


def verify_store(
    directory: Union[str, Path],
    decode: bool = True,
    retry=None,
) -> StoreVerifyReport:
    """Eagerly verify every shard of a sharded-trace directory.

    Checks, per shard: the file exists, its size and sha256 match the
    manifest (v2; v1 manifests lack both fields and are byte-checked
    only by existence), and — with ``decode=True`` — that the npz
    payload decodes with array lengths matching the manifest's record
    count.  Nothing raises for corruption; every finding lands in the
    returned :class:`StoreVerifyReport` so one bad shard never hides
    the state of the others.
    """
    from repro.store.format import load_manifest

    directory = Path(directory)
    try:
        # check_files=False: a missing shard must classify per shard
        # (MISSING), not condemn the manifest itself.
        manifest = load_manifest(directory, check_files=False)
    except StoreError as exc:
        return StoreVerifyReport(
            directory=str(directory),
            version=None,
            shards=(),
            manifest_error=str(exc),
        )
    results = []
    checksummed = True
    for index, entry in enumerate(manifest["shards"]):
        path = directory / entry["file"]
        checksummed = checksummed and isinstance(entry.get("sha256"), str)
        kind: Optional[str] = None
        detail = ""
        try:
            data = read_shard_with_retry(path, retry=retry, seed=index)
            check_shard_bytes(path, data, entry)
            if decode:
                _decode_check(path, data, entry)
        except ShardCorruptionError as exc:
            kind, detail = exc.kind, str(exc)
        results.append(
            ShardCheckResult(
                index=index,
                file=str(entry["file"]),
                records=int(entry["records"]),
                kind=kind,
                detail=detail,
            )
        )
    return StoreVerifyReport(
        directory=str(directory),
        version=int(manifest["version"]),
        shards=tuple(results),
        checksummed=checksummed,
    )


def _decode_check(path: Path, data: bytes, entry: Dict[str, object]) -> None:
    """Full-decode verification of one shard's bytes (lengths included)."""
    import io

    import numpy as np

    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            lengths = {
                len(npz[key])
                for key in (
                    "rewards",
                    "propensities",
                    "timestamps",
                    "decision_codes",
                    "state_codes",
                )
            }
            for position in range(len(entry.get("feature_kinds", ()))):
                lengths.add(len(npz[f"feature_{position}"]))
    except ShardCorruptionError:
        raise
    except Exception as exc:
        raise classify_decode_failure(path, exc) from exc
    count = int(entry["records"])
    if lengths != {count}:
        raise ShardTruncatedError(
            f"{path}: array lengths {sorted(lengths)} disagree with the "
            f"manifest's {count} records",
            shard=str(path),
        )


# -- quarantine accounting for degraded reads --------------------------------


@dataclass(frozen=True)
class QuarantinedShard:
    """One shard split out by a degraded read.

    Attributes
    ----------
    index:
        The shard's position in the manifest.
    file:
        Its filename inside the directory.
    records:
        How many records the manifest attributed to it — the sample
        loss this quarantine cost.
    reason:
        The :class:`~repro.errors.ShardCorruptionError` kind tag.
    detail:
        The classified error message, kept for post-mortems.
    """

    index: int
    file: str
    records: int
    reason: str
    detail: str = ""


@dataclass(frozen=True)
class ShardQuarantineReport:
    """Shard-level twin of the record-level ``QuarantineReport``.

    Produced by degraded (``on_corruption="quarantine"``) reads of a
    :class:`~repro.store.ShardedTrace`: each permanently-bad shard is
    listed with its classified reason and record count, so the caller
    knows exactly how much sample the surviving estimate lost — the
    loss is *reported*, never silent.
    """

    shards: Tuple[QuarantinedShard, ...]
    total_shards: int
    total_records: int

    @property
    def dropped_shards(self) -> int:
        """How many shards were quarantined."""
        return len(self.shards)

    @property
    def dropped_records(self) -> int:
        """How many records the quarantined shards held."""
        return sum(shard.records for shard in self.shards)

    @property
    def reason_counts(self) -> Dict[str, int]:
        """``{reason: shard count}`` over the quarantined shards."""
        counts: Dict[str, int] = {}
        for shard in self.shards:
            counts[shard.reason] = counts.get(shard.reason, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable summary (diagnostics / artifacts)."""
        return {
            "dropped_shards": self.dropped_shards,
            "dropped_records": self.dropped_records,
            "total_shards": self.total_shards,
            "total_records": self.total_records,
            "reasons": self.reason_counts,
            "shards": [
                {
                    "index": shard.index,
                    "file": shard.file,
                    "records": shard.records,
                    "reason": shard.reason,
                }
                for shard in self.shards
            ],
        }

    def render(self) -> str:
        """One-line human-readable summary."""
        if not self.shards:
            return f"store quarantine: all {self.total_shards} shards clean"
        reasons = ", ".join(
            f"{reason} x{count}" for reason, count in self.reason_counts.items()
        )
        return (
            f"store quarantine: dropped {self.dropped_shards}/"
            f"{self.total_shards} shard(s), {self.dropped_records}/"
            f"{self.total_records} record(s) ({reasons})"
        )
