"""Tests for the diurnal state-labelled workload."""

import numpy as np
import pytest

from repro import core
from repro.errors import SimulationError
from repro.netsim.diurnal import DiurnalProfile
from repro.stateaware import StateMatchedDR, StateTransitionModel, TransitionAdjustedDR
from repro.workloads import DiurnalWorkload, SyntheticWorkload


@pytest.fixture
def workload():
    return DiurnalWorkload()


class TestGeneration:
    def test_records_labelled_and_timestamped(self, workload, rng):
        old = workload.base.logging_policy(0.3)
        trace = workload.generate_trace(old, 200, rng)
        for record in trace:
            assert record.state in workload.state_factors
            assert 0.0 <= record.timestamp < 24.0
            assert workload.profile.segment_label(record.timestamp) == record.state

    def test_peak_density_highest(self, workload, rng):
        old = workload.base.logging_policy(0.3)
        trace = workload.generate_trace(old, 3000, rng)
        counts = {}
        for record in trace:
            counts[record.state] = counts.get(record.state, 0) + 1
        # Peak spans 6 hours at 2x; normal spans 10 at 1x.
        assert counts["peak"] / 6 > counts["normal"] / 10

    def test_state_scales_rewards(self, workload, rng):
        old = workload.base.logging_policy(0.3)
        trace = workload.generate_trace(old, 4000, rng)
        residual_by_state = {}
        for record in trace:
            base = workload.base.true_mean_reward(record.context, record.decision)
            residual_by_state.setdefault(record.state, []).append(record.reward / base)
        assert np.mean(residual_by_state["peak"]) == pytest.approx(0.8, abs=0.05)
        assert np.mean(residual_by_state["off-peak"]) == pytest.approx(1.1, abs=0.05)

    def test_missing_state_factor_rejected(self):
        with pytest.raises(SimulationError):
            DiurnalWorkload(state_factors={"peak": 0.8})

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(SimulationError):
            DiurnalWorkload(
                state_factors={"peak": 0.0, "normal": 1.0, "off-peak": 1.1}
            )

    def test_unknown_state_in_truth_rejected(self, workload):
        context = workload.base.population().sample(np.random.default_rng(0))
        with pytest.raises(SimulationError):
            workload.true_mean_reward(context, "d0", "midnight-ish")


class TestStateAwareIntegration:
    def test_transition_model_recovers_factors(self, workload, rng):
        old = workload.base.uniform_policy()
        trace = workload.generate_trace(old, 5000, rng)
        model = StateTransitionModel().fit(trace)
        ratio = model.transition("normal", "peak").ratio
        assert ratio == pytest.approx(0.8, abs=0.06)

    def test_transition_dr_beats_naive_for_peak_deployment(self, workload, rng):
        old = workload.base.logging_policy(0.4)
        trace = workload.generate_trace(old, 4000, rng)
        new = workload.base.optimal_policy()
        truth = workload.ground_truth_value(new, trace, "peak")
        factory = lambda: core.TabularMeanModel(key_features=("f0",))
        naive = core.DoublyRobust(factory()).estimate(new, trace, old_policy=old)
        adjusted = TransitionAdjustedDR(factory, target_state="peak").estimate(
            new, trace, old_policy=old
        )
        assert abs(adjusted.value - truth) < abs(naive.value - truth)
