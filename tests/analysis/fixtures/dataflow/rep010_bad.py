"""REP010 positive fixture: a bootstrap path reaching unseeded RNG.

The RNG source lives a module away (``rep010_helpers.jitter``); only a
whole-program analysis sees the taint arrive here.
"""

from .rep010_helpers import jitter


def bootstrap_resample(values):
    """Resample with a helper that secretly draws global randomness."""
    return jitter(values)
