"""AST-based linter engine for OPE-correctness rules.

The engine is deliberately small and dependency-free (stdlib ``ast``
only): it parses every Python file under the given paths once, hands the
parsed modules to each registered :class:`LintRule`, and collects
:class:`Violation` records.  Rules come in two flavours:

* per-module rules override :meth:`LintRule.check_module` and see one
  file at a time;
* project-wide rules additionally override :meth:`LintRule.finalize`
  and see the whole parsed project (needed for cross-file contracts
  such as REP003's estimator-export check).

Suppression: a ``# noqa: REP001`` comment on the offending line
suppresses that rule there; a bare ``# noqa`` suppresses every rule on
the line.  Suppressions are for the rare false positive — the default
posture is that the repository lints clean.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.errors import AnalysisError

_NOQA_PATTERN = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*))?",
    re.IGNORECASE,
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a specific file and line."""

    path: str
    line: int
    rule_id: str
    message: str

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor used in reports."""
        return f"{self.path}:{self.line}"

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


class ModuleUnit:
    """One parsed Python file plus the raw source lines (for noqa)."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            raise AnalysisError(f"{display}:{exc.lineno}: does not parse: {exc.msg}")

    def suppressed(self, line: int, rule_id: str) -> bool:
        """``True`` when *line* carries a noqa comment covering *rule_id*."""
        if not 1 <= line <= len(self.lines):
            return False
        match = _NOQA_PATTERN.search(self.lines[line - 1])
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        return rule_id.upper() in {c.strip().upper() for c in codes.split(",")}


class Project:
    """All parsed modules of one lint invocation."""

    def __init__(self, units: Sequence[ModuleUnit]):
        self.units = list(units)
        self._by_display = {unit.display: unit for unit in self.units}

    def unit_for(self, display: str) -> Optional[ModuleUnit]:
        """Look a unit up by its display path."""
        return self._by_display.get(display)


class LintRule(abc.ABC):
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`/:attr:`description` and implement
    :meth:`check_module` (per-file) and/or :meth:`finalize`
    (project-wide).  None of the shipped rules are safe to auto-rewrite,
    so :attr:`autofixable` defaults to ``False``; a future autofixing
    rule would flip it and implement a fixer.
    """

    #: Stable identifier, e.g. ``"REP001"``.
    rule_id: str = ""
    #: One-line human-readable rationale.
    description: str = ""
    #: Whether the rule can rewrite code to fix its own findings.
    autofixable: bool = False

    def applies_to(self, unit: ModuleUnit) -> bool:
        """Whether this rule runs on *unit* (path-scoped rules override)."""
        return True

    def check_module(self, unit: ModuleUnit, project: Project) -> Iterable[Violation]:
        """Per-file check; yields violations."""
        return ()

    def finalize(self, project: Project) -> Iterable[Violation]:
        """Project-wide check, run once after every module was seen."""
        return ()

    def violation(self, unit: ModuleUnit, node: ast.AST, message: str) -> Violation:
        """Build a violation anchored at *node* in *unit*."""
        return Violation(
            path=unit.display,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise AnalysisError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def registered_rule_ids() -> Tuple[str, ...]:
    """All registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def build_rules(rule_ids: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the requested rules (all registered rules by default)."""
    if rule_ids is None:
        selected = registered_rule_ids()
    else:
        selected = tuple(rule_id.upper() for rule_id in rule_ids)
        unknown = [rule_id for rule_id in selected if rule_id not in _REGISTRY]
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known rules: {', '.join(registered_rule_ids())}"
            )
    return [_REGISTRY[rule_id]() for rule_id in selected]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    violations: Tuple[Violation, ...]
    checked_files: int
    rule_ids: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """``True`` when no violations were found."""
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation of the whole report."""
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "rules": list(self.rule_ids),
            "violations": [violation.to_json() for violation in self.violations],
        }


def collect_python_files(paths: Sequence) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            collected.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return collected


def parse_project(paths: Sequence) -> Project:
    """Parse every Python file under *paths* into a :class:`Project`."""
    units = []
    for path in collect_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}")
        units.append(ModuleUnit(path=path, display=str(path), source=source))
    return Project(units)


def lint_paths(
    paths: Sequence, rule_ids: Optional[Sequence[str]] = None
) -> LintReport:
    """Lint *paths* with the selected rules and return a report.

    Violations are sorted by file, line, and rule id; noqa-suppressed
    findings are dropped before reporting.
    """
    # Importing the rules module populates the registry on first use.
    from repro.analysis import rules as _rules  # noqa: F401

    rules = build_rules(rule_ids)
    project = parse_project(paths)
    violations: List[Violation] = []
    for unit in project.units:
        for rule in rules:
            if not rule.applies_to(unit):
                continue
            violations.extend(rule.check_module(unit, project))
    for rule in rules:
        violations.extend(rule.finalize(project))

    kept = []
    for violation in violations:
        unit = project.unit_for(violation.path)
        if unit is not None and unit.suppressed(violation.line, violation.rule_id):
            continue
        kept.append(violation)
    return LintReport(
        violations=tuple(sorted(set(kept))),
        checked_files=len(project.units),
        rule_ids=tuple(rule.rule_id for rule in rules),
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain like ``np.random.default_rng``.

    Returns ``None`` for expressions that are not plain dotted names
    (calls, subscripts, ...), which rules treat as "not a match".
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
