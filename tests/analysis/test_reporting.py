"""Direct tests for repro/analysis/reporting.py.

Covers the three renderers (text/json/sarif) and the exit-code mapping:
0 clean (warnings alone never fail), 1 violations, 2 usage errors.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintReport,
    Violation,
    exit_code_for,
    lint_paths,
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.reporting import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME
from repro.cli import main
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"


def report_with(violations=(), warnings=(), **kwargs):
    defaults = dict(checked_files=3, rule_ids=("REP001", "REP002"))
    defaults.update(kwargs)
    return LintReport(
        violations=tuple(violations), warnings=tuple(warnings), **defaults
    )


V1 = Violation(path="src/a.py", line=4, rule_id="REP001", message="no rng")
V2 = Violation(path="src/b.py", line=9, rule_id="REP002", message="no assert")
W1 = Violation(
    path="src/c.py",
    line=2,
    rule_id="REP008",
    message="bad noqa",
    severity="warning",
)


class TestText:
    def test_clean_summary(self):
        text = render_text(report_with())
        assert text == "ok: 3 file(s) clean under 2 rule(s)"

    def test_violation_lines_and_summary(self):
        text = render_text(report_with([V1, V2]))
        lines = text.splitlines()
        assert lines[0] == "src/a.py:4: REP001 no rng"
        assert lines[1] == "src/b.py:9: REP002 no assert"
        assert lines[2] == "2 violation(s) in 2 file(s) (3 checked)"

    def test_warnings_marked_and_do_not_fail(self):
        report = report_with(warnings=[W1])
        text = render_text(report)
        assert "src/c.py:2: REP008 [warning] bad noqa" in text
        assert "ok: 3 file(s) clean" in text
        assert "1 warning(s)" in text

    def test_baseline_and_cache_counters(self):
        report = report_with(baselined=2, cached_files=5, analyzed_files=1)
        text = render_text(report)
        assert "2 baselined" in text
        assert "cache: 5 hit(s), 1 analyzed" in text


class TestJson:
    def test_round_trips_with_warnings(self):
        payload = json.loads(render_json(report_with([V1], [W1])))
        assert payload["ok"] is False
        assert payload["rules"] == ["REP001", "REP002"]
        assert payload["violations"][0]["severity"] == "error"
        assert payload["warnings"][0]["severity"] == "warning"

    def test_counters_serialised(self):
        payload = json.loads(
            render_json(
                report_with(baselined=1, cached_files=2, analyzed_files=1)
            )
        )
        assert payload["baselined"] == 1
        assert payload["cached_files"] == 2
        assert payload["analyzed_files"] == 1


class TestSarif:
    def document(self, report):
        return json.loads(render_sarif(report))

    def test_envelope(self):
        doc = self.document(report_with([V1]))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA
        assert len(doc["runs"]) == 1
        assert doc["runs"][0]["tool"]["driver"]["name"] == TOOL_NAME

    def test_rules_metadata_from_registry(self):
        doc = self.document(report_with())
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == ["REP001", "REP002"]
        assert all(rule["shortDescription"]["text"] for rule in rules)

    def test_results_carry_location_and_level(self):
        doc = self.document(report_with([V1], [W1]))
        results = doc["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning"]
        first = results[0]
        assert first["ruleId"] == "REP001"
        assert first["ruleIndex"] == 0
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert location["region"]["startLine"] == 4

    def test_unknown_rule_id_falls_back_to_bare_id(self):
        report = report_with([V1], rule_ids=("REPX99",))
        doc = self.document(report)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[0]["shortDescription"]["text"] == "REPX99"

    def test_real_report_validates_against_subset_schema(self):
        import subprocess
        import sys

        report = lint_paths([str(FIXTURES / "rep001_bad.py")])
        document = render_sarif(report)
        result = subprocess.run(
            [sys.executable, str(Path("scripts") / "validate_sarif.py"), "-"],
            input=document,
            capture_output=True,
            text=True,
            cwd=Path(__file__).parents[2],
        )
        assert result.returncode == 0, result.stderr


class TestDispatchAndExitCodes:
    def test_render_dispatch(self):
        report = report_with()
        assert render(report, "text") == render_text(report)
        assert render(report, "json") == render_json(report)
        assert render(report, "sarif") == render_sarif(report)

    def test_unknown_format_raises_usage_error(self):
        with pytest.raises(AnalysisError):
            render(report_with(), "xml")

    def test_exit_zero_when_clean_even_with_warnings(self):
        assert exit_code_for(report_with(warnings=[W1])) == 0

    def test_exit_one_on_violations(self):
        assert exit_code_for(report_with([V1])) == 1

    def test_exit_two_on_usage_error_via_cli(self, capsys):
        assert main(["lint", "--rules", "NOPE1", str(FIXTURES)]) == 2
        assert "error" in capsys.readouterr().err
