"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper via the
experiment drivers, asserts its qualitative *shape* (who wins, in which
direction), and records the paper-style rows so the pytest-benchmark run
doubles as the artifact generator for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import re
import sys

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


def report(text: str) -> None:
    """Record a rendered experiment table.

    The table is written to ``benchmark_results/<experiment-id>.txt``
    (derived from the ``== id ==`` header line) so it survives pytest's
    fd-level output capture, and also printed to the original stdout for
    interactive runs with ``-s``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    match = re.search(r"==\s*([^=]+?)\s*==", text)
    name = match.group(1).strip().replace(" ", "-") if match else "unnamed"
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text, file=sys.__stdout__, flush=True)
