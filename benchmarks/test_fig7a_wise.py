"""Fig 7a — trace bias: DR vs the WISE CBN evaluator.

Paper: "DR's evaluation error is about 32% lower than WISE" over 50
runs of the Fig 4 scenario (500 clients per arrow, 5 per remaining
combination, 50% of ISP-1 clients shifted to FE-1+BE-2).
"""

from repro.experiments import run_fig7a

from benchmarks.conftest import report

RUNS = 50
SEED = 2017


def test_fig7a_wise_vs_dr(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7a(runs=RUNS, seed=SEED), rounds=1, iterations=1
    )
    report(result.render())

    wise = result.summaries["wise"]
    dr = result.summaries["dr"]
    # Shape: DR's mean evaluation error is materially lower than WISE's
    # (the paper reports ~32% lower; our synthetic instantiation gives a
    # larger reduction — same direction).
    assert dr.mean < wise.mean
    assert result.reduction() > 0.25
    # Both estimators ran on every one of the 50 traces.
    assert wise.runs == RUNS
    assert dr.runs == RUNS
