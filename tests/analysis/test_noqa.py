"""Tests for noqa parsing and suppression semantics.

The contract: ``# noqa`` (bare) suppresses every rule on the line,
``# noqa: REP001,REP004`` suppresses exactly the listed rules, and an
unknown ``REP`` id suppresses *nothing* — it is surfaced as a REP008
warning instead of silently widening the suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.linter import ModuleUnit, build_noqa_map, parse_noqa_codes

FIXTURES = Path(__file__).parent / "fixtures"


class TestParseNoqaCodes:
    def test_no_comment(self):
        assert parse_noqa_codes("x = 1") is None
        assert parse_noqa_codes("x = 1  # plain comment") is None

    def test_bare_noqa(self):
        assert parse_noqa_codes("x = 1  # noqa") == (True, None)

    def test_single_code(self):
        assert parse_noqa_codes("x = 1  # noqa: REP001") == (True, ["REP001"])

    def test_comma_separated_list(self):
        assert parse_noqa_codes("x = 1  # noqa: REP001,REP004") == (
            True,
            ["REP001", "REP004"],
        )

    def test_whitespace_separated_list(self):
        assert parse_noqa_codes("x = 1  # noqa: REP001 REP004") == (
            True,
            ["REP001", "REP004"],
        )

    def test_case_insensitive_marker(self):
        present, codes = parse_noqa_codes("x = 1  # NOQA: rep002")
        assert present
        assert codes == ["rep002"]

    def test_trailing_rationale_tolerated(self):
        present, codes = parse_noqa_codes(
            "x = 1  # noqa: REP006 - unfittable candidate"
        )
        assert present
        assert codes == ["REP006"]

    def test_malformed_tokens_dropped_not_widened(self):
        # A garbage token must not degrade the comment into a bare noqa.
        present, codes = parse_noqa_codes("x = 1  # noqa: ???")
        assert present
        assert codes == []

    def test_foreign_codes_parse(self):
        present, codes = parse_noqa_codes("import os  # noqa: F401")
        assert present
        assert codes == ["F401"]


class TestSuppression:
    def make_unit(self, source: str) -> ModuleUnit:
        return ModuleUnit(path=Path("mem.py"), display="mem.py", source=source)

    def test_bare_noqa_suppresses_everything(self):
        unit = self.make_unit('"""Doc."""\nassert True  # noqa\n')
        assert unit.suppressed(2, "REP002")
        assert unit.suppressed(2, "REP001")

    def test_listed_codes_suppress_only_themselves(self):
        unit = self.make_unit('"""Doc."""\nassert True  # noqa: REP002\n')
        assert unit.suppressed(2, "REP002")
        assert not unit.suppressed(2, "REP001")

    def test_rule_lists_cover_each_member(self):
        unit = self.make_unit(
            '"""Doc."""\nassert True  # noqa: REP001,REP002\n'
        )
        assert unit.suppressed(2, "REP001")
        assert unit.suppressed(2, "REP002")
        assert not unit.suppressed(2, "REP004")

    def test_codes_match_case_insensitively(self):
        unit = self.make_unit('"""Doc."""\nassert True  # noqa: rep002\n')
        assert unit.suppressed(2, "REP002")

    def test_unrelated_lines_not_suppressed(self):
        unit = self.make_unit('"""Doc."""\nassert True  # noqa: REP002\n')
        assert not unit.suppressed(1, "REP002")

    def test_build_noqa_map_lines(self):
        noqa = build_noqa_map(
            ["x = 1", "y = 2  # noqa", "z = 3  # noqa: REP004"]
        )
        assert noqa == {2: None, 3: ["REP004"]}


class TestUnknownIds:
    def test_unknown_rep_code_does_not_suppress(self, tmp_path):
        # A typo'd id must not hide the finding it meant to suppress.
        bad = tmp_path / "typo.py"
        bad.write_text('"""Doc."""\nassert True  # noqa: REP999\n')
        report = lint_paths([str(bad)])
        assert [v.rule_id for v in report.violations] == ["REP002"]

    def test_unknown_rep_code_warns_via_rep008(self):
        report = lint_paths([str(FIXTURES / "rep008_bad.py")], ["REP008"])
        assert report.ok  # warnings never fail the run
        assert [(w.rule_id, w.line, w.detail) for w in report.warnings] == [
            ("REP008", 3, "REP999"),
            ("REP008", 4, "REP998"),
        ]
        assert "suppress nothing" in report.warnings[0].message

    def test_known_and_foreign_codes_not_warned(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text(
            '"""Doc."""\nx = 1  # noqa: REP001\nimport os  # noqa: F401\n'
        )
        report = lint_paths([str(clean)], ["REP008"])
        assert report.ok
        assert report.warnings == ()
