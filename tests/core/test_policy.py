"""Tests for stationary policies."""

import numpy as np
import pytest

from repro.core.policy import (
    DeterministicPolicy,
    EpsilonGreedyPolicy,
    FunctionPolicy,
    GreedyModelPolicy,
    MixturePolicy,
    SoftmaxPolicy,
    TabularPolicy,
    UniformRandomPolicy,
    validate_distribution,
)
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext
from repro.errors import PolicyError

SPACE = DecisionSpace(["a", "b", "c"])
CONTEXT = ClientContext(x=1.0)


def assert_is_distribution(distribution):
    assert all(p >= -1e-9 for p in distribution.values())
    assert abs(sum(distribution.values()) - 1.0) < 1e-6


class TestValidateDistribution:
    def test_accepts_valid(self):
        validate_distribution({"a": 0.5, "b": 0.5}, SPACE)

    def test_rejects_negative(self):
        with pytest.raises(PolicyError):
            validate_distribution({"a": -0.1, "b": 1.1}, SPACE)

    def test_rejects_bad_sum(self):
        with pytest.raises(PolicyError):
            validate_distribution({"a": 0.5}, SPACE)

    def test_rejects_unknown_decision(self):
        with pytest.raises(PolicyError):
            validate_distribution({"z": 1.0}, SPACE)


class TestDeterministicPolicy:
    def test_probability_one(self):
        policy = DeterministicPolicy(SPACE, lambda c: "b")
        assert policy.probabilities(CONTEXT) == {"b": 1.0}
        assert policy.propensity("b", CONTEXT) == 1.0
        assert policy.propensity("a", CONTEXT) == 0.0

    def test_sample_always_same(self):
        policy = DeterministicPolicy(SPACE, lambda c: "c")
        rng = np.random.default_rng(0)
        assert all(policy.sample(CONTEXT, rng) == "c" for _ in range(10))

    def test_rule_output_validated(self):
        policy = DeterministicPolicy(SPACE, lambda c: "nope")
        with pytest.raises(PolicyError):
            policy.probabilities(CONTEXT)

    def test_is_deterministic_for(self):
        policy = DeterministicPolicy(SPACE, lambda c: "a")
        assert policy.is_deterministic_for(CONTEXT)

    def test_context_dependent_rule(self):
        policy = DeterministicPolicy(
            SPACE, lambda c: "a" if c["x"] > 0 else "b"
        )
        assert policy.greedy_decision(ClientContext(x=1.0)) == "a"
        assert policy.greedy_decision(ClientContext(x=-1.0)) == "b"


class TestUniformRandomPolicy:
    def test_uniform(self):
        policy = UniformRandomPolicy(SPACE)
        distribution = policy.probabilities(CONTEXT)
        assert_is_distribution(distribution)
        assert all(abs(p - 1 / 3) < 1e-9 for p in distribution.values())

    def test_not_deterministic(self):
        assert not UniformRandomPolicy(SPACE).is_deterministic_for(CONTEXT)


class TestEpsilonGreedy:
    def test_propensity_floor(self):
        base = DeterministicPolicy(SPACE, lambda c: "a")
        policy = EpsilonGreedyPolicy(base, epsilon=0.3)
        distribution = policy.probabilities(CONTEXT)
        assert_is_distribution(distribution)
        assert distribution["a"] == pytest.approx(0.7 + 0.1)
        assert distribution["b"] == pytest.approx(0.1)

    def test_epsilon_bounds(self):
        base = DeterministicPolicy(SPACE, lambda c: "a")
        with pytest.raises(PolicyError):
            EpsilonGreedyPolicy(base, epsilon=1.5)

    def test_epsilon_one_is_uniform(self):
        base = DeterministicPolicy(SPACE, lambda c: "a")
        policy = EpsilonGreedyPolicy(base, epsilon=1.0)
        distribution = policy.probabilities(CONTEXT)
        assert all(abs(p - 1 / 3) < 1e-9 for p in distribution.values())


class TestSoftmax:
    def test_prefers_high_score(self):
        policy = SoftmaxPolicy(
            SPACE, score=lambda c, d: {"a": 0.0, "b": 1.0, "c": 2.0}[d]
        )
        distribution = policy.probabilities(CONTEXT)
        assert_is_distribution(distribution)
        assert distribution["c"] > distribution["b"] > distribution["a"]

    def test_low_temperature_concentrates(self):
        hot = SoftmaxPolicy(SPACE, lambda c, d: {"a": 0, "b": 0, "c": 1}[d], 10.0)
        cold = SoftmaxPolicy(SPACE, lambda c, d: {"a": 0, "b": 0, "c": 1}[d], 0.01)
        assert cold.probabilities(CONTEXT)["c"] > hot.probabilities(CONTEXT)["c"]
        assert cold.probabilities(CONTEXT)["c"] > 0.99

    def test_temperature_must_be_positive(self):
        with pytest.raises(PolicyError):
            SoftmaxPolicy(SPACE, lambda c, d: 0.0, temperature=0.0)

    def test_extreme_scores_stable(self):
        policy = SoftmaxPolicy(SPACE, lambda c, d: 1e6 if d == "a" else 0.0)
        distribution = policy.probabilities(CONTEXT)
        assert_is_distribution(distribution)
        assert distribution["a"] == pytest.approx(1.0)


class TestMixture:
    def test_blend(self):
        always_a = DeterministicPolicy(SPACE, lambda c: "a")
        uniform = UniformRandomPolicy(SPACE)
        mixture = MixturePolicy([always_a, uniform], [0.5, 0.5])
        distribution = mixture.probabilities(CONTEXT)
        assert_is_distribution(distribution)
        assert distribution["a"] == pytest.approx(0.5 + 0.5 / 3)

    def test_weight_validation(self):
        policy = UniformRandomPolicy(SPACE)
        with pytest.raises(PolicyError):
            MixturePolicy([policy], [0.9])
        with pytest.raises(PolicyError):
            MixturePolicy([policy, policy], [1.5, -0.5])

    def test_space_mismatch_rejected(self):
        other = UniformRandomPolicy(DecisionSpace(["x"]))
        with pytest.raises(PolicyError):
            MixturePolicy([UniformRandomPolicy(SPACE), other], [0.5, 0.5])


class TestTabularPolicy:
    def test_lookup(self):
        policy = TabularPolicy(
            SPACE,
            key_features=("isp",),
            table={("one",): {"a": 1.0}, ("two",): {"b": 0.5, "c": 0.5}},
        )
        assert policy.probabilities(ClientContext(isp="one"))["a"] == 1.0
        assert policy.probabilities(ClientContext(isp="two"))["b"] == 0.5

    def test_default_used_for_unknown_key(self):
        policy = TabularPolicy(
            SPACE, key_features=("isp",), table={}, default={"c": 1.0}
        )
        assert policy.probabilities(ClientContext(isp="zzz")) == {"c": 1.0}

    def test_no_default_raises(self):
        policy = TabularPolicy(SPACE, key_features=("isp",), table={})
        with pytest.raises(PolicyError):
            policy.probabilities(ClientContext(isp="zzz"))

    def test_table_rows_validated(self):
        with pytest.raises(PolicyError):
            TabularPolicy(SPACE, ("isp",), {("one",): {"a": 0.4}})


class TestFunctionPolicy:
    def test_validates_every_call(self):
        policy = FunctionPolicy(SPACE, lambda c: {"a": 0.4})
        with pytest.raises(PolicyError):
            policy.probabilities(CONTEXT)

    def test_valid_function(self):
        policy = FunctionPolicy(SPACE, lambda c: {"a": 0.25, "b": 0.75})
        assert policy.propensity("b", CONTEXT) == 0.75


class TestGreedyModelPolicy:
    def test_picks_model_best(self):
        class FakeModel:
            def predict(self, context, decision):
                return {"a": 0.1, "b": 0.9, "c": 0.5}[decision]

        policy = GreedyModelPolicy(SPACE, FakeModel())
        assert policy.probabilities(CONTEXT) == {"b": 1.0}


class TestSamplingStatistics:
    def test_sample_matches_probabilities(self):
        policy = EpsilonGreedyPolicy(
            DeterministicPolicy(SPACE, lambda c: "a"), epsilon=0.6
        )
        rng = np.random.default_rng(0)
        counts = {"a": 0, "b": 0, "c": 0}
        n = 6000
        for _ in range(n):
            counts[policy.sample(CONTEXT, rng)] += 1
        assert counts["a"] / n == pytest.approx(0.6, abs=0.03)
        assert counts["b"] / n == pytest.approx(0.2, abs=0.03)
