"""REP003 spec fixture: paired and non-wire-format classes all pass."""


class RoundTripSpec:
    """Full pair: to_dict and from_dict — the required shape."""

    def __init__(self, kind):
        self.kind = kind

    def to_dict(self):
        """Serialise to a plain dict."""
        return {"kind": self.kind}

    @classmethod
    def from_dict(cls, payload):
        """Rebuild from to_dict() output."""
        return cls(payload["kind"])


class PlainFactorySpec:
    """Defines neither method: not a wire format, left alone."""

    def __init__(self, name):
        self.name = name


class SerializerHelper:
    """to_dict on a non-spec-suffixed class is out of scope."""

    def to_dict(self):
        """Serialise."""
        return {}
