"""Tests for the :mod:`repro.serve` service tier."""
