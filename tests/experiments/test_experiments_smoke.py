"""Smoke tests for every experiment driver at reduced scale.

Full-scale shape assertions live in the benchmark suite; these verify
each driver runs end-to-end, returns well-formed results, and shows the
right *direction* at small run counts.
"""

import numpy as np
import pytest

from repro.experiments import (
    render_model_family_table,
    run_dimensionality_ablation,
    run_model_family_ablation,
    run_fig1_workflow,
    run_fig2_abr_bias,
    run_fig3_relay_bias,
    run_fig4_cbn_learning,
    run_fig5_matching_coverage,
    run_fig7a,
    run_fig7b,
    run_fig7c,
    run_nonstationary_replay,
    run_randomness_ablation,
    run_reward_coupling,
    run_second_order_ablation,
    run_state_mismatch,
    run_trace_size_ablation,
    render_coverage_table,
    render_second_order_grid,
    render_sweep,
)


class TestFig7:
    def test_fig7a_dr_wins(self):
        result = run_fig7a(runs=3, seed=11)
        assert result.summaries["dr"].mean < result.summaries["wise"].mean
        assert result.reduction() > 0

    def test_fig7b_dr_wins(self):
        result = run_fig7b(runs=3, seed=11, chunk_count=60)
        assert result.summaries["dr"].mean < result.summaries["fastmpc"].mean

    def test_fig7c_runs(self):
        result = run_fig7c(runs=3, seed=11)
        assert set(result.summaries) == {"cfa", "dr"}
        assert result.summaries["dr"].runs == 3


class TestIllustrativeFigures:
    def test_fig1_selects_well(self):
        outcome = run_fig1_workflow(seed=4)
        assert outcome.selected in outcome.true_values
        assert outcome.regret >= 0.0

    def test_fig2_replay_biased(self):
        outcome = run_fig2_abr_bias(seed=4, chunk_count=40)
        assert outcome.replay_relative_error > 0.05
        assert outcome.low_bitrate_fraction_logged > 0.5

    def test_fig3_dr_wins(self):
        result = run_fig3_relay_bias(runs=3, seed=4)
        assert result.summaries["dr"].mean < result.summaries["via"].mean

    def test_fig4_structure_often_wrong(self):
        outcome = run_fig4_cbn_learning(runs=4, seed=4)
        assert 0.0 <= outcome.backend_missing_fraction <= 1.0
        assert outcome.misprediction_ms_mean > 0.0

    def test_fig5_match_fraction_decreases(self):
        outcomes = run_fig5_matching_coverage(
            cdn_counts=(2, 6), runs=4, seed=4, n_clients=300
        )
        assert outcomes[0].match_fraction_mean > outcomes[1].match_fraction_mean
        table = render_coverage_table(outcomes)
        assert "|D|" in table


class TestAblations:
    def test_randomness_sweep_shapes(self):
        points = run_randomness_ablation(
            epsilons=(0.05, 1.0), runs=4, n_trace=400, seed=4
        )
        assert len(points) == 2
        # IPS should be worse at low exploration than at uniform logging.
        assert (
            points[0].summaries["ips"].mean > points[1].summaries["ips"].mean
        )
        assert "dr-est-prop" in points[0].summaries
        assert "epsilon" in render_sweep(points, "epsilon")

    def test_dimensionality_sweep(self):
        points = run_dimensionality_ablation(
            decision_counts=(2, 8), runs=4, n_trace=400, seed=4
        )
        assert len(points) == 2
        assert all("clipped-ips" in p.summaries for p in points)

    def test_trace_size_sweep_errors_shrink(self):
        points = run_trace_size_ablation(sizes=(100, 2000), runs=4, seed=4)
        assert (
            points[0].summaries["dr"].mean > points[1].summaries["dr"].mean
        )

    def test_model_family_ablation(self):
        from repro.cfa.scenario import CfaScenario

        points = run_model_family_ablation(
            runs=3, seed=4, scenario=CfaScenario(n_clients=300)
        )
        assert len(points) == 4
        for point in points:
            assert set(point.summaries) == {"dm", "dr"}
        table = render_model_family_table(points)
        assert "knn" in table and "ridge" in table

    def test_second_order_grid(self):
        grid = run_second_order_ablation(
            model_biases=(0.0, 1.0),
            propensity_errors=(0.0, 0.5),
            runs=4,
            n_trace=400,
            seed=4,
        )
        assert len(grid) == 4
        by_key = {
            (point.model_bias, point.propensity_error): point for point in grid
        }
        # DR accurate when either ingredient is accurate.
        assert by_key[(1.0, 0.0)].dr_error_mean < by_key[(1.0, 0.0)].dm_error_mean
        assert by_key[(0.0, 0.5)].dr_error_mean < by_key[(0.0, 0.5)].ips_error_mean
        assert "dm" in render_second_order_grid(grid)


class TestExtensions:
    def test_nonstationary_replay_wins(self):
        result = run_nonstationary_replay(runs=5, n_trace=800, seed=4)
        assert result.summaries["replay-dr"].mean < result.summaries["naive-dr"].mean

    def test_state_mismatch_corrections_win(self):
        result = run_state_mismatch(runs=3, n_trace=600, seed=4)
        naive = result.summaries["naive-dr"].mean
        assert result.summaries["transition-dr"].mean < naive
        assert result.summaries["state-matched-dr"].mean < naive

    def test_reward_coupling_changepoint_wins(self):
        result = run_reward_coupling(runs=2, n_clients=800, seed=4)
        assert (
            result.summaries["changepoint-dr"].mean
            < result.summaries["naive-dr"].mean
        )
