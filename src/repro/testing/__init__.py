"""Deterministic testing utilities for the :mod:`repro` library.

Currently one module: :mod:`repro.testing.faults`, the composable fault
models that prove the :mod:`repro.runtime` resilience layer actually
degrades gracefully instead of merely claiming to.
"""

from repro.testing.faults import (
    CrashAfter,
    FlakyRun,
    SimulatedCrash,
    duplicate_records,
    inject_bad_propensities,
    inject_nan_rewards,
    inject_schema_drift,
    truncate_records,
)

__all__ = [
    "CrashAfter",
    "FlakyRun",
    "SimulatedCrash",
    "duplicate_records",
    "inject_bad_propensities",
    "inject_nan_rewards",
    "inject_schema_drift",
    "truncate_records",
]
