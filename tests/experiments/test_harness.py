"""Tests for the repeated-run experiment harness."""

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.experiments.harness import ExperimentResult, run_repeated


class TestRunRepeated:
    def test_aggregates_per_label(self):
        def run(rng):
            return {"a": rng.uniform(0.1, 0.2), "b": rng.uniform(0.3, 0.4)}

        result = run_repeated("test", run, runs=20, seed=1, baseline="b", treatment="a")
        assert result.summaries["a"].runs == 20
        assert 0.1 <= result.summaries["a"].mean <= 0.2
        assert result.reduction() > 0.0

    def test_deterministic_given_seed(self):
        def run(rng):
            return {"x": rng.uniform()}

        a = run_repeated("t", run, runs=5, seed=3)
        b = run_repeated("t", run, runs=5, seed=3)
        assert a.summaries["x"].mean == b.summaries["x"].mean

    def test_different_seeds_differ(self):
        def run(rng):
            return {"x": rng.uniform()}

        a = run_repeated("t", run, runs=5, seed=3)
        b = run_repeated("t", run, runs=5, seed=4)
        assert a.summaries["x"].mean != b.summaries["x"].mean

    def test_failed_runs_counted_not_fatal(self):
        calls = {"n": 0}

        def run(rng):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise EstimatorError("degenerate resample")
            return {"x": 0.5}

        result = run_repeated("t", run, runs=10, seed=0)
        assert result.failed_runs == 5
        assert result.summaries["x"].runs == 5

    def test_all_failed_raises(self):
        def run(rng):
            raise EstimatorError("nope")

        with pytest.raises(EstimatorError):
            run_repeated("t", run, runs=3, seed=0)

    def test_other_exceptions_propagate(self):
        def run(rng):
            raise ValueError("bug")

        with pytest.raises(ValueError):
            run_repeated("t", run, runs=3, seed=0)

    def test_zero_runs_rejected(self):
        with pytest.raises(EstimatorError):
            run_repeated("t", lambda rng: {"x": 1.0}, runs=0)

    def test_render(self):
        result = run_repeated(
            "demo",
            lambda rng: {"base": 0.2, "dr": 0.1},
            runs=4,
            seed=0,
            baseline="base",
            treatment="dr",
        )
        text = result.render()
        assert "demo" in text
        assert "50% lower" in text

    def test_reduction_requires_pair(self):
        result = run_repeated("t", lambda rng: {"x": 1.0}, runs=2, seed=0)
        with pytest.raises(EstimatorError):
            result.reduction()
