"""Fig 1 — the trace-driven evaluation workflow.

The schematic's promise, quantified: an offline evaluator built on DR
picks the truly-best policy out of a candidate set, with zero or near-
zero selection regret.
"""

import numpy as np

from repro.experiments import run_fig1_workflow

from benchmarks.conftest import report

RUNS = 10
SEED = 2017


def test_fig1_policy_selection_regret(benchmark):
    def run_all():
        outcomes = [run_fig1_workflow(seed=SEED + index) for index in range(RUNS)]
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    correct = sum(o.selected == o.truly_best for o in outcomes)
    mean_regret = float(np.mean([o.regret for o in outcomes]))
    report(
        "== fig1-workflow ==\n"
        f"correct selections: {correct}/{RUNS}\n"
        f"mean selection regret: {mean_regret:.4f}"
    )
    # Shape: the DR-driven workflow almost always finds the best policy.
    assert correct >= RUNS - 2
    assert mean_regret < 0.1
