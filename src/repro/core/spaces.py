"""Decision spaces.

A decision space enumerates the possible decisions ``d in D`` a policy may
take (paper §2.1).  Most networking decision spaces in the paper are small
and discrete — a set of CDNs, a bitrate ladder, a set of relay paths — or
a product of several such factors (CFA assigns a CDN *and* a bitrate).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.core.types import Decision
from repro.errors import PolicyError


class DecisionSpace:
    """A finite, ordered set of decisions.

    Order is significant only for reproducibility (sampling iterates
    decisions in a fixed order); membership is what estimators check.
    """

    def __init__(self, decisions: Iterable[Decision]):
        self._decisions: List[Decision] = []
        seen = set()
        for decision in decisions:
            if decision in seen:
                raise PolicyError(f"duplicate decision {decision!r} in decision space")
            seen.add(decision)
            self._decisions.append(decision)
        if not self._decisions:
            raise PolicyError("decision space must contain at least one decision")
        self._membership = frozenset(self._decisions)
        self._positions = {
            decision: position for position, decision in enumerate(self._decisions)
        }

    @property
    def decisions(self) -> Tuple[Decision, ...]:
        """All decisions in their canonical order."""
        return tuple(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def __contains__(self, decision: Decision) -> bool:
        return decision in self._membership

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionSpace):
            return NotImplemented
        return self._decisions == other._decisions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(d) for d in self._decisions[:4])
        suffix = ", ..." if len(self._decisions) > 4 else ""
        return f"DecisionSpace([{preview}{suffix}], n={len(self)})"

    def index_of(self, decision: Decision) -> int:
        """Position of *decision* in the canonical order."""
        try:
            return self._positions[decision]
        except KeyError:
            raise PolicyError(f"decision {decision!r} not in decision space") from None

    def validate(self, decision: Decision) -> None:
        """Raise :class:`PolicyError` unless *decision* belongs to the space."""
        if decision not in self:
            raise PolicyError(f"decision {decision!r} not in decision space")


class ProductDecisionSpace(DecisionSpace):
    """Cartesian product of several decision factors.

    Decisions are tuples, one element per factor, e.g.
    ``ProductDecisionSpace(cdns=["cdn-a", "cdn-b"], bitrate=[360, 720])``
    yields ``("cdn-a", 360)``, ``("cdn-a", 720)``, ...

    This models CFA-style joint decisions (Fig 5) where the decision space
    is "sufficiently rich" and matching-based evaluation collapses.
    """

    def __init__(self, **factors: Sequence[Decision]):
        if not factors:
            raise PolicyError("a product decision space needs at least one factor")
        self._factor_names: Tuple[str, ...] = tuple(factors.keys())
        self._factors: Tuple[Tuple[Decision, ...], ...] = tuple(
            tuple(values) for values in factors.values()
        )
        for name, values in zip(self._factor_names, self._factors):
            if not values:
                raise PolicyError(f"factor {name!r} has no values")
        super().__init__(itertools.product(*self._factors))

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Names of the product factors, in declaration order."""
        return self._factor_names

    def factor_values(self, name: str) -> Tuple[Decision, ...]:
        """The values of factor *name*."""
        try:
            position = self._factor_names.index(name)
        except ValueError:
            raise PolicyError(f"unknown factor {name!r}") from None
        return self._factors[position]

    def project(self, decision: Decision, name: str) -> Decision:
        """Extract factor *name* from a composite *decision* tuple."""
        self.validate(decision)
        position = self._factor_names.index(name)
        return decision[position]  # type: ignore[index]
