"""Estimator interface and result type.

Every off-policy estimator consumes a trace, a new policy and a source of
old-policy propensities, and returns an :class:`EstimateResult` carrying
the value estimate, per-record contributions (for variance/bootstrap),
and diagnostics.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.contracts import check_trace, check_weights
from repro.core.policy import Policy
from repro.core.propensity import (
    PropensityModel,
    PropensitySource,
    resolve_propensity_source,
)
from repro.core.types import Trace
from repro.errors import EstimatorError
from repro.obs.spans import observe, recording, set_gauge, span


@dataclass(frozen=True)
class EstimateResult:
    """The output of one estimator run.

    Attributes
    ----------
    value:
        The estimated expected reward ``V̂(mu_new, T)``.
    method:
        Estimator name (``"dm"``, ``"ips"``, ``"dr"``, ...).
    n:
        Number of trace records the estimate used.
    contributions:
        Per-record contributions whose mean is :attr:`value`.  Empty when
        an estimator cannot express itself as a per-record mean (e.g. the
        replay estimator over matched subsets reports matched
        contributions only).
    std_error:
        Standard error of the mean of :attr:`contributions` (``nan`` when
        fewer than two contributions exist).
    diagnostics:
        Free-form extras: effective sample size, weight range, match
        counts, and anything scenario-specific.
    """

    value: float
    method: str
    n: int
    contributions: np.ndarray = field(default_factory=lambda: np.zeros(0))
    std_error: float = float("nan")
    diagnostics: Dict[str, Any] = field(default_factory=dict)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval ``value ± z·stderr``."""
        if not np.isfinite(self.std_error):
            raise EstimatorError(
                "standard error unavailable; use bootstrap_ci for this estimator"
            )
        return (self.value - z * self.std_error, self.value + z * self.std_error)


def resolve_legacy_kwarg(
    owner: str,
    canonical: str,
    value: Optional[float],
    legacy: Dict[str, Any],
    alias: str,
) -> Optional[float]:
    """Resolve a deprecated constructor-keyword alias onto its canonical name.

    Estimator constructors share a canonical keyword vocabulary
    (``model=``, ``clip=``, ``fit_on_trace=``, ``propensity_source=``,
    ``rng=``); historical spellings such as ``max_weight=`` and ``tau=``
    keep working through a ``**legacy`` catch-all that funnels here.
    Passing the alias emits a :class:`DeprecationWarning`; passing both
    spellings, or any unknown keyword, raises :class:`EstimatorError`.
    """
    unknown = sorted(key for key in legacy if key != alias)
    if unknown:
        raise EstimatorError(
            f"{owner}() got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    if alias not in legacy:
        return value
    if value is not None:
        raise EstimatorError(
            f"{owner}() got both {canonical!r} and its deprecated alias {alias!r}"
        )
    warnings.warn(
        f"{owner}({alias}=...) is deprecated; pass {canonical}= instead "
        "(the alias is scheduled for removal in 2.0, see DESIGN.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    return legacy[alias]


def result_from_contributions(
    method: str,
    contributions: np.ndarray,
    diagnostics: Optional[Dict[str, Any]] = None,
) -> EstimateResult:
    """Build an :class:`EstimateResult` from per-record contributions."""
    contributions = np.asarray(contributions, dtype=float)
    if contributions.size == 0:
        raise EstimatorError(f"{method}: no contributions to average")
    value = float(contributions.mean())
    if contributions.size > 1:
        std_error = float(contributions.std(ddof=1) / np.sqrt(contributions.size))
    else:
        std_error = float("nan")
    return EstimateResult(
        value=value,
        method=method,
        n=int(contributions.size),
        contributions=contributions,
        std_error=std_error,
        diagnostics=dict(diagnostics or {}),
    )


class OffPolicyEstimator(abc.ABC):
    """Base class for trace-driven (off-policy) value estimators.

    Subclasses implement :meth:`_estimate`; the public :meth:`estimate`
    validates inputs and resolves the propensity source (old policy
    object > fitted propensity model > logged per-record propensities).
    """

    #: Whether the estimator needs old-policy propensities at all (the
    #: Direct Method does not).
    requires_propensities: bool = True

    #: Machine-readable names of this estimator's *anticipated* failure
    #: modes (contract violations it raises :class:`EstimatorError` for).
    #: Fallback chains (:mod:`repro.runtime.fallback`) attach these to
    #: their hop records so reports can distinguish an expected
    #: degradation from a surprising one.
    failure_modes: tuple = ()

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short estimator name used in reports."""

    def estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
        propensity_floor: Optional[float] = None,
    ) -> EstimateResult:
        """Estimate the value of *new_policy* from *trace*.

        Parameters mirror the paper's evaluator signature
        ``V̂(mu_new, mu_old, T)``; when *old_policy* is omitted the
        propensities come from *propensity_model* or the trace itself.
        *propensity_floor* opts into clipping tiny positive propensities
        (see :class:`~repro.core.propensity.FlooredPropensitySource`).
        """
        with span("estimate", estimator=self.name):
            if len(trace) == 0:
                raise EstimatorError("cannot estimate from an empty trace")
            if not isinstance(trace, Trace) and hasattr(trace, "iter_chunks"):
                # Out-of-core trace (repro.store.ShardedTrace or anything
                # adopting its chunk protocol): evaluate chunk by chunk.
                # Imported lazily — repro.store depends on repro.core.
                from repro.store.streaming import stream_estimate

                result = stream_estimate(
                    self,
                    new_policy,
                    trace,
                    old_policy=old_policy,
                    propensity_model=propensity_model,
                    propensity_floor=propensity_floor,
                )
            else:
                check_trace(trace, where=f"{self.name} input trace")
                source: Optional[PropensitySource] = None
                if self.requires_propensities:
                    source = resolve_propensity_source(
                        trace, old_policy, propensity_model, floor=propensity_floor
                    )
                result = self._estimate(new_policy, trace, source)
            if recording():
                observe_estimate_metrics(result)
            return result

    def _estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        propensities: Optional[PropensitySource],
    ) -> EstimateResult:
        """Dense evaluation: the streaming decomposition applied to the
        whole trace as a single chunk at offset 0.

        Subclasses normally implement the three ``_stream_*`` hooks and
        inherit this; an estimator whose value is not a function of
        per-record columns (e.g. the nonstationary replay estimator) may
        instead override ``_estimate`` directly and remain dense-only.
        *propensities* is ``None`` only when :attr:`requires_propensities`
        is false.
        """
        self._stream_setup(new_policy, trace)
        columns = self._stream_chunk(new_policy, trace, propensities, 0)
        return self._stream_finalize(columns, len(trace))

    def _stream_setup(self, new_policy: Policy, trace) -> None:
        """Once-per-estimate hook run before any chunk is scored.

        This is where reward models fit (*trace* may be a lazy
        ``ShardedTrace`` — fitting iterates it in bounded memory).  The
        default does nothing, which suits the model-free estimators.
        """

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> Dict[str, np.ndarray]:
        """Per-record columns for one chunk of the trace.

        Every returned array must have one entry per chunk record and be
        a pure elementwise function of that record (plus fitted state
        from :meth:`_stream_setup`) — that property is what makes the
        gathered columns, and therefore the final estimate, bit-identical
        for every chunking of the same trace.  *offset* is the chunk's
        absolute start position; cross-fitted models need it to pick the
        right fold for each record.
        """
        raise EstimatorError(
            f"{self.name} does not support streaming evaluation; "
            "materialise the trace first (ShardedTrace.materialize())"
        )

    def _stream_finalize(
        self, columns: Dict[str, np.ndarray], n: int
    ) -> EstimateResult:
        """Reduce the gathered per-record *columns* (each of length *n*,
        in trace order) to the final :class:`EstimateResult`.  All
        cross-record arithmetic — means, weight sums, self-normalisation
        denominators, clipping statistics — lives here, on exactly the
        arrays the dense path sees."""
        raise EstimatorError(
            f"{self.name} does not support streaming evaluation; "
            "materialise the trace first (ShardedTrace.materialize())"
        )


def observe_estimate_metrics(result: EstimateResult) -> None:
    """Publish an estimate's weight-health diagnostics as metrics.

    Side-channel only: reads the already-computed ``diagnostics`` dict
    (see :func:`weight_diagnostics`) and records ``ope.weights.ess`` /
    ``ope.weights.max`` into the active telemetry recorders.  DM-style
    estimators without weight diagnostics publish nothing.
    """
    diagnostics = result.diagnostics
    ess = diagnostics.get("ess")
    if isinstance(ess, (int, float)):
        observe("ope.weights.ess", float(ess))
    max_weight = diagnostics.get("max_weight")
    if isinstance(max_weight, (int, float)):
        set_gauge("ope.weights.max", float(max_weight))


def importance_weights(
    new_policy: Policy,
    trace: Trace,
    propensities: PropensitySource,
) -> np.ndarray:
    """The weights ``mu_new(d_k|c_k) / mu_old(d_k|c_k)`` for each record.

    Evaluated through the batch APIs (one vectorized division instead of a
    per-record Python loop); validated once here — IPS-family callers must
    not re-run :func:`check_weights` on the returned array.
    """
    columns = trace.columns()
    old = propensities.propensity_batch(trace)
    new = new_policy.propensity_batch(columns.decisions, columns.contexts)
    from repro.kernels import get_backend  # local: keeps repro.core import-light

    weights = get_backend().importance_ratio(new, old)
    return check_weights(weights, where="importance weights").values


def expected_model_rewards(
    new_policy: Policy,
    trace: Trace,
    predict_column,
) -> np.ndarray:
    """The Direct-Method terms ``Σ_d mu_new(d|c_k) · r̂(c_k, d)`` per record.

    *predict_column(positions, contexts, decision)* returns the model's
    predictions for the fixed *decision* at the given trace positions;
    positions let cross-fitted models pick their fold.  Predictions are
    requested only where ``mu_new(d|c) > 0`` (mirroring the scalar loops,
    which skipped zero-probability decisions), and the per-record terms
    accumulate in canonical decision-space order.
    """
    columns = trace.columns()
    contexts = columns.contexts
    matrix = new_policy.probability_matrix(contexts)
    terms = np.zeros(len(contexts), dtype=float)
    for column, decision in enumerate(new_policy.space.decisions):
        probabilities = matrix[:, column]
        mask = probabilities > 0.0
        if not mask.any():
            continue
        if mask.all():
            predictions = np.asarray(
                predict_column(np.arange(len(contexts)), contexts, decision),
                dtype=float,
            )
            terms = terms + probabilities * predictions
        else:
            positions = np.flatnonzero(mask)
            predictions = np.asarray(
                predict_column(
                    positions,
                    [contexts[int(position)] for position in positions],
                    decision,
                ),
                dtype=float,
            )
            terms[positions] = terms[positions] + probabilities[positions] * predictions
    return terms


def weight_diagnostics(weights: np.ndarray) -> Dict[str, float]:
    """Standard importance-weight health metrics.

    * ``ess`` — Kish effective sample size ``(Σw)² / Σw²``; far below n
      signals the coverage problem of §2.2.2.
    * ``max_weight`` / ``mean_weight`` — weight-tail indicators.
    * ``zero_weight_fraction`` — records the new policy would never take.
    """
    total = float(weights.sum())
    square_total = float((weights**2).sum())
    ess = total**2 / square_total if square_total > 0 else 0.0
    return {
        "ess": ess,
        "max_weight": float(weights.max(initial=0.0)),
        "mean_weight": float(weights.mean()) if weights.size else 0.0,
        "zero_weight_fraction": float((weights == 0).mean()) if weights.size else 0.0,
    }
