"""The Direct Method (DM) estimator.

Paper §3: *"DM uses a reward model r̂(c, d) to predict the reward of any
client c and decision d, and returns the average reward of a new policy
by V_DM = (1/n) Σ_k Σ_d mu_new(d|c_k) r̂(c_k, d)."*

DM uses every trace record (no coverage problem) but inherits all of the
reward model's bias — the WISE CBN evaluator and the FastMPC throughput
evaluator are both DM instances (§3, "Why DR for networking").
"""

from __future__ import annotations

from typing import Optional

from repro.core.estimators.base import (
    EstimateResult,
    OffPolicyEstimator,
    expected_model_rewards,
    result_from_contributions,
)
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.propensity import PropensitySource
from repro.core.types import Trace
from repro.errors import EstimatorError


class DirectMethod(OffPolicyEstimator):
    """DM over a reward model.

    Parameters
    ----------
    model:
        The reward model r̂.  If not yet fitted and ``fit_on_trace`` is
        true (default), it is fit on the evaluation trace — the common
        workflow in the papers the scenario baselines reproduce.
    fit_on_trace:
        Disable to require a pre-fitted model (e.g. fit on a held-out
        split, or cross-fitted).
    """

    requires_propensities = False

    failure_modes = ("unfitted-model", "model-fit-failure")

    def __init__(self, model: RewardModel, fit_on_trace: bool = True):
        self._model = model
        self._fit_on_trace = fit_on_trace

    @property
    def name(self) -> str:
        return "dm"

    @property
    def model(self) -> RewardModel:
        """The reward model used by this estimator."""
        return self._model

    def _stream_setup(self, new_policy: Policy, trace) -> None:
        if not self._model.fitted:
            if not self._fit_on_trace:
                raise EstimatorError(
                    "DM model is not fitted and fit_on_trace is disabled"
                )
            self._model.fit(trace)

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> dict:
        model = self._model
        columns = chunk.columns()
        n = len(columns)
        contributions = expected_model_rewards(
            new_policy,
            chunk,
            lambda positions, contexts, decision: model.predict_trace_for_decision(
                columns,
                decision,
                positions=None if len(positions) == n else positions,
            ),
        )
        return {"contributions": contributions}

    def _stream_finalize(self, columns: dict, n: int) -> EstimateResult:
        return result_from_contributions(self.name, columns["contributions"])
