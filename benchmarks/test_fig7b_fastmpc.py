"""Fig 7b — model bias: DR vs the FastMPC trace evaluator.

Paper: "DR's evaluation error is 74% lower than the original evaluator"
on a 100-chunk session with five bitrates, constant bandwidth b, and
observed throughput b·p(r) monotonically increasing in the bitrate.
"""

from repro.experiments import run_fig7b

from benchmarks.conftest import report

RUNS = 50
SEED = 2017


def test_fig7b_fastmpc_vs_dr(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7b(runs=RUNS, seed=SEED), rounds=1, iterations=1
    )
    report(result.render())

    fastmpc = result.summaries["fastmpc"]
    dr = result.summaries["dr"]
    # Shape: the throughput-independence evaluator carries a persistent
    # bias; DR's importance-weighted residual correction removes most of
    # it (paper: 74% lower mean error).
    assert dr.mean < fastmpc.mean
    assert result.reduction() > 0.35
    assert fastmpc.runs == RUNS
