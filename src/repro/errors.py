"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TraceError(ReproError):
    """A trace is malformed (bad record, inconsistent schema, bad file)."""


class JsonlRecordError(TraceError):
    """One line of a JSONL trace file could not be decoded.

    Carries the *path* and 1-based *line_number* of the offending line
    as structured attributes so callers (the CLI, ``repro repair``)
    can point at the exact record instead of re-parsing a message
    string.  Raised for malformed JSON and for well-formed JSON that is
    not a valid trace record alike — a streaming conversion must never
    surface a bare ``json.JSONDecodeError`` from deep inside a file.
    """

    def __init__(self, message: str, path: str = "", line_number: int = 0):
        super().__init__(message)
        self.path = str(path)
        self.line_number = int(line_number)


class PolicyError(ReproError):
    """A policy violates its contract (probabilities do not sum to one,
    a decision outside the decision space, negative probability, ...)."""


class EstimatorError(ReproError):
    """An estimator was invoked with inputs it cannot handle."""


class PropensityError(EstimatorError):
    """A propensity is missing, non-positive, or cannot be estimated.

    Subclasses :class:`EstimatorError` because a broken propensity is an
    estimator-input contract violation: IPS/DR divide by it, so letting a
    zero or negative value through would silently produce ``inf``/``nan``
    estimates instead of an exception.
    """


class AnalysisError(ReproError):
    """The static-analysis linter was invoked incorrectly (unknown rule
    id, unreadable path, or a file that does not parse)."""


class LedgerError(ReproError):
    """A run ledger is unusable (corrupt header, record/seed mismatch,
    or a ledger written by a different experiment configuration)."""


class RunTimeoutError(ReproError):
    """A per-seed experiment run exceeded its wall-clock timeout.

    Raised by the :mod:`repro.runtime` retry executor; treated like a
    failed run (recorded, skipped, optionally retried) rather than a
    crash, because a wedged model fit on one resample should not throw
    away the other 49 runs of a sweep.
    """


class FallbackExhaustedError(EstimatorError):
    """Every link of an :class:`repro.runtime.EstimatorFallbackChain`
    failed.

    Subclasses :class:`EstimatorError` so the experiment harness counts
    an exhausted chain as one failed run instead of aborting the sweep;
    the message enumerates every hop so nothing is masked.
    """


class TelemetryError(ReproError):
    """The observability layer was misused (bad metric name, malformed
    telemetry snapshot, or an unreadable telemetry file).

    Telemetry is a side channel: estimators and the harness never let a
    :class:`TelemetryError` abort an experiment run — it surfaces only
    from explicit telemetry entry points (sinks, validators, the
    ``repro trace`` CLI).
    """


class StoreError(ReproError):
    """An on-disk sharded trace is unusable (missing or corrupt manifest,
    format-version mismatch, schema-hash mismatch, or a shard whose
    arrays disagree with the manifest's record counts).

    Raised by :mod:`repro.store`; distinct from :class:`TraceError` so
    callers can tell "this trace data is malformed" apart from "this
    shard directory cannot be trusted at all".
    """


class ShardCorruptionError(StoreError):
    """One shard of a sharded trace is unusable, with a classified cause.

    The storage integrity layer (:mod:`repro.store.integrity`) never
    lets a raw ``zipfile``/``numpy``/``OSError`` escape a shard read;
    every failure is classified into one of the concrete subclasses
    below so degradation policies, quarantine reports, and ``repro
    verify`` can act on the *kind* of corruption:

    * :class:`ShardMissingError` — the shard file is gone;
    * :class:`ShardTruncatedError` — the file is shorter (or longer)
      than the manifest recorded, or its arrays disagree with the
      manifest's record count — a torn or partial write;
    * :class:`ShardChecksumError` — right size, wrong sha256 — silent
      bit-level corruption;
    * :class:`ShardDecodeError` — bytes verified (or unverifiable, v1)
      but the npz payload would not decode;
    * :class:`ShardReadError` — the underlying I/O kept failing after
      every configured retry (transient faults exhausted).

    Attributes
    ----------
    shard:
        Path of the offending shard file.
    kind:
        Machine-readable classification tag (``"missing"``,
        ``"truncated"``, ``"checksum-mismatch"``, ``"undecodable"``,
        ``"io-error"``) — the quarantine-reason vocabulary.
    """

    kind = "corrupt"

    def __init__(self, message: str, shard: str = ""):
        super().__init__(message)
        self.shard = str(shard)


class ShardMissingError(ShardCorruptionError):
    """A shard file named by the manifest does not exist."""

    kind = "missing"


class ShardTruncatedError(ShardCorruptionError):
    """A shard's bytes or array lengths disagree with the manifest —
    the signature of a torn or partially-written file."""

    kind = "truncated"


class ShardChecksumError(ShardCorruptionError):
    """A shard's content hash does not match the manifest — silent
    bit-level corruption (disk rot, a bad copy, tampering)."""

    kind = "checksum-mismatch"


class ShardDecodeError(ShardCorruptionError):
    """A shard's npz payload would not decode despite passing (or
    lacking, for v1 manifests) the byte-level checks."""

    kind = "undecodable"


class ShardReadError(ShardCorruptionError):
    """Reading a shard kept failing with transient I/O errors after
    every retry the degradation policy allowed."""

    kind = "io-error"


class ModelError(ReproError):
    """A reward model was used before fitting or fit on unusable data."""


class KernelError(ReproError):
    """The compiled-kernel registry was misconfigured (unknown backend
    name in ``REPRO_KERNELS``, or an explicitly requested backend whose
    dependency is not installed)."""


class SimulationError(ReproError):
    """A simulation substrate was configured inconsistently."""


class ServeError(ReproError):
    """The evaluation service rejected a request or payload (malformed
    body, unknown endpoint or trace name, or a response payload that
    fails schema validation).

    Carries the HTTP *status* the server should answer with, so the
    connection handler can map one exception type onto 4xx responses
    without string-matching messages.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = int(status)
