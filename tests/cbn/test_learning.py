"""Tests for CPT fitting and BIC structure learning."""

import numpy as np
import pytest

from repro.cbn.graph import BayesianNetwork
from repro.cbn.learning import StructureLearner, bic_score, fit_parameters, log_likelihood
from repro.errors import SimulationError


def _chain_data(rng, n=500):
    """x -> y: y copies x with 10% flips."""
    data = []
    for _ in range(n):
        x = "a" if rng.uniform() < 0.5 else "b"
        y = x if rng.uniform() < 0.9 else ("b" if x == "a" else "a")
        data.append({"x": x, "y": y})
    return data


class TestFitParameters:
    def test_recovers_conditional_probabilities(self):
        rng = np.random.default_rng(0)
        data = _chain_data(rng, n=3000)
        network = fit_parameters(data, {"x": [], "y": ["x"]})
        table_row = network.query("y", {"x": "a"})
        assert table_row["a"] == pytest.approx(0.9, abs=0.03)

    def test_smoothing_avoids_zero(self):
        data = [{"x": "a", "y": "a"}] * 10
        network = fit_parameters(
            data, {"x": [], "y": ["x"]}, domains={"x": ["a", "b"], "y": ["a", "b"]}
        )
        assert network.query("y", {"x": "b"})["b"] > 0.0

    def test_cycle_rejected(self):
        data = [{"x": "a", "y": "a"}]
        with pytest.raises(SimulationError):
            fit_parameters(data, {"x": ["y"], "y": ["x"]})

    def test_unknown_parent_rejected(self):
        with pytest.raises(SimulationError):
            fit_parameters([{"x": "a"}], {"x": ["ghost"]})

    def test_empty_data_rejected(self):
        with pytest.raises(SimulationError):
            fit_parameters([], {"x": []})


class TestScores:
    def test_log_likelihood_negative_finite(self):
        rng = np.random.default_rng(0)
        data = _chain_data(rng, n=200)
        network = fit_parameters(data, {"x": [], "y": ["x"]})
        ll = log_likelihood(data, network)
        assert np.isfinite(ll)
        assert ll < 0

    def test_dependent_structure_scores_higher(self):
        rng = np.random.default_rng(0)
        data = _chain_data(rng, n=500)
        independent = fit_parameters(data, {"x": [], "y": []})
        dependent = fit_parameters(data, {"x": [], "y": ["x"]})
        assert bic_score(data, dependent) > bic_score(data, independent)

    def test_bic_penalises_parameters_on_independent_data(self):
        rng = np.random.default_rng(0)
        data = [
            {"x": "a" if rng.uniform() < 0.5 else "b",
             "y": "a" if rng.uniform() < 0.5 else "b"}
            for _ in range(500)
        ]
        independent = fit_parameters(data, {"x": [], "y": []})
        dependent = fit_parameters(data, {"x": [], "y": ["x"]})
        assert bic_score(data, independent) > bic_score(data, dependent)


class TestStructureLearner:
    def test_learns_dependency(self):
        rng = np.random.default_rng(1)
        data = _chain_data(rng, n=800)
        network = StructureLearner().learn(data, ["x", "y"])
        edges = set(network.edges())
        assert ("x", "y") in edges or ("y", "x") in edges

    def test_learns_independence(self):
        rng = np.random.default_rng(1)
        data = [
            {"x": "a" if rng.uniform() < 0.5 else "b",
             "y": "a" if rng.uniform() < 0.5 else "b"}
            for _ in range(800)
        ]
        network = StructureLearner().learn(data, ["x", "y"])
        assert network.edges() == []

    def test_small_data_misses_weak_interaction(self):
        """The Fig 4 failure mode in miniature: with heavily confounded
        small data, the learner drops a true parent."""
        rng = np.random.default_rng(3)
        data = []
        # z = x AND y, but x == y in 99% of records (confounded logging).
        for _ in range(300):
            x = "t" if rng.uniform() < 0.5 else "f"
            y = x if rng.uniform() < 0.99 else ("f" if x == "t" else "t")
            z = "t" if (x == "t" and y == "t") else "f"
            data.append({"x": x, "y": y, "z": z})
        network = StructureLearner().learn(data, ["x", "y", "z"])
        parents = set(network.parents("z"))
        assert parents != {"x", "y"}  # cannot identify both true parents

    def test_max_parents_respected(self):
        rng = np.random.default_rng(0)
        data = []
        for _ in range(400):
            bits = [("t" if rng.uniform() < 0.5 else "f") for _ in range(4)]
            target = "t" if bits.count("t") >= 2 else "f"
            data.append(
                {"a": bits[0], "b": bits[1], "c": bits[2], "d": bits[3], "z": target}
            )
        network = StructureLearner(max_parents=2).learn(
            data, ["a", "b", "c", "d", "z"]
        )
        for variable in network.variables:
            assert len(network.parents(variable)) <= 2

    def test_empty_data_rejected(self):
        with pytest.raises(SimulationError):
            StructureLearner().learn([], ["x"])

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            StructureLearner(max_parents=0)
