"""Full video-session simulation.

Runs an ABR policy against a bandwidth process with the Fig 2
bitrate-dependent observed-throughput model, producing a per-chunk log
that converts directly into an off-policy-evaluation
:class:`~repro.core.types.Trace` (each chunk is a "client", its bitrate
the "decision", its QoE the "reward" — the mapping the paper makes in
§2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.abr.bandwidth import BandwidthProcess
from repro.abr.buffer import PlaybackBuffer
from repro.abr.ladder import VideoManifest
from repro.abr.policies import ABRPolicy, PlayerState
from repro.abr.qoe import QoEModel
from repro.abr.throughput import ObservedThroughputModel
from repro.core.random import ensure_rng
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import SimulationError


@dataclass(frozen=True)
class ChunkLog:
    """Everything recorded about one chunk download."""

    chunk_index: int
    bitrate_mbps: float
    propensity: float
    available_bandwidth_mbps: float
    observed_throughput_mbps: float
    buffer_before_seconds: float
    buffer_after_seconds: float
    rebuffer_seconds: float
    qoe: float
    previous_bitrate_mbps: Optional[float]


@dataclass(frozen=True)
class SessionResult:
    """A complete simulated session."""

    chunks: Tuple[ChunkLog, ...]

    @property
    def session_qoe(self) -> float:
        """Mean per-chunk QoE."""
        return float(np.mean([chunk.qoe for chunk in self.chunks]))

    @property
    def total_rebuffer_seconds(self) -> float:
        """Total stall time across the session."""
        return float(sum(chunk.rebuffer_seconds for chunk in self.chunks))

    @property
    def mean_bitrate_mbps(self) -> float:
        """Average chosen bitrate."""
        return float(np.mean([chunk.bitrate_mbps for chunk in self.chunks]))

    def observed_throughputs(self) -> List[float]:
        """Observed throughput per chunk (the "throughput trace" prior ABR
        work replays, §2.1)."""
        return [chunk.observed_throughput_mbps for chunk in self.chunks]

    def to_trace(self) -> Trace:
        """Convert to an OPE trace: chunk → (context, decision, reward).

        Context features are what a *stationary* evaluator may condition
        on: the chunk's position, the buffer level before the decision,
        the previous bitrate, and the throughput observed on the previous
        chunk (the input every throughput predictor uses).
        """
        records = []
        for chunk in self.chunks:
            previous_observed = (
                self.chunks[chunk.chunk_index - 1].observed_throughput_mbps
                if chunk.chunk_index > 0
                else 0.0
            )
            context = ClientContext(
                chunk_index=chunk.chunk_index,
                buffer_seconds=round(chunk.buffer_before_seconds, 6),
                previous_bitrate_mbps=(
                    chunk.previous_bitrate_mbps
                    if chunk.previous_bitrate_mbps is not None
                    else 0.0
                ),
                previous_observed_mbps=round(previous_observed, 6),
            )
            records.append(
                TraceRecord(
                    context=context,
                    decision=chunk.bitrate_mbps,
                    reward=chunk.qoe,
                    propensity=chunk.propensity,
                    timestamp=float(chunk.chunk_index),
                )
            )
        return Trace(records)


class SessionSimulator:
    """Simulates chunked streaming sessions.

    Parameters
    ----------
    manifest:
        Video description (ladder, chunk duration, chunk count).
    bandwidth:
        Available-bandwidth process.
    throughput:
        Observed-throughput model (the b·p(r) mechanism).
    qoe:
        QoE weights.
    buffer_capacity_seconds, initial_buffer_seconds:
        Playback buffer configuration.
    """

    def __init__(
        self,
        manifest: VideoManifest,
        bandwidth: BandwidthProcess,
        throughput: ObservedThroughputModel,
        qoe: Optional[QoEModel] = None,
        buffer_capacity_seconds: float = 30.0,
        initial_buffer_seconds: float = 8.0,
    ):
        self._manifest = manifest
        self._bandwidth = bandwidth
        self._throughput = throughput
        self._qoe = qoe or QoEModel()
        self._buffer_capacity = buffer_capacity_seconds
        self._initial_buffer = initial_buffer_seconds

    @property
    def manifest(self) -> VideoManifest:
        """The video being streamed."""
        return self._manifest

    @property
    def qoe_model(self) -> QoEModel:
        """The QoE weights in use."""
        return self._qoe

    def run(self, policy: ABRPolicy, rng) -> SessionResult:
        """Simulate one session under *policy*."""
        if policy.ladder != self._manifest.ladder:
            raise SimulationError("policy ladder does not match the manifest")
        generator = ensure_rng(rng)
        buffer = PlaybackBuffer(self._buffer_capacity, self._initial_buffer)
        observed: List[float] = []
        chunks: List[ChunkLog] = []
        previous_bitrate: Optional[float] = None
        for index in range(self._manifest.chunk_count):
            state = PlayerState(
                chunk_index=index,
                buffer_seconds=buffer.level_seconds,
                previous_bitrate_mbps=previous_bitrate,
                observed_throughputs_mbps=tuple(observed),
            )
            bitrate = policy.sample(state, generator)
            propensity = policy.propensity(bitrate, state)
            available = self._bandwidth.bandwidth(index, generator)
            throughput = self._throughput.observe(available, bitrate, generator)
            buffer_before = buffer.level_seconds
            step = buffer.download_chunk(
                self._manifest.chunk_megabits(bitrate),
                self._manifest.chunk_seconds,
                throughput,
            )
            qoe = self._qoe.chunk_qoe(bitrate, step.rebuffer_seconds, previous_bitrate)
            chunks.append(
                ChunkLog(
                    chunk_index=index,
                    bitrate_mbps=bitrate,
                    propensity=propensity,
                    available_bandwidth_mbps=available,
                    observed_throughput_mbps=throughput,
                    buffer_before_seconds=buffer_before,
                    buffer_after_seconds=step.buffer_after,
                    rebuffer_seconds=step.rebuffer_seconds,
                    qoe=qoe,
                    previous_bitrate_mbps=previous_bitrate,
                )
            )
            observed.append(throughput)
            previous_bitrate = bitrate
        return SessionResult(chunks=tuple(chunks))
