"""Named traces: the registry file behind ``repro serve``.

The service tier addresses traces by *name* (``{"trace": {"name":
"abr-2017q3"}}``), not by filesystem path — clients never learn or
choose server paths.  The mapping lives in a small JSON registry file::

    {
      "traces": {
        "abr-2017q3": "shards/abr-2017q3",
        "canary": {"path": "traces/canary.jsonl", "on_corruption": "raise"}
      }
    }

Entries point at either a sharded trace directory (contains
``manifest.json``) or a JSONL trace file; relative paths resolve against
the registry file's own directory, so a registry can ship alongside its
data.  Sharded entries default to ``on_corruption="quarantine"`` — a
serving reader degrades and *reports* shard loss rather than failing the
request (the quarantine markers ride the evaluation report).

:class:`TraceCatalog` keeps resolved traces warm in memory and re-stats
the backing manifest (or JSONL file) on every :meth:`~TraceCatalog.resolve`:
when ``repro repair`` rewrites a manifest — possibly changing its
``schema_hash`` — the next request reopens the trace and sees the new
hash, which invalidates every served cache entry keyed on it (see
DESIGN.md §13).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.types import Trace
from repro.errors import StoreError
from repro.store.format import MANIFEST_NAME, schema_hash
from repro.store.sharded import CORRUPTION_POLICIES, ShardedTrace

__all__ = ["ResolvedTrace", "TraceCatalog"]


@dataclass(frozen=True)
class ResolvedTrace:
    """One catalog lookup: the warm trace plus its cache-key identity.

    ``schema_hash`` is the store's own schema fingerprint (manifest
    field for sharded traces, recomputed from feature names for JSONL) —
    the component that ties served cache entries to the *bytes on disk*,
    not just the name.
    """

    name: str
    path: str
    kind: str
    trace: Any
    schema_hash: str
    records: int


@dataclass(frozen=True)
class _CatalogEntry:
    """Parsed registry entry: where the trace lives and how to open it."""

    name: str
    path: Path
    on_corruption: str
    chunk_records: Optional[int]


def _parse_entry(name: str, value: Any, base: Path) -> _CatalogEntry:
    """One registry entry from its JSON value (path string or mapping)."""
    on_corruption = "quarantine"
    chunk_records: Optional[int] = None
    if isinstance(value, str):
        raw_path = value
    elif isinstance(value, Mapping):
        unknown = sorted(set(value) - {"path", "on_corruption", "chunk_records"})
        if unknown:
            raise StoreError(
                f"trace registry entry {name!r}: unknown key(s) {unknown}; "
                "expected keys: path, on_corruption (optional), "
                "chunk_records (optional)"
            )
        if "path" not in value:
            raise StoreError(f"trace registry entry {name!r} has no 'path'")
        raw_path = value["path"]
        on_corruption = value.get("on_corruption", on_corruption)
        if on_corruption not in CORRUPTION_POLICIES:
            raise StoreError(
                f"trace registry entry {name!r}: on_corruption must be one "
                f"of {CORRUPTION_POLICIES}, got {on_corruption!r}"
            )
        if "chunk_records" in value:
            chunk_records = int(value["chunk_records"])
    else:
        raise StoreError(
            f"trace registry entry {name!r} must be a path string or a "
            f"mapping with a 'path' key, got {type(value).__name__}"
        )
    path = Path(raw_path)
    if not path.is_absolute():
        path = base / path
    return _CatalogEntry(
        name=name,
        path=path,
        on_corruption=on_corruption,
        chunk_records=chunk_records,
    )


class TraceCatalog:
    """Name → warm trace resolution with change detection.

    Resolution is deliberately *stat-per-request*, not open-per-request:
    a cached open trace is reused until the backing manifest (sharded)
    or file (JSONL) changes its ``(mtime_ns, size)`` signature, at which
    point the trace is reopened and its ``schema_hash`` re-read.  One
    ``os.stat`` per request is the price of never serving stale bytes
    after ``repro repair`` touched a store.
    """

    def __init__(self, entries: Mapping[str, _CatalogEntry]):
        self._entries: Dict[str, _CatalogEntry] = dict(entries)
        self._open: Dict[str, Tuple[Tuple[int, int], ResolvedTrace]] = {}

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TraceCatalog":
        """Parse a registry JSON file (see module docstring for shape)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as error:
            raise StoreError(
                f"cannot read trace registry {path}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise StoreError(
                f"trace registry {path} is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, Mapping) or not isinstance(
            payload.get("traces"), Mapping
        ):
            raise StoreError(
                f"trace registry {path} must be a JSON object with a "
                "'traces' mapping of name -> path (or entry object)"
            )
        base = path.resolve().parent
        entries = {
            str(name): _parse_entry(str(name), value, base)
            for name, value in payload["traces"].items()
        }
        if not entries:
            raise StoreError(f"trace registry {path} names no traces")
        return cls(entries)

    def names(self) -> Tuple[str, ...]:
        """All registered trace names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def _entry(self, name: str) -> _CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries))
            raise StoreError(
                f"unknown trace {name!r}; registered traces: {known}"
            ) from None

    def _stat_signature(self, entry: _CatalogEntry) -> Tuple[int, int]:
        """The change-detection signature of an entry's backing file."""
        target = (
            entry.path / MANIFEST_NAME if entry.path.is_dir() else entry.path
        )
        try:
            stat = os.stat(target)
        except OSError as error:
            raise StoreError(
                f"trace {entry.name!r}: cannot stat {target}: {error}"
            ) from None
        return (stat.st_mtime_ns, stat.st_size)

    def _open_entry(self, entry: _CatalogEntry) -> ResolvedTrace:
        """Open (or reopen) one entry and compute its identity."""
        if entry.path.is_dir():
            options: Dict[str, Any] = {"on_corruption": entry.on_corruption}
            if entry.chunk_records is not None:
                options["chunk_records"] = entry.chunk_records
            sharded = ShardedTrace(entry.path, **options)
            return ResolvedTrace(
                name=entry.name,
                path=str(entry.path),
                kind="sharded",
                trace=sharded,
                schema_hash=str(sharded.manifest["schema_hash"]),
                records=len(sharded),
            )
        trace = Trace.from_jsonl(entry.path)
        return ResolvedTrace(
            name=entry.name,
            path=str(entry.path),
            kind="jsonl",
            trace=trace,
            schema_hash=schema_hash(trace.feature_names()),
            records=len(trace),
        )

    def resolve(self, name: str) -> ResolvedTrace:
        """The warm :class:`ResolvedTrace` for *name*.

        Raises :class:`~repro.errors.StoreError` for unknown names
        (listing the registered ones) and for unreadable backing files.
        """
        entry = self._entry(name)
        signature = self._stat_signature(entry)
        cached = self._open.get(name)
        if cached is not None and cached[0] == signature:
            return cached[1]
        resolved = self._open_entry(entry)
        self._open[name] = (signature, resolved)
        return resolved
