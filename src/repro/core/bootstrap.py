"""Resampling-based uncertainty for estimator values.

The paper uses min/max over repeated simulation runs to show estimator
spread (Fig 7).  For a single real trace, the bootstrap provides the
analogous spread: resample records with replacement, re-run the
estimator, and read quantiles off the resampled values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.estimators.base import OffPolicyEstimator
from repro.core.policy import Policy
from repro.core.propensity import PropensityModel
from repro.core.random import ensure_rng
from repro.core.types import Trace
from repro.errors import EstimatorError
from repro.obs.spans import span


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution summary for one estimator."""

    point_estimate: float
    lower: float
    upper: float
    std: float
    replicates: np.ndarray
    confidence: float

    def render(self) -> str:
        """One-line summary."""
        return (
            f"{self.point_estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"({self.confidence:.0%} bootstrap, {self.replicates.size} replicates)"
        )


def bootstrap_ci(
    estimator: OffPolicyEstimator,
    new_policy: Policy,
    trace: Trace,
    old_policy: Optional[Policy] = None,
    propensity_model: Optional[PropensityModel] = None,
    replicates: int = 200,
    confidence: float = 0.95,
    rng=None,
) -> BootstrapResult:
    """Percentile-bootstrap confidence interval for an estimator's value.

    Each replicate resamples the trace with replacement and re-runs the
    full estimator (including any model fitting it performs), so the
    interval reflects model-fitting variability too.  Replicates on which
    the estimator fails (e.g. a resample with no overlap) are skipped; if
    fewer than half survive, an :class:`EstimatorError` is raised.
    """
    if replicates < 2:
        raise EstimatorError(f"need at least 2 replicates, got {replicates}")
    if not 0.0 < confidence < 1.0:
        raise EstimatorError(f"confidence must lie in (0, 1), got {confidence}")
    generator = ensure_rng(rng)
    with span("bootstrap", estimator=estimator.name, replicates=replicates):
        point = estimator.estimate(
            new_policy, trace, old_policy=old_policy, propensity_model=propensity_model
        ).value
        n = len(trace)
        values = []
        degenerate = 0
        for _ in range(replicates):
            indices = generator.integers(0, n, size=n)
            # take() fancy-indexes the columnar cache built by the point
            # estimate, so replicates skip the per-record column rebuild.
            resampled = trace.take(indices)
            try:
                value = estimator.estimate(
                    new_policy,
                    resampled,
                    old_policy=old_policy,
                    propensity_model=propensity_model,
                ).value
            except EstimatorError:
                degenerate += 1
                continue
            values.append(value)
    if len(values) < replicates / 2:
        raise EstimatorError(
            f"only {len(values)}/{replicates} bootstrap replicates succeeded "
            f"({degenerate} degenerate resamples); the trace has too little "
            "overlap for stable resampling"
        )
    replicate_values = np.asarray(values, dtype=float)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicate_values, [alpha, 1.0 - alpha])
    return BootstrapResult(
        point_estimate=point,
        lower=float(lower),
        upper=float(upper),
        std=float(replicate_values.std(ddof=1)),
        replicates=replicate_values,
        confidence=confidence,
    )


def jackknife_std_error(
    estimator: OffPolicyEstimator,
    new_policy: Policy,
    trace: Trace,
    old_policy: Optional[Policy] = None,
    max_leave_out: Optional[int] = None,
    rng=None,
) -> float:
    """Leave-one-out jackknife standard error of the estimator value.

    For long traces, *max_leave_out* caps the number of leave-one-out
    evaluations by sampling which records to leave out (a random-subset
    jackknife), keeping cost linear in the cap.
    """
    n = len(trace)
    if n < 3:
        raise EstimatorError("jackknife needs at least 3 records")
    indices = list(range(n))
    if max_leave_out is not None and max_leave_out < n:
        generator = ensure_rng(rng)
        indices = sorted(
            int(i)
            for i in generator.choice(n, size=max_leave_out, replace=False)
        )
    values = []
    degenerate = 0
    with span("jackknife", estimator=estimator.name):
        for leave_out in indices:
            reduced = trace.take(
                [index for index in range(n) if index != leave_out]
            )
            try:
                values.append(
                    estimator.estimate(new_policy, reduced, old_policy=old_policy).value
                )
            except EstimatorError:
                degenerate += 1
                continue
    if len(values) < 2:
        raise EstimatorError(
            f"too few successful jackknife evaluations "
            f"({degenerate} leave-outs raised EstimatorError)"
        )
    values_array = np.asarray(values, dtype=float)
    m = values_array.size
    return float(np.sqrt((m - 1) / m * ((values_array - values_array.mean()) ** 2).sum()))
