"""History-dependent (non-stationary) policies.

Paper §4.1: *"Most networking policies, however, are non-stationary, where
a policy's decision on client c_k depends also on the history
h_k = {(c_i, d_i, r_i)}_{i<k}."*  An ABR controller is the canonical
example: its bitrate choice depends on throughput observed for previous
chunks.

A :class:`HistoryPolicy` receives both the current context and the history
of client/decision/reward triples accumulated so far.  The replay-based
DR estimator (:mod:`repro.core.estimators.nonstationary`) maintains that
history for the new policy as prescribed by the §4.2 algorithm.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.core.policy import Policy, validate_distribution
from repro.core.random import choice_from_probabilities, ensure_rng
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Decision
from repro.errors import PolicyError


@dataclass(frozen=True)
class HistoryEntry:
    """One ``(c_i, d_i, r_i)`` triple in a policy's observed history."""

    context: ClientContext
    decision: Decision
    reward: float


class History:
    """An append-only sequence of :class:`HistoryEntry`.

    Policies read it; only the evaluator/simulator driving the policy
    appends to it (paper §4.2 steps 2 and 4).
    """

    def __init__(self, entries: Tuple[HistoryEntry, ...] = ()):
        self._entries: List[HistoryEntry] = list(entries)

    def append(self, context: ClientContext, decision: Decision, reward: float) -> None:
        """Record one observed interaction."""
        self._entries.append(HistoryEntry(context, decision, float(reward)))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, index: int) -> HistoryEntry:
        return self._entries[index]

    def recent(self, count: int) -> List[HistoryEntry]:
        """The last *count* entries (fewer if the history is shorter)."""
        if count <= 0:
            return []
        return self._entries[-count:]

    def recent_rewards(self, count: int) -> List[float]:
        """Rewards of the last *count* entries, oldest first."""
        return [entry.reward for entry in self.recent(count)]

    def copy(self) -> "History":
        """An independent copy (the replay estimator snapshots histories)."""
        return History(tuple(self._entries))


class HistoryPolicy(abc.ABC):
    """Abstract non-stationary policy ``mu(d | c, history)``."""

    def __init__(self, space: DecisionSpace):
        self._space = space

    @property
    def space(self) -> DecisionSpace:
        """The decision space this policy acts over."""
        return self._space

    @abc.abstractmethod
    def probabilities(
        self, context: ClientContext, history: History
    ) -> Dict[Decision, float]:
        """Decision distribution given *context* and observed *history*."""

    def propensity(
        self, decision: Decision, context: ClientContext, history: History
    ) -> float:
        """``mu(decision | context, history)``."""
        self._space.validate(decision)
        return self.probabilities(context, history).get(decision, 0.0)

    def sample(self, context: ClientContext, history: History, rng) -> Decision:
        """Draw one decision given the history."""
        generator = ensure_rng(rng)
        distribution = self.probabilities(context, history)
        decisions = list(distribution.keys())
        return choice_from_probabilities(
            generator, decisions, [distribution[d] for d in decisions]
        )


class StationaryAdapter(HistoryPolicy):
    """Lifts a stationary :class:`~repro.core.policy.Policy` into the
    history-based interface (it simply ignores the history).

    With this adapter the §4.2 replay estimator reduces exactly to the
    basic DR estimator, which the paper notes and our tests verify.
    """

    def __init__(self, policy: Policy):
        super().__init__(policy.space)
        self._policy = policy

    @property
    def wrapped(self) -> Policy:
        """The underlying stationary policy."""
        return self._policy

    def probabilities(
        self, context: ClientContext, history: History
    ) -> Dict[Decision, float]:
        return self._policy.probabilities(context)


class FunctionHistoryPolicy(HistoryPolicy):
    """Wraps a ``(context, history) -> distribution`` function, validating
    the returned distribution on every call."""

    def __init__(
        self,
        space: DecisionSpace,
        function: Callable[[ClientContext, History], Mapping[Decision, float]],
    ):
        super().__init__(space)
        self._function = function

    def probabilities(
        self, context: ClientContext, history: History
    ) -> Dict[Decision, float]:
        return validate_distribution(self._function(context, history), self._space)


class RecentRewardThresholdPolicy(HistoryPolicy):
    """A simple concrete non-stationary policy used in tests and examples.

    Chooses an "aggressive" decision while the mean of the last *window*
    rewards exceeds *threshold*, otherwise a "conservative" decision —
    a toy abstraction of buffer-based ABR control.  A small exploration
    probability keeps it stochastic so importance weights exist.
    """

    def __init__(
        self,
        space: DecisionSpace,
        aggressive: Decision,
        conservative: Decision,
        threshold: float,
        window: int = 3,
        exploration: float = 0.1,
    ):
        super().__init__(space)
        space.validate(aggressive)
        space.validate(conservative)
        if window <= 0:
            raise PolicyError(f"window must be positive, got {window}")
        if not 0.0 <= exploration < 1.0:
            raise PolicyError(f"exploration must lie in [0, 1), got {exploration}")
        self._aggressive = aggressive
        self._conservative = conservative
        self._threshold = threshold
        self._window = window
        self._exploration = exploration

    def probabilities(
        self, context: ClientContext, history: History
    ) -> Dict[Decision, float]:
        rewards = history.recent_rewards(self._window)
        if rewards and sum(rewards) / len(rewards) > self._threshold:
            preferred = self._aggressive
        else:
            preferred = self._conservative
        exploration_share = self._exploration / len(self._space)
        distribution = {decision: exploration_share for decision in self._space}
        distribution[preferred] += 1.0 - self._exploration
        return distribution
