"""Learning Bayesian networks from data.

Two stages, as in WISE's pipeline:

* :func:`fit_parameters` — maximum-likelihood CPTs (with Laplace
  smoothing) for a *given* structure.
* :class:`StructureLearner` — score-based greedy hill-climbing over DAGs
  using the BIC score.  On small traces the BIC penalty prunes real
  dependencies, yielding the *incomplete* CBN of the paper's Fig 4
  ("Suppose the trace input was small and WISE infers an incomplete
  CBN...") — that failure mode is the point, not a bug.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.cbn.graph import BayesianNetwork, Value
from repro.errors import SimulationError

Row = Mapping[str, Value]


def _domains_from_data(
    data: Sequence[Row], variables: Sequence[str]
) -> Dict[str, Tuple[Value, ...]]:
    domains: Dict[str, List[Value]] = {v: [] for v in variables}
    seen: Dict[str, set] = {v: set() for v in variables}
    for row in data:
        for variable in variables:
            if variable not in row:
                raise SimulationError(f"data row missing variable {variable!r}")
            value = row[variable]
            if value not in seen[variable]:
                seen[variable].add(value)
                domains[variable].append(value)
    return {v: tuple(values) for v, values in domains.items()}


def fit_parameters(
    data: Sequence[Row],
    structure: Mapping[str, Sequence[str]],
    domains: Optional[Mapping[str, Sequence[Value]]] = None,
    smoothing: float = 1.0,
) -> BayesianNetwork:
    """Build a :class:`BayesianNetwork` with MLE (Laplace-smoothed) CPTs.

    Parameters
    ----------
    data:
        Sequence of complete assignments (dict per observation).
    structure:
        Mapping of variable -> parent list; must be acyclic.
    domains:
        Optional explicit domains (else inferred from the data).
    smoothing:
        Laplace pseudo-count per cell; keeps unseen combinations defined.
    """
    if not data:
        raise SimulationError("cannot fit CPTs on empty data")
    if smoothing <= 0:
        raise SimulationError(f"smoothing must be positive, got {smoothing}")
    variables = list(structure.keys())
    graph = nx.DiGraph()
    graph.add_nodes_from(variables)
    for child, parents in structure.items():
        for parent in parents:
            if parent not in structure:
                raise SimulationError(
                    f"parent {parent!r} of {child!r} is not a declared variable"
                )
            graph.add_edge(parent, child)
    if not nx.is_directed_acyclic_graph(graph):
        raise SimulationError("structure has a directed cycle")
    order = list(nx.topological_sort(graph))

    resolved_domains = dict(_domains_from_data(data, variables))
    if domains is not None:
        for variable, domain in domains.items():
            resolved_domains[variable] = tuple(domain)

    network = BayesianNetwork()
    for variable in order:
        parents = tuple(structure[variable])
        domain = resolved_domains[variable]
        parent_domains = [resolved_domains[p] for p in parents]
        counts: Dict[Tuple[Value, ...], np.ndarray] = {
            key: np.full(len(domain), smoothing)
            for key in itertools.product(*parent_domains)
        }
        value_index = {value: i for i, value in enumerate(domain)}
        for row in data:
            key = tuple(row[p] for p in parents)
            counts[key][value_index[row[variable]]] += 1.0
        rows = {key: column / column.sum() for key, column in counts.items()}
        network.add_variable(variable, domain, parents, rows)
    return network


def log_likelihood(
    data: Sequence[Row], network: BayesianNetwork
) -> float:
    """Total log-likelihood of *data* under *network*."""
    total = 0.0
    for row in data:
        probability = network.joint_probability(dict(row))
        if probability <= 0:
            return -math.inf
        total += math.log(probability)
    return total


def bic_score(data: Sequence[Row], network: BayesianNetwork) -> float:
    """BIC = log-likelihood − (free parameters / 2) · log n (higher better)."""
    n = len(data)
    if n == 0:
        raise SimulationError("BIC of empty data is undefined")
    parameters = 0
    for variable in network.variables:
        rows = 1
        for parent in network.parents(variable):
            rows *= len(network.domain(parent))
        parameters += rows * (len(network.domain(variable)) - 1)
    return log_likelihood(data, network) - 0.5 * parameters * math.log(n)


class StructureLearner:
    """Greedy BIC hill-climbing over DAG structures.

    Starts from the empty graph and repeatedly applies the single edge
    addition/removal/reversal that most improves the BIC score, until no
    move improves it or ``max_iterations`` is hit.

    Parameters
    ----------
    max_parents:
        Cap on in-degree (keeps CPTs small, as WISE-scale data demands).
    max_iterations:
        Safety cap on hill-climbing moves.
    smoothing:
        CPT smoothing used when scoring candidates.
    """

    def __init__(
        self,
        max_parents: int = 3,
        max_iterations: int = 100,
        smoothing: float = 1.0,
    ):
        if max_parents < 1:
            raise SimulationError(f"max_parents must be >= 1, got {max_parents}")
        self._max_parents = max_parents
        self._max_iterations = max_iterations
        self._smoothing = smoothing

    def learn(
        self,
        data: Sequence[Row],
        variables: Sequence[str],
        domains: Optional[Mapping[str, Sequence[Value]]] = None,
    ) -> BayesianNetwork:
        """Learn structure + parameters from *data*."""
        if not data:
            raise SimulationError("cannot learn a structure from empty data")
        structure: Dict[str, List[str]] = {v: [] for v in variables}
        best_network = fit_parameters(data, structure, domains, self._smoothing)
        best_score = bic_score(data, best_network)
        for _ in range(self._max_iterations):
            candidate = self._best_move(data, structure, domains, best_score)
            if candidate is None:
                break
            structure, best_network, best_score = candidate
        return best_network

    def _best_move(
        self,
        data: Sequence[Row],
        structure: Dict[str, List[str]],
        domains: Optional[Mapping[str, Sequence[Value]]],
        current_score: float,
    ) -> Optional[Tuple[Dict[str, List[str]], BayesianNetwork, float]]:
        """The highest-scoring single-edge move, or ``None``."""
        variables = list(structure.keys())
        best: Optional[Tuple[Dict[str, List[str]], BayesianNetwork, float]] = None
        best_score = current_score
        for source, target in itertools.permutations(variables, 2):
            for move in ("add", "remove", "reverse"):
                candidate = self._apply_move(structure, source, target, move)
                if candidate is None:
                    continue
                try:
                    network = fit_parameters(data, candidate, domains, self._smoothing)
                except SimulationError:  # noqa: REP006 - unfittable candidate
                    # structures are legitimately pruned from the search,
                    # not failures to surface.
                    continue
                score = bic_score(data, network)
                if score > best_score + 1e-9:
                    best_score = score
                    best = (candidate, network, score)
        return best

    def _apply_move(
        self,
        structure: Dict[str, List[str]],
        source: str,
        target: str,
        move: str,
    ) -> Optional[Dict[str, List[str]]]:
        """A copy of *structure* with the move applied, or ``None`` if the
        move is inapplicable or would create a cycle / exceed max parents."""
        candidate = {v: list(ps) for v, ps in structure.items()}
        has_edge = source in candidate[target]
        if move == "add":
            if has_edge or len(candidate[target]) >= self._max_parents:
                return None
            candidate[target].append(source)
        elif move == "remove":
            if not has_edge:
                return None
            candidate[target].remove(source)
        elif move == "reverse":
            if not has_edge or len(candidate[source]) >= self._max_parents:
                return None
            candidate[target].remove(source)
            candidate[source].append(target)
        else:  # pragma: no cover - internal misuse
            raise SimulationError(f"unknown move {move!r}")
        graph = nx.DiGraph()
        graph.add_nodes_from(candidate)
        for child, parents in candidate.items():
            graph.add_edges_from((p, child) for p in parents)
        if not nx.is_directed_acyclic_graph(graph):
            return None
        return candidate
