"""Tests for the runtime contract layer (repro.core.contracts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import core
from repro.core.contracts import (
    QuarantineReport,
    check_propensities,
    check_propensity,
    check_trace,
    check_weights,
)
from repro.core.propensity import FlooredPropensitySource, resolve_propensity_source
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import EstimatorError, PropensityError, TraceError

SPACE = core.DecisionSpace(["a", "b"])


def _record(decision="a", propensity=0.5, x=1.0):
    return TraceRecord(
        context=ClientContext(x=x), decision=decision, reward=1.0, propensity=propensity
    )


class TestCheckPropensities:
    def test_valid_values_pass_through(self):
        check = check_propensities([0.2, 0.5, 1.0])
        assert check.clipped == 0
        assert check.min_value == pytest.approx(0.2)
        np.testing.assert_allclose(check.values, [0.2, 0.5, 1.0])

    @pytest.mark.parametrize("bad", [0.0, -0.1, float("nan"), float("inf"), 1.5])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(PropensityError):
            check_propensities([0.5, bad])

    def test_empty_rejected(self):
        with pytest.raises(PropensityError):
            check_propensities([])

    def test_floor_clips_and_counts(self):
        check = check_propensities([0.001, 0.5, 0.02], floor=0.05)
        assert check.clipped == 2
        assert check.min_value == pytest.approx(0.001)  # pre-clip minimum
        np.testing.assert_allclose(check.values, [0.05, 0.5, 0.05])

    def test_floor_does_not_excuse_zero(self):
        with pytest.raises(PropensityError):
            check_propensities([0.0, 0.5], floor=0.05)

    @pytest.mark.parametrize("floor", [0.0, 1.0, -0.5, 2.0])
    def test_bad_floor_rejected(self, floor):
        with pytest.raises(PropensityError):
            check_propensities([0.5], floor=floor)

    def test_scalar_helper(self):
        assert check_propensity(0.01, floor=0.05) == pytest.approx(0.05)
        with pytest.raises(PropensityError):
            check_propensity(0.0)

    def test_propensity_error_is_estimator_error(self):
        # The contract the satellites demand: bad propensities surface as
        # EstimatorError, never as inf/nan estimates.
        assert issubclass(PropensityError, EstimatorError)


class TestCheckWeights:
    def test_reports_ess_and_max(self):
        check = check_weights([1.0, 1.0, 2.0])
        assert check.max_weight == pytest.approx(2.0)
        assert check.ess == pytest.approx(16.0 / 6.0)

    def test_zero_weights_are_legal(self):
        check = check_weights([0.0, 0.0])
        assert check.ess == 0.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5])
    def test_invalid_weights_raise(self, bad):
        with pytest.raises(EstimatorError):
            check_weights([1.0, bad])


class TestCheckTrace:
    def test_valid_trace_returned_unchanged(self):
        trace = Trace([_record(), _record(decision="b")])
        assert check_trace(trace) is trace

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            check_trace(Trace())

    def test_inconsistent_schema_rejected(self):
        trace = Trace(
            [
                _record(),
                TraceRecord(context=ClientContext(y=2.0), decision="a", reward=1.0),
            ]
        )
        with pytest.raises(TraceError):
            check_trace(trace)

    def test_require_propensities(self):
        trace = Trace(
            [TraceRecord(context=ClientContext(x=1.0), decision="a", reward=1.0)]
        )
        check_trace(trace)  # fine without the requirement
        with pytest.raises(TraceError):
            check_trace(trace, require_propensities=True)

    def test_require_timestamps_and_states(self):
        trace = Trace([_record()])
        with pytest.raises(TraceError):
            check_trace(trace, require_timestamps=True)
        with pytest.raises(TraceError):
            check_trace(trace, require_states=True)


class TestPropensityFloorGuard:
    def _thin_trace(self, n=40):
        # Old policy explores decision "b" with tiny probability.
        records = []
        for index in range(n):
            decision = "b" if index % 2 else "a"
            records.append(
                TraceRecord(
                    context=ClientContext(x=float(index % 3)),
                    decision=decision,
                    reward=1.0 if decision == "b" else 0.0,
                    propensity=0.01 if decision == "b" else 0.99,
                )
            )
        return Trace(records)

    def test_floored_source_clips_and_counts(self):
        trace = self._thin_trace()
        source = resolve_propensity_source(trace, floor=0.05)
        assert isinstance(source, FlooredPropensitySource)
        values = [source.propensity(r, i) for i, r in enumerate(trace)]
        assert min(values) >= 0.05
        assert source.clip_count == 20

    def test_bad_floor_rejected(self):
        with pytest.raises(PropensityError):
            resolve_propensity_source(self._thin_trace(), floor=1.5)

    def test_estimator_floor_tames_weights(self):
        trace = self._thin_trace()
        new = core.DeterministicPolicy(SPACE, lambda c: "b")
        plain = core.IPS().estimate(new, trace)
        floored = core.IPS().estimate(new, trace, propensity_floor=0.05)
        assert plain.diagnostics["max_weight"] == pytest.approx(100.0)
        assert floored.diagnostics["max_weight"] == pytest.approx(20.0)


class TestZeroPropensityRaises:
    """Satellite: IPS/DR raise EstimatorError, never emit inf/nan."""

    def _trace(self):
        return Trace([_record(decision="a", propensity=None, x=float(i)) for i in range(6)])

    def test_ips_raises_on_zero_old_propensity(self):
        # The old policy claims it never takes the logged decision.
        old = core.DeterministicPolicy(SPACE, lambda c: "b")
        new = core.UniformRandomPolicy(SPACE)
        with pytest.raises(EstimatorError):
            core.IPS().estimate(new, self._trace(), old_policy=old)

    def test_dr_raises_on_zero_old_propensity(self):
        old = core.DeterministicPolicy(SPACE, lambda c: "b")
        new = core.UniformRandomPolicy(SPACE)
        estimator = core.DoublyRobust(core.TabularMeanModel(key_features=("x",)))
        with pytest.raises(EstimatorError):
            estimator.estimate(new, self._trace(), old_policy=old)


class TestQuarantineMode:
    """check_trace(..., quarantine=True): split, count, never go silent."""

    def _mixed_trace(self):
        from repro.testing import inject_bad_propensities, inject_nan_rewards

        clean = Trace([_record(x=float(i)) for i in range(10)])
        return inject_bad_propensities(inject_nan_rewards(clean, [0, 4]), [7])

    def test_clean_trace_passes_untouched(self):
        trace = Trace([_record(x=float(i)) for i in range(5)])
        report = check_trace(trace, quarantine=True)
        assert isinstance(report, QuarantineReport)
        assert report.dropped == 0
        assert report.reason_counts == {}
        assert list(report.clean) == list(trace)

    def test_mixed_trace_splits_with_reason_counts(self):
        report = check_trace(self._mixed_trace(), quarantine=True)
        assert report.reason_counts == {"non-finite-reward": 2, "bad-propensity": 1}
        assert report.dropped == 3
        assert len(report.clean) == 7

    def test_quarantined_records_keep_index_and_order(self):
        report = check_trace(self._mixed_trace(), quarantine=True)
        assert [q.index for q in report.quarantined] == [0, 4, 7]
        assert [q.reason for q in report.quarantined] == [
            "non-finite-reward",
            "non-finite-reward",
            "bad-propensity",
        ]

    def test_quarantine_is_deterministic(self):
        first = check_trace(self._mixed_trace(), quarantine=True)
        second = check_trace(self._mixed_trace(), quarantine=True)
        assert [q.index for q in first.quarantined] == [
            q.index for q in second.quarantined
        ]
        assert list(first.clean) == list(second.clean)
        assert first.reason_counts == second.reason_counts

    def test_all_corrupt_raises_never_returns_empty(self):
        from repro.testing import inject_nan_rewards

        trace = Trace([_record(x=float(i)) for i in range(4)])
        corrupt = inject_nan_rewards(trace, range(4))
        with pytest.raises(TraceError, match="refusing to return an empty trace"):
            check_trace(corrupt, quarantine=True)

    def test_empty_trace_still_raises(self):
        with pytest.raises(TraceError, match="empty"):
            check_trace(Trace(), quarantine=True)

    def test_majority_schema_survives_a_corrupt_leader(self):
        from repro.testing import inject_schema_drift

        trace = Trace([_record(x=float(i)) for i in range(6)])
        # Drift the *first* record: the majority schema must win, so the
        # leader is the one quarantined, not the other five.
        drifted = inject_schema_drift(trace, [0])
        report = check_trace(drifted, quarantine=True)
        assert report.reason_counts == {"schema-mismatch": 1}
        assert report.quarantined[0].index == 0
        assert len(report.clean) == 5

    def test_missing_metadata_reasons(self):
        trace = Trace(
            [
                _record(x=0.0),
                TraceRecord(
                    context=ClientContext(x=1.0),
                    decision="a",
                    reward=1.0,
                    propensity=None,
                ),
            ]
        )
        report = check_trace(trace, require_propensities=True, quarantine=True)
        assert report.reason_counts == {"missing-propensity": 1}

    def test_render_names_reasons(self):
        report = check_trace(self._mixed_trace(), quarantine=True)
        text = report.render()
        assert "kept 7" in text and "dropped 3" in text
        assert "non-finite-reward x2" in text

    def test_strict_mode_rejects_what_quarantine_splits(self):
        with pytest.raises(TraceError, match="non-finite reward"):
            check_trace(self._mixed_trace())
