"""Deterministic testing utilities for the :mod:`repro` library.

Currently one module: :mod:`repro.testing.faults`, the composable fault
models — trace corruption, run-function failures, and byte-level
storage faults — that prove the :mod:`repro.runtime` and
:mod:`repro.store` resilience layers actually degrade gracefully
instead of merely claiming to.
"""

from repro.testing.faults import (
    CrashAfter,
    EIOOnNthRead,
    FlakyRun,
    SimulatedCrash,
    SlowRead,
    delete_shard,
    duplicate_records,
    flip_shard_bit,
    inject_bad_propensities,
    inject_nan_rewards,
    inject_schema_drift,
    restamp_shard,
    tear_manifest,
    truncate_records,
    truncate_shard,
)

__all__ = [
    "CrashAfter",
    "EIOOnNthRead",
    "FlakyRun",
    "SimulatedCrash",
    "SlowRead",
    "delete_shard",
    "duplicate_records",
    "flip_shard_bit",
    "inject_bad_propensities",
    "inject_nan_rewards",
    "inject_schema_drift",
    "restamp_shard",
    "tear_manifest",
    "truncate_records",
    "truncate_shard",
]
