"""``repro.obs`` — the structured observability layer.

Zero-dependency spans, metrics, and sinks for the OPE stack.  Typical
instrumentation site::

    from repro import obs

    with obs.span("estimate", estimator="dr"):
        ...
        obs.observe("ope.weights.ess", diagnostics["ess"])

and typical consumption site::

    with obs.capture() as recorder:
        run(rng)
    telemetry = run_telemetry(recorder)   # deterministic, journaled
    profile = recorder.flat_profile()     # real timings, side channel

Everything here is a side channel: no RNG is touched, and enabling or
disabling recording never changes what an estimator computes.  See
DESIGN.md §9 for the naming scheme and sink formats.  The storage tier
(:mod:`repro.store`) publishes ``store.shard.bytes`` /
``store.chunk.records`` / ``ope.stream.chunks`` plus ``store.*`` and
``ope.stream`` spans through the same channel — streaming a trace with
recording enabled is bit-identical to streaming it without.
"""

from repro.obs.metrics import (
    SNAPSHOT_SECTIONS,
    TIMING_SUFFIXES,
    MetricsRegistry,
    is_timing_metric,
    merge_snapshot,
    snapshot_is_empty,
)
from repro.obs.sinks import (
    CANONICAL_DURATION,
    TELEMETRY_KIND,
    TELEMETRY_VERSION,
    merge_profile,
    merge_telemetry,
    render_flat_profile,
    render_span_tree,
    render_telemetry,
    run_telemetry,
    write_telemetry_file,
)
from repro.obs.spans import (
    PATH_SEPARATOR,
    Recorder,
    SpanRecord,
    active_recorders,
    capture,
    disable,
    enable,
    increment,
    observe,
    recording,
    set_gauge,
    span,
    span_label,
)
def __getattr__(name):
    # Lazy so that ``python -m repro.obs.validate`` (the CI schema
    # check) does not re-import the module runpy is about to execute.
    if name == "validate_telemetry_file":
        from repro.obs.validate import validate_telemetry_file

        return validate_telemetry_file
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


__all__ = [
    "CANONICAL_DURATION",
    "PATH_SEPARATOR",
    "SNAPSHOT_SECTIONS",
    "TELEMETRY_KIND",
    "TELEMETRY_VERSION",
    "TIMING_SUFFIXES",
    "MetricsRegistry",
    "Recorder",
    "SpanRecord",
    "active_recorders",
    "capture",
    "disable",
    "enable",
    "increment",
    "is_timing_metric",
    "merge_profile",
    "merge_snapshot",
    "merge_telemetry",
    "observe",
    "recording",
    "render_flat_profile",
    "render_span_tree",
    "render_telemetry",
    "run_telemetry",
    "set_gauge",
    "snapshot_is_empty",
    "span",
    "span_label",
    "validate_telemetry_file",
    "write_telemetry_file",
]
