"""Available-bandwidth processes for video sessions.

The *available* bandwidth is the network's capacity between client and
CDN; the *observed* throughput is what the player measures, which — the
key point of Fig 2 — depends on the chosen bitrate as well (see
:mod:`repro.abr.throughput`).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import SimulationError


class BandwidthProcess(abc.ABC):
    """Available bandwidth (Mbps) as a function of chunk index."""

    @abc.abstractmethod
    def bandwidth(self, chunk_index: int, rng: np.random.Generator) -> float:
        """Available bandwidth while downloading chunk *chunk_index*."""


class ConstantBandwidth(BandwidthProcess):
    """The paper's Fig 7b setting: "the available bandwidth is a constant b"."""

    def __init__(self, mbps: float):
        if mbps <= 0:
            raise SimulationError(f"bandwidth must be positive, got {mbps}")
        self._mbps = float(mbps)

    @property
    def mbps(self) -> float:
        """The constant bandwidth value."""
        return self._mbps

    def bandwidth(self, chunk_index: int, rng: np.random.Generator) -> float:
        return self._mbps


class NoisyBandwidth(BandwidthProcess):
    """A base process with multiplicative lognormal noise per chunk."""

    def __init__(self, base: BandwidthProcess, sigma: float = 0.15):
        if sigma < 0:
            raise SimulationError(f"sigma must be non-negative, got {sigma}")
        self._base = base
        self._sigma = float(sigma)

    def bandwidth(self, chunk_index: int, rng: np.random.Generator) -> float:
        mean = self._base.bandwidth(chunk_index, rng)
        if self._sigma == 0:
            return mean
        return float(mean * rng.lognormal(0.0, self._sigma))


class MarkovBandwidth(BandwidthProcess):
    """A two-state good/bad Markov channel (e.g. WiFi interference bursts).

    State persists across chunks with the given stay probabilities; the
    realised state sequence is regenerated lazily and cached so repeated
    queries for the same chunk index are consistent within one session.
    Call :meth:`reset` between sessions.
    """

    def __init__(
        self,
        good_mbps: float,
        bad_mbps: float,
        stay_good: float = 0.9,
        stay_bad: float = 0.7,
    ):
        if good_mbps <= bad_mbps or bad_mbps <= 0:
            raise SimulationError(
                f"need good_mbps > bad_mbps > 0, got {good_mbps}, {bad_mbps}"
            )
        for name, p in (("stay_good", stay_good), ("stay_bad", stay_bad)):
            if not 0.0 < p < 1.0:
                raise SimulationError(f"{name} must lie in (0, 1), got {p}")
        self._good = float(good_mbps)
        self._bad = float(bad_mbps)
        self._stay_good = stay_good
        self._stay_bad = stay_bad
        self._states: list[bool] = []

    def reset(self) -> None:
        """Forget the realised state sequence (start a new session)."""
        self._states = []

    def bandwidth(self, chunk_index: int, rng: np.random.Generator) -> float:
        if chunk_index < 0:
            raise SimulationError(f"chunk_index must be non-negative, got {chunk_index}")
        while len(self._states) <= chunk_index:
            if not self._states:
                self._states.append(True)
                continue
            previous = self._states[-1]
            stay = self._stay_good if previous else self._stay_bad
            self._states.append(previous if rng.uniform() < stay else not previous)
        return self._good if self._states[chunk_index] else self._bad


class TraceBandwidth(BandwidthProcess):
    """Bandwidth replayed from a recorded array (Mbps per chunk).

    This is how prior ABR work replays "traces of throughput observed by
    real clients" (§2.1 use cases); indexes beyond the trace wrap around.
    """

    def __init__(self, samples: Sequence[float]):
        values = [float(v) for v in samples]
        if not values:
            raise SimulationError("bandwidth trace is empty")
        if any(v <= 0 for v in values):
            raise SimulationError("bandwidth trace values must be positive")
        self._samples = values

    def __len__(self) -> int:
        return len(self._samples)

    def bandwidth(self, chunk_index: int, rng: np.random.Generator) -> float:
        return self._samples[chunk_index % len(self._samples)]
