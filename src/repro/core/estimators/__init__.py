"""Off-policy (trace-driven) value estimators.

The three principals of the paper — :class:`DirectMethod` (DM),
:class:`IPS`, and :class:`DoublyRobust` (DR, Eq. 1/2) — plus
variance-controlled variants (clipped/self-normalised IPS, SNDR,
SWITCH-DR), the CFA-style :class:`MatchingEstimator`, and the §4.2
:class:`ReplayDoublyRobust` estimator for history-dependent policies.
"""

from repro.core.estimators.base import (
    EstimateResult,
    OffPolicyEstimator,
    importance_weights,
    result_from_contributions,
    weight_diagnostics,
)
from repro.core.estimators.direct import DirectMethod
from repro.core.estimators.dr import DoublyRobust, SelfNormalizedDR
from repro.core.estimators.ips import IPS, ClippedIPS, MatchingEstimator, SelfNormalizedIPS
from repro.core.estimators.nonstationary import ReplayDoublyRobust
from repro.core.estimators.switch import SwitchDR

__all__ = [
    "EstimateResult",
    "OffPolicyEstimator",
    "DirectMethod",
    "IPS",
    "ClippedIPS",
    "SelfNormalizedIPS",
    "MatchingEstimator",
    "DoublyRobust",
    "SelfNormalizedDR",
    "SwitchDR",
    "ReplayDoublyRobust",
    "importance_weights",
    "weight_diagnostics",
    "result_from_contributions",
]
