"""Live-ingest throughput and per-chunk update latency for ``repro watch``.

The live tier's bargain is offline-exact estimates at streaming speed:
every chunk of the million-user synthetic stream must flow through the
incremental estimators, confidence sequences, and change-point detector
with vectorised numpy work only.  Acceptance (committed in
``benchmark_results/BENCH_live.json`` and re-checked by the
benchmark-smoke job): **ingest sustains at least 1M records/s**,
generation included, and the live estimate over the benchmarked prefix
is **bit-identical** to the dense offline path (a benchmark that drifts
numerically is measuring the wrong thing).

Two rates are reported: ``ingest_records_per_second`` counts total wall
time (generation + update — what ``repro watch`` actually sustains), and
``update_records_per_second`` counts only the monitor update time (the
incremental-estimator cost in isolation).  Per-chunk update latency is
summarised as p50/p99/max.

CI gating mirrors the estimator benchmark: a same-job warmup run's
``--output`` becomes the ``--check`` baseline, with ``--tolerance``
bounding the allowed relative regression on the same hardware::

    PYTHONPATH=src python benchmarks/bench_live.py --quick --output warmup.json
    PYTHONPATH=src python benchmarks/bench_live.py --quick \
        --check warmup.json --tolerance 0.4

Exit status 1 when the floor, the gate, or bit-identity fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.estimators import SelfNormalizedIPS  # noqa: E402
from repro.core.types import Trace  # noqa: E402
from repro.live import LiveWatch  # noqa: E402
from repro.workloads.drift import LiveTrafficGenerator  # noqa: E402

#: The acceptance floor: ``repro watch`` must sustain this ingest rate
#: on the synthetic generator (ISSUE: "≥ 1M records/s").
FLOOR_RECORDS_PER_SECOND = 1_000_000.0

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmark_results"
    / "BENCH_live.json"
)


def _percentile(samples, q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def _check_bit_identity(scenario: str, seed: int, chunk_records: int) -> bool:
    """Live estimate over a small fresh prefix equals the dense path."""
    generator = LiveTrafficGenerator(
        scenario=scenario, seed=seed, chunk_records=chunk_records
    )
    policy = generator.candidate_policy(1)
    watch = LiveWatch(SelfNormalizedIPS, {"probe": policy})
    records = []
    for _ in range(4):
        batch = generator.next_batch()
        watch.process(batch)
        records.extend(batch.iter_records())
    live = watch.monitors["probe"].result()
    dense = SelfNormalizedIPS().estimate(policy, Trace(records))
    return (
        live.value == dense.value
        and np.array_equal(live.contributions, dense.contributions)
        and live.n == dense.n
    )


def run(
    records: int,
    chunk_records: int,
    scenario: str,
    seed: int,
    floor: float,
    output: pathlib.Path,
    check: pathlib.Path | None,
    tolerance: float,
) -> int:
    generator = LiveTrafficGenerator(
        scenario=scenario, seed=seed, chunk_records=chunk_records
    )
    policies = generator.candidate_policies(2)
    watch = LiveWatch(SelfNormalizedIPS, policies)

    chunk_seconds = []
    started = time.perf_counter()
    for batch in generator.iter_batches(max_records=records):
        chunk_started = time.perf_counter()
        watch.process(batch)
        chunk_seconds.append(time.perf_counter() - chunk_started)
    total_seconds = time.perf_counter() - started

    ingest_rate = records / total_seconds
    update_seconds = sum(chunk_seconds)
    update_rate = records / update_seconds if update_seconds > 0 else 0.0
    identical = _check_bit_identity(scenario, seed, chunk_records)

    payload = {
        "records": records,
        "chunk_records": chunk_records,
        "scenario": scenario,
        "estimator": "snips",
        "policies": len(policies),
        "floor_records_per_second": floor,
        "ingest_records_per_second": ingest_rate,
        "update_records_per_second": update_rate,
        "chunk_update_seconds": {
            "p50": _percentile(chunk_seconds, 50),
            "p99": _percentile(chunk_seconds, 99),
            "max": float(max(chunk_seconds)),
        },
        "segments": len(watch.detector.segments),
        "bit_identical_to_offline": identical,
    }
    print(
        f"live ingest {ingest_rate:12,.0f} rec/s (generation included)   "
        f"update {update_rate:12,.0f} rec/s   "
        f"chunk p99 {payload['chunk_update_seconds']['p99'] * 1e3:.2f} ms"
    )

    failures = []
    if not identical:
        failures.append("live estimate is not bit-identical to the dense path")
    if floor > 0 and ingest_rate < floor:
        failures.append(
            f"ingest {ingest_rate:,.0f} rec/s is below the "
            f"{floor:,.0f} rec/s floor"
        )
    if check is not None:
        baseline = json.loads(pathlib.Path(check).read_text())
        reference = baseline["ingest_records_per_second"]
        allowed = reference * (1.0 - tolerance)
        print(
            f"gate: {ingest_rate:,.0f} rec/s vs baseline "
            f"{reference:,.0f} rec/s (must stay above {allowed:,.0f})"
        )
        if ingest_rate < allowed:
            failures.append(
                f"ingest regressed more than {tolerance:.0%} below the "
                f"--check baseline ({ingest_rate:,.0f} < {allowed:,.0f} rec/s)"
            )

    from repro.ioutil import atomic_write_text

    output.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(output, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=4_194_304)
    parser.add_argument("--chunk-size", type=int, default=65_536)
    parser.add_argument(
        "--scenario",
        choices=["stationary", "diurnal", "flash-crowd", "coupled"],
        default="flash-crowd",
        help="drift scenario to benchmark (default flash-crowd)",
    )
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream (512k records) for CI smoke checks",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=FLOOR_RECORDS_PER_SECOND,
        metavar="RATE",
        help="absolute ingest floor in records/s (0 disables)",
    )
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE.json",
        help="exit 1 if ingest regressed more than --tolerance below this",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        metavar="FRACTION",
        help="allowed relative regression for --check (default 0.4)",
    )
    arguments = parser.parse_args()
    total = 524_288 if arguments.quick else arguments.records
    raise SystemExit(
        run(
            total,
            arguments.chunk_size,
            arguments.scenario,
            arguments.seed,
            arguments.floor,
            arguments.output,
            arguments.check,
            arguments.tolerance,
        )
    )
