"""Policies: mappings from client contexts to decision distributions.

Paper §2.1: *"a policy returns mu(d|c), the probability of choosing the
decision d for client c, and sum_d mu(d|c) = 1."*

All policies here are **stationary** — the distribution depends only on
the current context.  History-dependent policies live in
:mod:`repro.core.history`.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.random import choice_from_probabilities, ensure_rng
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Decision
from repro.errors import PolicyError

_PROBABILITY_ATOL = 1e-6


def _check_batch_lengths(decisions: Sequence[Decision], contexts: Sequence[ClientContext]) -> None:
    if len(decisions) != len(contexts):
        raise PolicyError(
            f"{len(decisions)} decisions but {len(contexts)} contexts"
        )


def validate_distribution(
    distribution: Mapping[Decision, float],
    space: Optional[DecisionSpace] = None,
) -> Dict[Decision, float]:
    """Check a decision distribution and return it as a plain dict.

    Raises :class:`PolicyError` on negative probabilities, probabilities
    not summing to one, or decisions outside *space* (when given).
    """
    total = 0.0
    for decision, probability in distribution.items():
        if probability < -_PROBABILITY_ATOL:
            raise PolicyError(
                f"negative probability {probability} for decision {decision!r}"
            )
        if space is not None:
            space.validate(decision)
        total += probability
    if not math.isclose(total, 1.0, abs_tol=1e-4):
        raise PolicyError(f"decision probabilities sum to {total}, expected 1.0")
    return dict(distribution)


class Policy(abc.ABC):
    """Abstract stationary policy.

    Subclasses implement :meth:`probabilities`; sampling and propensity
    lookup are derived from it.
    """

    def __init__(self, space: DecisionSpace):
        self._space = space

    @property
    def space(self) -> DecisionSpace:
        """The decision space this policy acts over."""
        return self._space

    @abc.abstractmethod
    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        """Full decision distribution ``mu(. | context)``.

        Must assign a probability to every decision in :attr:`space`
        (zero entries may be omitted) and sum to one.
        """

    def propensity(self, decision: Decision, context: ClientContext) -> float:
        """``mu(decision | context)`` — zero when the decision is never taken."""
        self._space.validate(decision)
        return self.probabilities(context).get(decision, 0.0)

    # -- batch API ----------------------------------------------------------
    #
    # The batch methods are the vectorization seam: estimators call them on
    # whole traces, the defaults below loop over the scalar methods (so any
    # subclass keeps working unchanged), and the built-in policy families
    # override them with numpy implementations that produce bit-identical
    # floats — same operations, in the same order, per element.

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        """``mu(d_k | c_k)`` for aligned decision/context sequences.

        Loop-based default; overrides must match it bit for bit.
        """
        _check_batch_lengths(decisions, contexts)
        return np.asarray(
            [
                self.propensity(decision, context)
                for decision, context in zip(decisions, contexts)
            ],
            dtype=float,
        )

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        """``mu(d | c_k)`` as an ``(n, |space|)`` matrix in space order.

        Loop-based default; overrides must match it bit for bit.
        """
        decisions = self._space.decisions
        matrix = np.zeros((len(contexts), len(decisions)), dtype=float)
        for row, context in enumerate(contexts):
            distribution = self.probabilities(context)
            for column, decision in enumerate(decisions):
                matrix[row, column] = distribution.get(decision, 0.0)
        return matrix

    def greedy_decision_batch(
        self, contexts: Sequence[ClientContext]
    ) -> List[Decision]:
        """:meth:`greedy_decision` for every context.

        Implemented as a column scan over :meth:`probability_matrix` that
        replays the scalar scan exactly (same comparisons, same tolerance,
        same space-order tie-breaking), so it is bit-identical to the loop
        whenever the matrix is.
        """
        matrix = self.probability_matrix(contexts)
        count = len(contexts)
        best = np.full(count, -1.0)
        choice = np.zeros(count, dtype=np.intp)
        for column in range(matrix.shape[1]):
            better = matrix[:, column] > best + _PROBABILITY_ATOL
            choice[better] = column
            best[better] = matrix[better, column]
        decisions = self._space.decisions
        return [decisions[index] for index in choice]

    def sample(self, context: ClientContext, rng) -> Decision:
        """Draw one decision for *context* using *rng* (seed or Generator)."""
        generator = ensure_rng(rng)
        distribution = self.probabilities(context)
        decisions = list(distribution.keys())
        probabilities = [distribution[d] for d in decisions]
        return choice_from_probabilities(generator, decisions, probabilities)

    def is_deterministic_for(self, context: ClientContext) -> bool:
        """``True`` when the policy puts all mass on a single decision."""
        distribution = self.probabilities(context)
        return any(
            math.isclose(p, 1.0, abs_tol=_PROBABILITY_ATOL)
            for p in distribution.values()
        )

    def greedy_decision(self, context: ClientContext) -> Decision:
        """The most probable decision for *context* (ties broken by space order)."""
        distribution = self.probabilities(context)
        best_decision = None
        best_probability = -1.0
        for decision in self._space:
            probability = distribution.get(decision, 0.0)
            if probability > best_probability + _PROBABILITY_ATOL:
                best_decision = decision
                best_probability = probability
        return best_decision


class DeterministicPolicy(Policy):
    """Wraps a function ``context -> decision`` with probability one.

    Most production networking policies are deterministic ("designed to
    optimize performance or save cost", §4.1) — which is precisely what
    breaks IPS-style estimation when used as the *logging* policy.
    """

    def __init__(self, space: DecisionSpace, rule: Callable[[ClientContext], Decision]):
        super().__init__(space)
        self._rule = rule

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        decision = self._rule(context)
        self._space.validate(decision)
        return {decision: 1.0}

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        _check_batch_lengths(decisions, contexts)
        values = np.empty(len(decisions), dtype=float)
        for index, (decision, context) in enumerate(zip(decisions, contexts)):
            self._space.validate(decision)
            chosen = self._rule(context)
            self._space.validate(chosen)
            values[index] = 1.0 if chosen == decision else 0.0
        return values


class UniformRandomPolicy(Policy):
    """Chooses uniformly at random — the fully randomised logging policy
    CFA's original evaluation assumes (§4.2)."""

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        probability = 1.0 / len(self._space)
        return {decision: probability for decision in self._space}

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        _check_batch_lengths(decisions, contexts)
        for decision in decisions:
            self._space.validate(decision)
        return np.full(len(decisions), 1.0 / len(self._space), dtype=float)

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        return np.full(
            (len(contexts), len(self._space)), 1.0 / len(self._space), dtype=float
        )


class EpsilonGreedyPolicy(Policy):
    """Follows a base policy with probability ``1 - epsilon`` and explores
    uniformly with probability ``epsilon``.

    This is the "introduce randomness where impact on overall performance
    is small" remedy of §4.1.
    """

    def __init__(self, base: Policy, epsilon: float):
        if not 0.0 <= epsilon <= 1.0:
            raise PolicyError(f"epsilon must lie in [0, 1], got {epsilon}")
        super().__init__(base.space)
        self._base = base
        self._epsilon = epsilon

    @property
    def epsilon(self) -> float:
        """The exploration probability."""
        return self._epsilon

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        exploration = self._epsilon / len(self._space)
        distribution = {decision: exploration for decision in self._space}
        for decision, probability in self._base.probabilities(context).items():
            distribution[decision] += (1.0 - self._epsilon) * probability
        return distribution

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        # Same per-element arithmetic as probabilities():
        # exploration + (1 - eps) * base_probability, in that order.
        exploration = self._epsilon / len(self._space)
        base = self._base.propensity_batch(decisions, contexts)
        return exploration + (1.0 - self._epsilon) * base

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        exploration = self._epsilon / len(self._space)
        base = self._base.probability_matrix(contexts)
        return exploration + (1.0 - self._epsilon) * base


class SoftmaxPolicy(Policy):
    """Boltzmann distribution over a per-decision score function.

    ``mu(d|c) ∝ exp(score(c, d) / temperature)``.  Lower temperatures
    approach the greedy policy; higher temperatures approach uniform.
    """

    def __init__(
        self,
        space: DecisionSpace,
        score: Callable[[ClientContext, Decision], float],
        temperature: float = 1.0,
    ):
        if temperature <= 0.0:
            raise PolicyError(f"temperature must be positive, got {temperature}")
        super().__init__(space)
        self._score = score
        self._temperature = temperature

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        scores = np.asarray(
            [self._score(context, decision) for decision in self._space], dtype=float
        )
        scaled = scores / self._temperature
        scaled -= scaled.max()  # numerical stability
        weights = np.exp(scaled)
        weights /= weights.sum()
        return {
            decision: float(weight)
            for decision, weight in zip(self._space, weights)
        }

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        decisions = self._space.decisions
        scores = np.empty((len(contexts), len(decisions)), dtype=float)
        for row, context in enumerate(contexts):
            for column, decision in enumerate(decisions):
                scores[row, column] = self._score(context, decision)
        scaled = scores / self._temperature
        scaled -= scaled.max(axis=1, keepdims=True)
        weights = np.exp(scaled)
        weights /= weights.sum(axis=1, keepdims=True)
        return weights

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        _check_batch_lengths(decisions, contexts)
        columns = np.asarray(
            [self._space.index_of(decision) for decision in decisions], dtype=np.intp
        )
        matrix = self.probability_matrix(contexts)
        return matrix[np.arange(len(decisions)), columns]


class MixturePolicy(Policy):
    """Convex combination of several policies over the same space."""

    def __init__(self, components: Sequence[Policy], weights: Sequence[float]):
        if len(components) != len(weights):
            raise PolicyError(
                f"{len(components)} components but {len(weights)} weights"
            )
        if not components:
            raise PolicyError("a mixture needs at least one component")
        if any(w < 0 for w in weights):
            raise PolicyError("mixture weights must be non-negative")
        total = float(sum(weights))
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise PolicyError(f"mixture weights sum to {total}, expected 1.0")
        space = components[0].space
        for component in components[1:]:
            if component.space != space:
                raise PolicyError("mixture components must share a decision space")
        super().__init__(space)
        self._components = tuple(components)
        self._weights = tuple(float(w) for w in weights)

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        distribution: Dict[Decision, float] = {}
        for component, weight in zip(self._components, self._weights):
            if weight == 0.0:
                continue
            for decision, probability in component.probabilities(context).items():
                distribution[decision] = (
                    distribution.get(decision, 0.0) + weight * probability
                )
        return distribution

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        # Accumulates weight * component probability in component order —
        # the same additions, per element, as the scalar dict accumulation
        # (entries a component omits contribute an exact + 0.0).
        matrix = np.zeros((len(contexts), len(self._space)), dtype=float)
        for component, weight in zip(self._components, self._weights):
            if weight == 0.0:
                continue
            matrix = matrix + weight * component.probability_matrix(contexts)
        return matrix

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        values = np.zeros(len(decisions), dtype=float)
        for component, weight in zip(self._components, self._weights):
            if weight == 0.0:
                continue
            values = values + weight * component.propensity_batch(decisions, contexts)
        return values


class TabularPolicy(Policy):
    """Distribution looked up by a tuple of context features.

    The table maps ``context.values_for(key_features)`` to a decision
    distribution; a default distribution covers unseen keys.
    """

    def __init__(
        self,
        space: DecisionSpace,
        key_features: Sequence[str],
        table: Mapping[Tuple[Hashable, ...], Mapping[Decision, float]],
        default: Optional[Mapping[Decision, float]] = None,
    ):
        super().__init__(space)
        self._key_features = tuple(key_features)
        self._table = {
            key: validate_distribution(distribution, space)
            for key, distribution in table.items()
        }
        self._default = (
            validate_distribution(default, space) if default is not None else None
        )

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        key = context.values_for(self._key_features)
        if key in self._table:
            return dict(self._table[key])
        if self._default is not None:
            return dict(self._default)
        raise PolicyError(
            f"no table entry for context key {key!r} and no default distribution"
        )

    def _row_for(self, context: ClientContext) -> Mapping[Decision, float]:
        key = context.values_for(self._key_features)
        distribution = self._table.get(key)
        if distribution is not None:
            return distribution
        if self._default is not None:
            return self._default
        raise PolicyError(
            f"no table entry for context key {key!r} and no default distribution"
        )

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        _check_batch_lengths(decisions, contexts)
        values = np.empty(len(decisions), dtype=float)
        for index, (decision, context) in enumerate(zip(decisions, contexts)):
            self._space.validate(decision)
            values[index] = self._row_for(context).get(decision, 0.0)
        return values

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        matrix = np.zeros((len(contexts), len(self._space)), dtype=float)
        column_of = {
            decision: column for column, decision in enumerate(self._space.decisions)
        }
        for row, context in enumerate(contexts):
            for decision, probability in self._row_for(context).items():
                matrix[row, column_of[decision]] = probability
        return matrix


class FunctionPolicy(Policy):
    """Wraps an arbitrary ``context -> distribution`` function.

    The returned distribution is validated on every call, so buggy
    user-supplied functions fail loudly rather than biasing estimates.
    """

    def __init__(
        self,
        space: DecisionSpace,
        function: Callable[[ClientContext], Mapping[Decision, float]],
    ):
        super().__init__(space)
        self._function = function

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        return validate_distribution(self._function(context), self._space)


class GreedyModelPolicy(Policy):
    """Deterministically picks the decision a reward model predicts best.

    This is the canonical "new policy" built from a data-driven prediction
    model (§1): fit a model on the trace, then act greedily on it.
    """

    def __init__(self, space: DecisionSpace, model) -> None:
        super().__init__(space)
        self._model = model

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        best_decision = None
        best_prediction = -np.inf
        for decision in self._space:
            prediction = float(self._model.predict(context, decision))
            if prediction > best_prediction:
                best_decision = decision
                best_prediction = prediction
        return {best_decision: 1.0}

    def _best_columns(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        """Column index of the best-predicted decision per context.

        Strict ``>`` against the running best, scanning decisions in space
        order — the same first-max tie-breaking as the scalar loop.
        """
        count = len(contexts)
        best = np.full(count, -np.inf)
        choice = np.zeros(count, dtype=np.intp)
        for column, decision in enumerate(self._space.decisions):
            predictions = np.asarray(
                self._model.predict_batch(contexts, [decision] * count), dtype=float
            )
            better = predictions > best
            choice[better] = column
            best = np.where(better, predictions, best)
        return choice

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        matrix = np.zeros((len(contexts), len(self._space)), dtype=float)
        matrix[np.arange(len(contexts)), self._best_columns(contexts)] = 1.0
        return matrix

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        _check_batch_lengths(decisions, contexts)
        for decision in decisions:
            self._space.validate(decision)
        chosen = self._space.decisions
        values = np.empty(len(decisions), dtype=float)
        for index, (decision, column) in enumerate(
            zip(decisions, self._best_columns(contexts))
        ):
            values[index] = 1.0 if chosen[column] == decision else 0.0
        return values
