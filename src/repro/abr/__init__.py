"""ABR video-streaming substrate (paper Fig 2 and Fig 7b).

A chunked-streaming simulator with the paper's bitrate-dependent
observed-throughput mechanism, the ABR controllers it names (BBA,
rate-based/FESTIVE, MPC/FastMPC), QoE scoring, and the biased
trace-replay evaluator DR is compared against.
"""

from repro.abr.bandwidth import (
    BandwidthProcess,
    ConstantBandwidth,
    MarkovBandwidth,
    NoisyBandwidth,
    TraceBandwidth,
)
from repro.abr.buffer import BufferStep, PlaybackBuffer
from repro.abr.evaluation import (
    ChunkRewardOracle,
    IndependentThroughputModel,
    SessionReplayEvaluator,
    abr_core_policy,
    ladder_space,
)
from repro.abr.ladder import BitrateLadder, VideoManifest
from repro.abr.policies import (
    ABRPolicy,
    BolaPolicy,
    BufferBasedPolicy,
    ExploratoryABR,
    FestivePolicy,
    MPCPolicy,
    PlayerState,
    RateBasedPolicy,
)
from repro.abr.prediction import (
    EWMAPredictor,
    HarmonicMeanPredictor,
    LastSamplePredictor,
    ThroughputPredictor,
)
from repro.abr.qoe import QoEModel
from repro.abr.simulator import ChunkLog, SessionResult, SessionSimulator
from repro.abr.throughput import BitrateEfficiency, ObservedThroughputModel

__all__ = [
    "BitrateLadder",
    "VideoManifest",
    "BandwidthProcess",
    "ConstantBandwidth",
    "NoisyBandwidth",
    "MarkovBandwidth",
    "TraceBandwidth",
    "BitrateEfficiency",
    "ObservedThroughputModel",
    "PlaybackBuffer",
    "BufferStep",
    "QoEModel",
    "ThroughputPredictor",
    "LastSamplePredictor",
    "HarmonicMeanPredictor",
    "EWMAPredictor",
    "ABRPolicy",
    "PlayerState",
    "BufferBasedPolicy",
    "BolaPolicy",
    "RateBasedPolicy",
    "FestivePolicy",
    "MPCPolicy",
    "ExploratoryABR",
    "SessionSimulator",
    "SessionResult",
    "ChunkLog",
    "ChunkRewardOracle",
    "IndependentThroughputModel",
    "SessionReplayEvaluator",
    "abr_core_policy",
    "ladder_space",
]
