"""The per-file OPE-correctness lint rules (REP001–REP009).

Each rule encodes one input-contract discipline the paper's estimators
depend on; the module docstring of :mod:`repro.analysis` maps every rule
id to its paper rationale.  REP003 lives here too although it is a
whole-program rule — it is the interface-parity contract the per-file
rules grew up around; the dataflow tier (REP010–REP013) lives in
:mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Set

from repro.analysis.graph import ModuleIndex, ProjectIndex, RNG_CONSTRUCTORS
from repro.analysis.linter import (
    LintRule,
    ModuleUnit,
    ProjectRule,
    Violation,
    dotted_name,
    register_rule,
    registered_rule_ids,
)

#: The abstract base every estimator derives from; REP003 keys off it.
ESTIMATOR_BASE = "OffPolicyEstimator"

#: Canonical constructor keyword vocabulary for ``core/estimators``
#: classes (REP003).  A ``**legacy`` var-keyword catch-all is allowed so
#: deprecated aliases can be funnelled through
#: :func:`repro.core.estimators.base.resolve_legacy_kwarg`.
CONSTRUCTOR_VOCABULARY = {
    "self",
    "model",
    "clip",
    "fit_on_trace",
    "propensity_source",
    "rng",
}

#: Re-exported for backward compatibility (the allow-list moved to
#: :mod:`repro.analysis.graph` so the index extractor shares it).
_RNG_CONSTRUCTORS = RNG_CONSTRUCTORS


def _walk_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class NoUnseededRandomness(LintRule):
    """REP001 — determinism discipline for every stochastic component.

    Reproducible figures require every random draw to flow from an
    explicit ``np.random.Generator`` or seed.  Flags (a) zero-argument
    ``np.random.default_rng()`` calls, (b) draws from the legacy global
    state (``np.random.normal(...)``, ``np.random.seed(...)``, the
    ``RandomState`` singleton...), and (c) imports of the stdlib
    ``random`` module.  The unseeded ``default_rng()`` form is
    mechanical to repair, so ``repro lint --fix`` injects a seed stub.
    """

    rule_id = "REP001"
    description = (
        "stochastic code must take an explicit np.random.Generator or seed; "
        "no unseeded default_rng(), global np.random draws, or stdlib random"
    )
    autofixable = True

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        violations.append(
                            self.violation(
                                unit,
                                node,
                                "stdlib `random` draws from hidden global state; "
                                "take an np.random.Generator instead",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    violations.append(
                        self.violation(
                            unit,
                            node,
                            "stdlib `random` draws from hidden global state; "
                            "take an np.random.Generator instead",
                        )
                    )
        for call in _walk_calls(unit.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) < 3 or parts[0] not in ("np", "numpy") or parts[1] != "random":
                continue
            member = parts[2]
            if member == "default_rng":
                if not call.args and not call.keywords:
                    violations.append(
                        self.violation(
                            unit,
                            call,
                            "np.random.default_rng() without a seed is "
                            "non-deterministic; pass an explicit seed or "
                            "SeedSequence",
                            detail="unseeded-default-rng",
                        )
                    )
            elif member not in RNG_CONSTRUCTORS:
                violations.append(
                    self.violation(
                        unit,
                        call,
                        f"np.random.{member}(...) uses the hidden global "
                        "RNG; draw from an explicit np.random.Generator",
                    )
                )
        return violations


@register_rule
class NoBareAssert(LintRule):
    """REP002 — no bare ``assert`` in library code.

    ``assert`` statements are stripped under ``python -O``, so a
    contract expressed as an assert silently disappears in optimised
    deployments.  Library code must raise :mod:`repro.errors` exceptions.
    """

    rule_id = "REP002"
    description = (
        "bare assert vanishes under python -O; raise a repro.errors "
        "exception instead"
    )

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        return [
            self.violation(
                unit,
                node,
                "assert is stripped under python -O; raise a repro.errors "
                "exception so the contract survives in production",
            )
            for node in ast.walk(unit.tree)
            if isinstance(node, ast.Assert)
        ]


@register_rule
class EstimatorInterfaceComplete(ProjectRule):
    """REP003 — estimator subclasses honour the interface and are exported.

    A concrete :class:`OffPolicyEstimator` subclass must implement the
    estimation hook (``_estimate``, an ``estimate`` override, or the
    streaming ``_stream_chunk``/``_stream_finalize`` pair the base class
    assembles into a dense ``_estimate``) — an estimator that cannot
    estimate is a latent failure at call time — and, when it lives in
    the ``core/estimators`` package, must appear in that package's
    ``__all__`` so the public surface stays in sync with the
    implementations and must keep its ``__init__`` keywords inside the
    canonical vocabulary (:data:`CONSTRUCTOR_VOCABULARY`) the
    :mod:`repro.api` registry builds against — a divergent spelling such
    as ``max_weight=`` or ``tau=`` breaks the facade's uniform
    ``model=``/``clip=`` contract (deprecated aliases go through a
    ``**legacy`` catch-all instead).

    The same rule guards the wire-format side of the registry: any class
    named ``*Spec``/``*Config``/``*Ref`` that defines one of
    ``to_dict``/``from_dict`` must define both, so every spec payload
    the api emits can be rebuilt (``from_dict(to_dict())`` — the
    fingerprinting and serving contract).

    Implemented over the project symbol table rather than raw ASTs, so
    cached files participate without being re-parsed.
    """

    rule_id = "REP003"
    description = (
        "concrete OffPolicyEstimator subclasses must implement "
        "estimate/_estimate, be exported from core/estimators/__init__.py, "
        "and keep __init__ keywords in the canonical model=/clip= vocabulary; "
        "*Spec/*Config/*Ref classes must pair to_dict with from_dict"
    )

    def check_project(self, project: ProjectIndex) -> Iterable[Violation]:
        exported = {}
        for index in project.indexes:
            parts = index.path_parts
            if (
                len(parts) >= 2
                and parts[-1] == "__init__.py"
                and parts[-2] == "estimators"
            ):
                exported[parts[:-1]] = index.exports

        violations: List[Violation] = []
        seen: Set[str] = set()
        for index in project.indexes:
            for class_info in index.classes.values():
                name = class_info.name
                if name == ESTIMATOR_BASE or name in seen:
                    continue
                seen.add(name)
                if not project.descends_from(name, ESTIMATOR_BASE):
                    continue
                if any(
                    method.is_abstract
                    for method in class_info.methods.values()
                ):
                    continue  # abstract intermediate, not instantiable
                if not self._implements_estimate(project, name):
                    violations.append(
                        self.violation_at(
                            index.display,
                            class_info.line,
                            f"{name} subclasses {ESTIMATOR_BASE} but neither "
                            "it nor its bases implement estimate()/"
                            "_estimate() or the _stream_chunk()/"
                            "_stream_finalize() pair",
                        )
                    )
                package = index.path_parts[:-1]
                in_estimators_package = (
                    len(index.path_parts) >= 2
                    and index.path_parts[-2] == "estimators"
                )
                if in_estimators_package and package in exported:
                    names = exported[package]
                    if names is not None and name not in names:
                        violations.append(
                            self.violation_at(
                                index.display,
                                class_info.line,
                                f"{name} is a concrete estimator but is "
                                f"missing from "
                                f"{'/'.join(package)}/__init__.py __all__",
                            )
                        )
                if in_estimators_package:
                    violations.extend(
                        self._check_constructor_vocabulary(index, class_info)
                    )
        for index in project.indexes:
            for class_info in index.classes.values():
                violations.extend(
                    self._check_spec_round_trip(index, class_info)
                )
        return violations

    #: Name suffixes marking wire-format spec classes whose instances
    #: must survive a ``from_dict(to_dict())`` round trip (the
    #: :mod:`repro.api` fingerprinting contract).
    SPEC_SUFFIXES = ("Spec", "Config", "Ref")

    def _check_spec_round_trip(
        self, index: ModuleIndex, class_info
    ) -> Iterable[Violation]:
        """Spec classes must pair ``to_dict`` with ``from_dict``.

        A ``*Spec``/``*Config``/``*Ref`` class defining only one half of
        the pair cannot round-trip through JSON: a ``to_dict`` without a
        ``from_dict`` produces payloads nothing can rebuild, and a
        ``from_dict`` without a ``to_dict`` accepts payloads nothing can
        produce.  Classes defining neither are not wire formats and are
        left alone.
        """
        if not class_info.name.endswith(self.SPEC_SUFFIXES):
            return []
        has_to = "to_dict" in class_info.methods
        has_from = "from_dict" in class_info.methods
        if has_to == has_from:
            return []
        present, missing = (
            ("to_dict", "from_dict") if has_to else ("from_dict", "to_dict")
        )
        return [
            self.violation_at(
                index.display,
                class_info.methods[present].line,
                f"{class_info.name} defines {present}() without {missing}(); "
                "spec classes must round-trip through "
                "from_dict(to_dict()) so fingerprints and served payloads "
                "stay rebuildable",
            )
        ]

    def _check_constructor_vocabulary(
        self, index: ModuleIndex, class_info
    ) -> Iterable[Violation]:
        """Flag ``__init__`` parameters outside the canonical vocabulary."""
        init = class_info.methods.get("__init__")
        if init is None:
            return []
        violations: List[Violation] = []
        # A var-keyword (``**legacy``) is explicitly allowed: it is the
        # designated funnel for deprecated aliases.
        for parameter in init.params:
            if parameter not in CONSTRUCTOR_VOCABULARY:
                allowed = ", ".join(sorted(CONSTRUCTOR_VOCABULARY - {"self"}))
                violations.append(
                    self.violation_at(
                        index.display,
                        init.line,
                        f"{class_info.name}.__init__ parameter {parameter!r} "
                        f"is outside the canonical estimator constructor "
                        f"vocabulary ({allowed}); route deprecated aliases "
                        "through **legacy and resolve_legacy_kwarg()",
                    )
                )
        return violations

    def _implements_estimate(self, project: ProjectIndex, name: str) -> bool:
        # Either of the classic hooks suffices, as does the streaming
        # pair (the base class turns _stream_chunk/_stream_finalize into
        # a dense _estimate by treating the whole trace as one chunk).
        implemented: Set[str] = set()
        for _, ancestor in project.ancestry(name):
            if ancestor.name == ESTIMATOR_BASE:
                continue
            implemented |= set(ancestor.methods)
        if {"estimate", "_estimate"} & implemented:
            return True
        return {"_stream_chunk", "_stream_finalize"} <= implemented


@register_rule
class NoFloatEquality(LintRule):
    """REP004 — no float-literal equality in estimator/model code.

    ``x == 0.0`` on floating-point estimates is almost always a latent
    bug: importance weights, propensities, and model predictions arrive
    with rounding error, so equality silently mis-branches.  Use an
    inequality or an explicit tolerance.
    """

    rule_id = "REP004"
    description = (
        "float-literal ==/!= comparisons mis-branch under rounding; use an "
        "inequality or tolerance in estimator/model code"
    )

    #: Path components (directories or file stems) this rule covers.
    _SCOPES = {"estimators", "models"}

    def applies_to(self, unit: ModuleUnit) -> bool:
        parts = {part for part in unit.path.parts}
        parts.add(unit.path.stem)
        return bool(parts & self._SCOPES)

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, float
                    ):
                        violations.append(
                            self.violation(
                                unit,
                                node,
                                f"equality comparison against float literal "
                                f"{operand.value!r}; use an inequality or an "
                                "explicit tolerance",
                            )
                        )
                        break
        return violations


@register_rule
class PublicDocstrings(LintRule):
    """REP005 — public functions/classes in ``repro.core`` have docstrings.

    The core package is the library's public contract surface; an
    undocumented public symbol is an undocumented contract.
    """

    rule_id = "REP005"
    description = (
        "public module-level functions and classes in repro.core must "
        "carry docstrings"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "core" in unit.path.parts

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in unit.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                violations.append(
                    self.violation(
                        unit,
                        node,
                        f"public {kind} {node.name} has no docstring; "
                        "repro.core is the documented contract surface",
                    )
                )
        return violations


#: Exception names considered over-broad to catch in library code.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

#: Call names whose presence in a handler counts as "the failure was at
#: least surfaced" (logging/reporting rather than swallowing).
_SURFACING_CALLS = {
    "log",
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "print",
}


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    """The exception class names a handler catches (empty for bare)."""
    if handler.type is None:
        return []
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_surfaces(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in _SURFACING_CALLS:
                return True
    return False


def _body_is_pure_swallow(handler: ast.ExceptHandler) -> bool:
    """``True`` when the handler body does nothing but discard the error
    (only ``pass``, ``...``/docstring expressions, or ``continue``)."""
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue)):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue
        return False
    return True


@register_rule
class NoSilentExceptionSwallowing(LintRule):
    """REP006 — exception handlers must handle, not hide.

    The resilience layer's whole point is that failures are *recorded*
    (run records, fallback hops, quarantine counts) rather than
    discarded.  This rule enforces the discipline statically: a handler
    whose body only discards the error (``pass``/``...``/``continue``)
    swallows a failure silently regardless of the exception type, and a
    bare ``except:`` or over-broad ``except Exception/BaseException``
    must re-raise or at least surface the failure through a
    logging/reporting call — otherwise it also eats ``KeyboardInterrupt``
    lookalikes, bugs, and everything a narrow contract exception would
    have distinguished.
    """

    rule_id = "REP006"
    description = (
        "no silent exception swallowing: pass-only handlers, and bare or "
        "over-broad except clauses without re-raise or logging"
    )

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            bare = node.type is None
            broad = bare or any(name in _BROAD_EXCEPTIONS for name in names)
            if _body_is_pure_swallow(node):
                caught = "bare except" if bare else f"except {', '.join(names)}"
                violations.append(
                    self.violation(
                        unit,
                        node,
                        f"{caught} silently discards the failure; record it, "
                        "log it, or re-raise a repro.errors exception",
                    )
                )
            elif broad and not (_handler_reraises(node) or _handler_surfaces(node)):
                caught = "bare except" if bare else f"except {', '.join(names)}"
                violations.append(
                    self.violation(
                        unit,
                        node,
                        f"over-broad {caught} neither re-raises nor logs; "
                        "catch the narrow repro.errors type or surface the "
                        "failure",
                    )
                )
        return violations


#: Per-record evaluation methods that have batch counterparts on the
#: same objects (``propensity_batch`` / ``predict_batch``); REP007 flags
#: looped calls to them.
_BATCHABLE_METHODS = {"propensity", "predict"}

#: AST nodes that iterate: explicit loops plus every comprehension form.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@register_rule
class NoPerRecordEvaluationLoops(LintRule):
    """REP007 — no per-record policy/model evaluation loops in estimators.

    Calling ``policy.propensity(...)`` or ``model.predict(...)`` once per
    trace record re-enters the Python interpreter N times for work the
    batch APIs (``propensity_batch``, ``predict_batch``, and the columnar
    :meth:`Trace.columns` cache) do in one vectorised pass — the exact
    hot-path pattern the perf rewrite removed from the IPS/DM/DR family.
    Scoped to ``core/estimators``; genuinely sequential algorithms (the
    history-dependent replay estimator) suppress with a ``# noqa``.
    """

    rule_id = "REP007"
    description = (
        "per-record propensity()/predict() calls inside estimator loops; "
        "use propensity_batch/predict_batch over Trace.columns() instead"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "estimators" in unit.path.parts

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        self._visit(unit, unit.tree, False, violations)
        return violations

    def _visit(
        self,
        unit: ModuleUnit,
        node: ast.AST,
        in_loop: bool,
        violations: List[Violation],
    ) -> None:
        if (
            in_loop
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _BATCHABLE_METHODS
        ):
            batch = f"{node.func.attr}_batch"
            violations.append(
                self.violation(
                    unit,
                    node,
                    f"per-record .{node.func.attr}(...) inside a loop "
                    f"re-enters Python once per record; call {batch}(...) "
                    "on the whole trace (see Trace.columns())",
                )
            )
        entered_loop = in_loop or isinstance(node, _LOOP_NODES)
        for child in ast.iter_child_nodes(node):
            self._visit(unit, child, entered_loop, violations)


@register_rule
class NoqaHygiene(LintRule):
    """REP008 — noqa comments must name known rule ids.

    Historically ``# noqa: TYPO999`` failed to parse as a code list and
    silently suppressed *every* rule on the line — a suppression typo
    became a blanket waiver, which is precisely the silent-bias failure
    mode the linter exists to catch.  The engine now parses code lists
    strictly; this rule surfaces ``REP``-prefixed codes that do not name
    a registered rule as warnings (foreign codes such as ``F401`` are
    left to the tools that own them).  ``repro lint --fix`` rewrites the
    comment, dropping unknown codes and normalising the spelling to
    ``# noqa: REP001,REP004``.
    """

    rule_id = "REP008"
    description = (
        "noqa code lists must name registered REP rules; unknown ids are "
        "reported instead of silently suppressing everything"
    )
    severity = "warning"
    autofixable = True

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        known = set(registered_rule_ids())
        violations: List[Violation] = []
        for line_number, codes in sorted(unit.noqa.items()):
            if codes is None:
                continue
            unknown = [
                code.upper()
                for code in codes
                if code.upper().startswith("REP") and code.upper() not in known
            ]
            if unknown:
                violations.append(
                    Violation(
                        path=unit.display,
                        line=line_number,
                        rule_id=self.rule_id,
                        message=(
                            f"noqa names unknown rule id(s) "
                            f"{', '.join(unknown)}; they suppress nothing — "
                            "fix the id or drop it (repro lint --fix "
                            "removes unknown codes)"
                        ),
                        severity=self.severity,
                        detail=",".join(unknown),
                    )
                )
        return violations


@register_rule
class NoMutableDefaultArgs(LintRule):
    """REP009 — no mutable default arguments.

    A ``def run(trace, seen=[])`` default is created once and shared by
    every call: state leaks across estimator runs and across forked
    workers, which is exactly the cross-run contamination the paper's
    reproducibility demands rule out.  Use ``None`` and materialise
    inside the body.
    """

    rule_id = "REP009"
    description = (
        "mutable default arguments share state across calls (and forked "
        "workers); default to None and build inside the body"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque"}

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [
                *node.args.defaults,
                *[d for d in node.args.kw_defaults if d is not None],
            ]
            for default in defaults:
                if self._is_mutable(default):
                    violations.append(
                        self.violation(
                            unit,
                            default,
                            f"{node.name}() has a mutable default argument; "
                            "the object is created once and shared by every "
                            "call — default to None instead",
                        )
                    )
        return violations

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return (
                name is not None
                and name.split(".")[-1] in self._MUTABLE_CALLS
            )
        return False
