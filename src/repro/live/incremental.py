"""Incremental off-policy estimator state over an unbounded stream.

:class:`IncrementalEstimator` is the live twin of
:func:`repro.store.streaming.stream_estimate`: the same three-hook
decomposition (``_stream_setup`` once, ``_stream_chunk`` per chunk,
``_stream_finalize`` over the gathered columns), with one difference —
the stream has no known length, so the gather buffers *grow* (capacity
doubling) instead of being preallocated, and finalize can be asked for
at any prefix.

**The pinned guarantee** (``tests/live/test_incremental_equivalence.py``):
after observing any sequence of chunks covering records ``[0, n)``, the
result of :meth:`IncrementalEstimator.result` is **bit-identical** to
``stream_estimate`` (and therefore to the dense path) over those same
``n`` records — value, std error, contributions, diagnostics.  The
argument is the streaming engine's, unchanged: ``_stream_chunk`` columns
are pure elementwise per-record functions, the buffers assemble them in
stream order into the exact float64 arrays the offline engine would
gather, and every cross-record reduction happens once, inside
``_stream_finalize``, on those arrays.  No scalar accumulators anywhere
— float addition is not associative, and a running ``total += chunk
.sum()`` would diverge from the offline reduction in the last ulp.

Scope of the guarantee: it requires ``_stream_setup`` to be independent
of the stream (true for the model-free IPS family, and for DM/DR/SNDR
with a **pre-fitted** reward model).  A model-fitting estimator in live
mode would otherwise fit on whatever prefix existed at setup time;
:class:`IncrementalEstimator` refuses that ambiguity by requiring
``fit_on_trace=False`` semantics — pass a fitted model.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.core.contracts import check_trace_columns
from repro.core.estimators.base import EstimateResult, OffPolicyEstimator
from repro.core.policy import Policy
from repro.core.propensity import (
    PropensityModel,
    PropensitySource,
    resolve_propensity_source,
)
from repro.errors import EstimatorError

#: Initial per-column buffer capacity (records).  Doubles as needed.
INITIAL_CAPACITY = 4096


class IncrementalEstimator:
    """Running estimator state, updated chunk by chunk.

    Parameters
    ----------
    estimator:
        Any :class:`~repro.core.estimators.base.OffPolicyEstimator` with
        streaming hooks.  Model-backed estimators must carry a
        *pre-fitted* model (see module docstring).
    new_policy:
        The policy being valued.
    old_policy / propensity_model:
        Optional explicit propensity source, resolved with the same
        preference order as the offline engine (policy > model > logged
        per-record propensities).  Resolution happens against the first
        observed chunk.
    """

    def __init__(
        self,
        estimator: OffPolicyEstimator,
        new_policy: Policy,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
        propensity_floor: Optional[float] = None,
    ):
        self._estimator = estimator
        self._policy = new_policy
        self._old_policy = old_policy
        self._propensity_model = propensity_model
        self._propensity_floor = propensity_floor
        self._source: Optional[PropensitySource] = None
        self._buffers: Optional[Dict[str, np.ndarray]] = None
        self._capacity = 0
        self._length = 0
        self._chunks = 0

    @property
    def estimator(self) -> OffPolicyEstimator:
        """The wrapped estimator."""
        return self._estimator

    @property
    def n(self) -> int:
        """Records observed so far."""
        return self._length

    @property
    def chunks(self) -> int:
        """Chunks observed so far."""
        return self._chunks

    def _ensure_capacity(self, needed: int, template: Dict[str, np.ndarray]) -> None:
        if self._buffers is None:
            capacity = max(INITIAL_CAPACITY, needed)
            self._buffers = {
                key: np.empty(capacity, dtype=array.dtype)
                for key, array in template.items()
            }
            self._capacity = capacity
            return
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        for key, buffer in self._buffers.items():
            grown = np.empty(capacity, dtype=buffer.dtype)
            grown[: self._length] = buffer[: self._length]
            self._buffers[key] = grown
        self._capacity = capacity

    def observe_chunk(self, chunk) -> int:
        """Score one chunk and append its per-record columns.

        *chunk* is anything satisfying the streaming chunk contract
        (``len``, ``columns()``, ``has_propensities()``):
        a :class:`~repro.live.chunks.StreamBatch`, a
        :class:`~repro.store.sharded.ShardChunk`, or a dense
        :class:`~repro.core.types.Trace`.  Returns the total record
        count after the append.

        Validation mirrors the offline engine exactly — vectorised
        contracts with absolute record offsets, shape checks, and a
        stable column set across chunks.
        """
        estimator = self._estimator
        size = len(chunk)
        if size == 0:
            return self._length
        if self._chunks == 0:
            # Same setup/resolution order as stream_estimate: source
            # first (so missing propensities fail before any model
            # work), then the estimator's one-time setup.
            if estimator.requires_propensities:
                self._source = resolve_propensity_source(
                    chunk,
                    self._old_policy,
                    self._propensity_model,
                    floor=self._propensity_floor,
                )
            estimator._stream_setup(self._policy, chunk)
        cursor = self._length
        check_trace_columns(
            chunk.columns(),
            where=f"{estimator.name} input trace",
            offset=cursor,
        )
        columns = estimator._stream_chunk(self._policy, chunk, self._source, cursor)
        if not columns:
            raise EstimatorError(
                f"{estimator.name}._stream_chunk returned no columns"
            )
        arrays: Dict[str, np.ndarray] = {}
        for key, value in columns.items():
            array = np.asarray(value)
            if array.shape != (size,):
                raise EstimatorError(
                    f"{estimator.name}._stream_chunk column {key!r} has "
                    f"shape {array.shape}, expected ({size},)"
                )
            arrays[key] = array
        if self._buffers is not None and set(arrays) != set(self._buffers):
            raise EstimatorError(
                f"{estimator.name}._stream_chunk changed its column set "
                f"mid-stream: {sorted(self._buffers)} vs {sorted(arrays)}"
            )
        self._ensure_capacity(cursor + size, arrays)
        for key, array in arrays.items():
            self._buffers[key][cursor : cursor + size] = array
        self._length = cursor + size
        self._chunks += 1
        return self._length

    def result(self, extra_diagnostics: Optional[Dict[str, Any]] = None) -> EstimateResult:
        """Finalize over everything observed so far.

        Runs ``_stream_finalize`` on the assembled prefix — an O(n)
        reduction, identical to what the offline engine would run over
        the same records.  *extra_diagnostics* entries (e.g. a store
        quarantine report) are attached afterwards, mirroring how
        ``stream_estimate`` decorates degraded results.
        """
        if self._buffers is None or self._length == 0:
            raise EstimatorError("cannot estimate from an empty stream")
        columns = {
            key: buffer[: self._length] for key, buffer in self._buffers.items()
        }
        result = self._estimator._stream_finalize(columns, self._length)
        if extra_diagnostics:
            result.diagnostics.update(extra_diagnostics)
        return result

    def column_prefix(self, key: str) -> np.ndarray:
        """Read-only view of one gathered column's observed prefix."""
        if self._buffers is None or key not in self._buffers:
            raise EstimatorError(f"no gathered column {key!r}")
        return self._buffers[key][: self._length]

    def column_names(self) -> tuple:
        """Names of the gathered per-record columns (empty before data)."""
        if self._buffers is None:
            return ()
        return tuple(sorted(self._buffers))
