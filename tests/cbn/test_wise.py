"""Tests for the WISE CBN reward model and the Fig 4 scenario."""

import numpy as np
import pytest

from repro import core
from repro.cbn.scenario import WiseScenario
from repro.cbn.wise import REWARD_VARIABLE, WiseRewardModel
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import ModelError, SimulationError


class TestWiseRewardModel:
    def _simple_trace(self, rng, n=400):
        """Reward depends on the decision only: d1 -> 10, d2 -> 20."""
        records = []
        for _ in range(n):
            decision = "d1" if rng.uniform() < 0.5 else "d2"
            mean = 10.0 if decision == "d1" else 20.0
            records.append(
                TraceRecord(
                    ClientContext(isp=f"isp-{rng.integers(0, 2)}"),
                    decision,
                    float(mean + rng.normal(0, 1.0)),
                    propensity=0.5,
                )
            )
        return Trace(records)

    def test_learns_decision_effect(self, rng):
        model = WiseRewardModel(decision_factors=("choice",), reward_bins=2)
        model.fit(self._simple_trace(rng))
        context = ClientContext(isp="isp-0")
        assert model.predict(context, "d2") > model.predict(context, "d1") + 5.0

    def test_reward_parents_exposed(self, rng):
        model = WiseRewardModel(decision_factors=("choice",), reward_bins=2)
        model.fit(self._simple_trace(rng))
        assert "choice" in model.reward_parents()

    def test_tuple_decision_factors(self, rng):
        scenario = WiseScenario()
        trace = scenario.generate_trace(rng)
        model = WiseRewardModel(decision_factors=("frontend", "backend"))
        model.fit(trace)
        value = model.predict(ClientContext(isp="isp-1"), ("fe-1", "be-1"))
        assert np.isfinite(value)

    def test_wrong_decision_shape_rejected(self, rng):
        model = WiseRewardModel(decision_factors=("fe", "be"))
        with pytest.raises(ModelError):
            model.fit(self._simple_trace(rng))

    def test_factor_name_collision_rejected(self, rng):
        model = WiseRewardModel(decision_factors=("isp",))
        with pytest.raises(ModelError):
            model.fit(self._simple_trace(rng))

    def test_constant_rewards_rejected(self):
        trace = Trace(
            [TraceRecord(ClientContext(isp="a"), "d", 5.0, propensity=1.0)] * 20
        )
        model = WiseRewardModel(decision_factors=("choice",))
        with pytest.raises(ModelError):
            model.fit(trace)

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            WiseRewardModel(decision_factors=())
        with pytest.raises(ModelError):
            WiseRewardModel(decision_factors=("d",), reward_bins=1)

    def test_unseen_evidence_value_handled(self, rng):
        model = WiseRewardModel(decision_factors=("choice",))
        model.fit(self._simple_trace(rng))
        # isp-9 never seen: evidence is dropped, prediction still finite.
        assert np.isfinite(model.predict(ClientContext(isp="isp-9"), "d1"))


class TestWiseScenario:
    def test_trace_counts_match_paper(self, rng):
        scenario = WiseScenario()
        trace = scenario.generate_trace(rng)
        # 2 ISPs x (500 + 3*5) records
        assert len(trace) == 2 * (500 + 15)
        groups = trace.group_by_decision()
        assert len(groups[("fe-1", "be-1")]) >= 500  # isp-1 arrow + isp-2 rare

    def test_propensities_consistent_with_policy(self, rng):
        scenario = WiseScenario()
        trace = scenario.generate_trace(rng)
        old = scenario.old_policy()
        for record in list(trace)[:50]:
            assert record.propensity == pytest.approx(
                old.propensity(record.decision, record.context)
            )

    def test_new_policy_shift(self):
        scenario = WiseScenario()
        new = scenario.new_policy()
        distribution = new.probabilities(ClientContext(isp="isp-1"))
        assert distribution[("fe-1", "be-2")] == pytest.approx(0.5)
        assert sum(distribution.values()) == pytest.approx(1.0)
        # isp-2 unchanged
        old = scenario.old_policy()
        context = ClientContext(isp="isp-2")
        assert new.probabilities(context) == pytest.approx(old.probabilities(context))

    def test_ground_truth_long_only_on_fe1_be1_for_isp1(self):
        scenario = WiseScenario()
        assert scenario.true_mean_response("isp-1", ("fe-1", "be-1")) == 300.0
        assert scenario.true_mean_response("isp-1", ("fe-1", "be-2")) == 100.0
        assert scenario.true_mean_response("isp-2", ("fe-1", "be-1")) == 100.0

    def test_ground_truth_value_mixture(self, rng):
        scenario = WiseScenario()
        trace = scenario.generate_trace(rng)
        old_value = scenario.ground_truth_value(scenario.old_policy(), trace)
        new_value = scenario.ground_truth_value(scenario.new_policy(), trace)
        # The new policy moves ISP-1 traffic off the slow pair: lower mean.
        assert new_value < old_value

    def test_dm_overestimates_dr_corrects(self, rng):
        """The Fig 7a mechanism, as a single-run integration test."""
        scenario = WiseScenario()
        trace = scenario.generate_trace(rng)
        old, new = scenario.old_policy(), scenario.new_policy()
        truth = scenario.ground_truth_value(new, trace)
        dm = core.DirectMethod(
            WiseRewardModel(decision_factors=("frontend", "backend"))
        ).estimate(new, trace, old_policy=old)
        dr = core.DoublyRobust(
            WiseRewardModel(decision_factors=("frontend", "backend"))
        ).estimate(new, trace, old_policy=old)
        assert abs(dr.value - truth) < abs(dm.value - truth)

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            WiseScenario(clients_per_arrow=0)
        with pytest.raises(SimulationError):
            WiseScenario(long_response_ms=50.0, short_response_ms=100.0)
        with pytest.raises(SimulationError):
            WiseScenario(new_policy_shift=0.0)
