"""Property-based tests (hypothesis) on core invariants.

These encode the algebraic properties the paper's §3 relies on — policy
distributions are distributions, importance weights are consistent, the
DR identities hold — over generated inputs rather than hand-picked
examples.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core
from repro.core.types import ClientContext, Trace, TraceRecord

DECISIONS = ("a", "b", "c")


# -- strategies ---------------------------------------------------------------

@st.composite
def contexts(draw):
    x = draw(st.integers(min_value=0, max_value=4))
    isp = draw(st.sampled_from(["isp-0", "isp-1"]))
    return ClientContext(x=float(x), isp=isp)


@st.composite
def trace_records(draw):
    context = draw(contexts())
    decision = draw(st.sampled_from(DECISIONS))
    reward = draw(
        st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
    )
    propensity = draw(st.floats(min_value=0.05, max_value=1.0))
    return TraceRecord(context, decision, reward, propensity=propensity)


@st.composite
def traces(draw, min_size=1, max_size=30):
    records = draw(st.lists(trace_records(), min_size=min_size, max_size=max_size))
    return Trace(records)


@st.composite
def epsilon_policies(draw):
    space = core.DecisionSpace(DECISIONS)
    target = draw(st.sampled_from(DECISIONS))
    epsilon = draw(st.floats(min_value=0.0, max_value=1.0))
    return core.EpsilonGreedyPolicy(
        core.DeterministicPolicy(space, lambda c: target), epsilon
    )


# -- policy invariants -----------------------------------------------------------

class TestPolicyInvariants:
    @given(policy=epsilon_policies(), context=contexts())
    def test_distribution_sums_to_one(self, policy, context):
        distribution = policy.probabilities(context)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9
        assert all(p >= 0 for p in distribution.values())

    @given(policy=epsilon_policies(), context=contexts())
    def test_propensity_matches_distribution(self, policy, context):
        distribution = policy.probabilities(context)
        for decision in DECISIONS:
            assert policy.propensity(decision, context) == pytest.approx(
                distribution.get(decision, 0.0)
            )

    @given(
        policy=epsilon_policies(),
        context=contexts(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_sample_in_support(self, policy, context, seed):
        decision = policy.sample(context, np.random.default_rng(seed))
        assert policy.propensity(decision, context) > 0

    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=4
        ),
        context=contexts(),
    )
    def test_mixture_normalised(self, weights, context):
        space = core.DecisionSpace(DECISIONS)
        total = sum(weights)
        normalised = [w / total for w in weights]
        components = [core.UniformRandomPolicy(space) for _ in weights]
        mixture = core.MixturePolicy(components, normalised)
        distribution = mixture.probabilities(context)
        assert abs(sum(distribution.values()) - 1.0) < 1e-9


# -- trace invariants ---------------------------------------------------------------

class TestTraceInvariants:
    @given(trace=traces())
    def test_jsonl_roundtrip(self, trace, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "trace.jsonl")
        trace.to_jsonl(path)
        assert Trace.from_jsonl(path) == trace

    @given(trace=traces(min_size=2))
    def test_split_partitions(self, trace):
        first, second = trace.split(0.5)
        assert len(first) + len(second) == len(trace)
        assert list(first) + list(second) == list(trace)

    @given(trace=traces())
    def test_filter_subset(self, trace):
        filtered = trace.filter(lambda r: r.reward > 0)
        assert len(filtered) <= len(trace)
        assert all(r.reward > 0 for r in filtered)

    @given(trace=traces(), shift=st.floats(min_value=-10, max_value=10))
    def test_map_rewards_linear(self, trace, shift):
        mapped = trace.map_rewards(lambda r: r.reward + shift)
        np.testing.assert_allclose(
            mapped.rewards(), trace.rewards() + shift, atol=1e-9
        )


# -- estimator invariants ----------------------------------------------------------

class TestEstimatorInvariants:
    @settings(max_examples=30, deadline=None)
    @given(trace=traces(min_size=3), policy=epsilon_policies())
    def test_dr_equals_dm_with_perfect_model_on_noiseless_rewards(
        self, trace, policy
    ):
        """§3 special case 2, as an identity over arbitrary traces."""
        truth = {"a": 1.0, "b": 5.0, "c": -2.0}

        def truth_fn(context, decision):
            return truth[decision]

        noiseless = trace.map_rewards(lambda r: truth_fn(r.context, r.decision))
        oracle = core.OracleRewardModel(truth_fn)
        dm = core.DirectMethod(oracle).estimate(policy, noiseless)
        dr = core.DoublyRobust(oracle).estimate(policy, noiseless)
        assert dr.value == pytest.approx(dm.value, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(min_size=3))
    def test_snips_bounded_by_reward_range(self, trace):
        """SNIPS is a convex combination of observed rewards."""
        space = core.DecisionSpace(DECISIONS)
        policy = core.UniformRandomPolicy(space)
        result = core.SelfNormalizedIPS().estimate(policy, trace)
        rewards = trace.rewards()
        assert rewards.min() - 1e-9 <= result.value <= rewards.max() + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(min_size=3), policy=epsilon_policies())
    def test_ips_scales_linearly_with_rewards(self, trace, policy):
        scale = 3.0
        scaled = trace.map_rewards(lambda r: r.reward * scale)
        original = core.IPS().estimate(policy, trace).value
        rescaled = core.IPS().estimate(policy, scaled).value
        assert rescaled == pytest.approx(original * scale, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(min_size=3), policy=epsilon_policies())
    def test_clipped_ips_bounded_by_ips_weights(self, trace, policy):
        clipped = core.ClippedIPS(clip=2.0).estimate(policy, trace)
        assert clipped.diagnostics["max_weight"] <= 2.0 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(trace=traces(min_size=5), policy=epsilon_policies())
    def test_switch_fraction_monotone_in_tau(self, trace, policy):
        """Raising the SWITCH threshold can only shrink the set of
        records routed to the DM branch."""
        truth = {"a": 1.0, "b": 5.0, "c": -2.0}
        model = core.OracleRewardModel(lambda c, d: truth[d])
        fractions = []
        for tau in (0.5, 2.0, 8.0):
            result = core.SwitchDR(model, clip=tau).estimate(policy, trace)
            fraction = result.diagnostics["switched_fraction"]
            assert 0.0 <= fraction <= 1.0
            fractions.append(fraction)
        assert fractions[0] >= fractions[1] >= fractions[2]

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(min_size=2))
    def test_weight_diagnostics_ess_bounds(self, trace):
        """1 <= ESS <= n for any positive weight vector."""
        from repro.core.estimators.base import weight_diagnostics

        weights = np.clip(trace.rewards(), 0.1, None)
        stats = weight_diagnostics(weights)
        assert 1.0 - 1e-9 <= stats["ess"] <= len(trace) + 1e-9


# -- metrics invariants -----------------------------------------------------------

class TestMetricInvariants:
    @given(
        truth=st.floats(min_value=0.1, max_value=100),
        estimate=st.floats(min_value=-100, max_value=100),
    )
    def test_relative_error_nonnegative(self, truth, estimate):
        assert core.relative_error(truth, estimate) >= 0.0

    @given(
        errors=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
        )
    )
    def test_summary_ordering(self, errors):
        summary = core.ErrorSummary.from_errors(errors)
        assert summary.minimum <= summary.mean <= summary.maximum
