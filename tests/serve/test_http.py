"""Unit tests for the minimal HTTP/1.1 framing layer."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.http import (
    MAX_HEADER_BYTES,
    HttpRequest,
    read_request,
    render_response,
)


def _read(raw: bytes, **kwargs):
    """Feed *raw* into a StreamReader at EOF and parse one request."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestParsing:
    def test_get_without_body(self):
        request = _read(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_content_length(self):
        raw = (
            b"POST /v1/evaluate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 7\r\n\r\n"
            b'{"a":1}'
        )
        request = _read(raw)
        assert request.method == "POST"
        assert request.body == b'{"a":1}'
        assert request.headers["content-type"] == "application/json"

    def test_headers_lower_cased(self):
        request = _read(b"GET / HTTP/1.1\r\nX-Custom-Thing: Yes\r\n\r\n")
        assert request.headers["x-custom-thing"] == "Yes"

    def test_connection_close(self):
        request = _read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None


class TestFramingErrors:
    def test_malformed_request_line(self):
        with pytest.raises(ServeError) as info:
            _read(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_truncated_headers(self):
        with pytest.raises(ServeError) as info:
            _read(b"GET / HTTP/1.1\r\nPartial")
        assert info.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(ServeError) as info:
            _read(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        assert info.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(ServeError) as info:
            _read(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert info.value.status == 400

    def test_negative_content_length(self):
        with pytest.raises(ServeError) as info:
            _read(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_body_rejected_up_front(self):
        with pytest.raises(ServeError) as info:
            _read(
                b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n",
                max_body=10,
            )
        assert info.value.status == 413

    def test_transfer_encoding_unsupported(self):
        with pytest.raises(ServeError) as info:
            _read(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert info.value.status == 501

    def test_header_block_size_capped(self):
        huge = b"GET / HTTP/1.1\r\nX-Pad: " + b"x" * MAX_HEADER_BYTES + b"\r\n\r\n"
        with pytest.raises(ServeError) as info:
            _read(huge)
        assert info.value.status == 400


class TestRendering:
    def test_response_shape(self):
        raw = render_response(200, b'{"ok":true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b'{"ok":true}'
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 11" in lines
        assert "Connection: keep-alive" in lines

    def test_close_and_extra_headers(self):
        raw = render_response(
            404, b"{}", keep_alive=False, extra_headers={"X-Trace": "t1"}
        )
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 404 Not Found")
        assert "Connection: close" in text
        assert "X-Trace: t1" in text

    def test_round_trip_through_reader(self):
        raw = render_response(200, b"abc", content_type="text/plain")
        # A response is not a request, but the header framing is shared;
        # sanity-check the bytes split exactly once.
        assert raw.count(b"\r\n\r\n") == 1


class TestKeepAliveDefault:
    def test_default_is_keep_alive(self):
        assert HttpRequest(method="GET", path="/").keep_alive
