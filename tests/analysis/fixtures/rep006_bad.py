"""REP006 fixture: silent swallowing (lines 10, 19, 29) vs handled code."""


def swallow_narrow(values):
    """Pure-swallow: even a narrow error must be recorded, not dropped."""
    total = 0.0
    for value in values:
        try:
            total += float(value)
        except ValueError:
            continue
    return total


def swallow_pass(mapping, key):
    """Pass-only handler on a narrow type is still a silent discard."""
    try:
        del mapping[key]
    except KeyError:
        pass
    return mapping


def broad_without_surfacing(action):
    """Over-broad catch that neither re-raises nor logs the failure."""
    outcome = None
    try:
        outcome = action()
    except Exception:
        outcome = "failed"
    return outcome


def broad_but_logged(action, log):
    """Over-broad, but the failure is surfaced through the logger: clean."""
    try:
        return action()
    except Exception as exc:
        log.warning("action failed: %s", exc)
        return None


def narrow_and_counted(values):
    """Narrow catch whose body records the skip: clean."""
    total = 0.0
    skipped = 0
    for value in values:
        try:
            total += float(value)
        except ValueError:
            skipped += 1
            continue
    return total, skipped


def broad_reraised(action):
    """Over-broad catch that re-raises: clean."""
    try:
        return action()
    except Exception:
        raise
