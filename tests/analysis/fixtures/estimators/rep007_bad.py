"""Fixture: per-record policy/model evaluation loops (REP007)."""


def loop_over_records(policy, model, trace):
    total = 0.0
    for record in trace:
        weight = policy.propensity(record.decision, record.context)
        total += weight * model.predict(record.context, record.decision)
    return total / len(trace)


def comprehension_over_records(model, trace):
    return [model.predict(record.context, record.decision) for record in trace]


def while_loop(policy, records):
    index = 0
    while index < len(records):
        policy.propensity(records[index].decision, records[index].context)
        index += 1
