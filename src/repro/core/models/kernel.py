"""Nadaraya-Watson kernel-smoothing reward model.

A smooth alternative to k-NN: every training record contributes with a
Gaussian weight in encoded feature space.  Bandwidth controls the
bias/variance trade-off continuously, which the model-bias ablations use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.models.base import RewardModel
from repro.core.models.featurize import OneHotEncoder, Standardizer
from repro.core.types import ClientContext, Decision, Trace
from repro.errors import ModelError


class KernelRewardModel(RewardModel):
    """Gaussian-kernel weighted mean of training rewards.

    Parameters
    ----------
    bandwidth:
        Kernel bandwidth in standardised feature units.  Small bandwidths
        interpolate (low bias, high variance); large bandwidths flatten
        towards the global mean.
    """

    def __init__(self, bandwidth: float = 1.0):
        super().__init__()
        if bandwidth <= 0:
            raise ModelError(f"bandwidth must be positive, got {bandwidth}")
        self._bandwidth = float(bandwidth)
        self._encoder = OneHotEncoder(include_decision=True)
        self._standardizer = Standardizer()
        self._matrix: Optional[np.ndarray] = None
        self._rewards: Optional[np.ndarray] = None

    def _fit(self, trace: Trace) -> None:
        self._encoder.fit(trace)
        raw = self._encoder.encode_trace(trace)
        self._standardizer.fit(raw)
        self._matrix = self._standardizer.transform(raw)
        self._rewards = trace.rewards()

    def _predict(self, context: ClientContext, decision: Decision) -> float:
        query = self._standardizer.transform(self._encoder.encode(context, decision))
        squared = np.sum((self._matrix - query) ** 2, axis=1)
        # Subtract the minimum before exponentiating for numerical safety;
        # the constant cancels in the weighted mean.
        logits = -squared / (2.0 * self._bandwidth**2)
        logits -= logits.max()
        weights = np.exp(logits)
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):  # pragma: no cover - defensive
            return float(self._rewards.mean())
        return float(np.dot(weights, self._rewards) / total)
