"""Crash-consistent file writes shared across the library.

Every artifact the library persists — shard files, manifests, benchmark
JSONs, lint baselines — must never be observable half-written: a crash
(or a ``kill -9``) mid-write has to leave either the previous file or
the complete new one, never a torn hybrid.  The portable recipe is the
same everywhere, so it lives here once:

1. write the full payload to a temporary file *in the destination
   directory* (same filesystem, so the final rename cannot degrade to a
   copy);
2. flush and ``fsync`` the temporary file, so its bytes are durable
   before any name points at them;
3. ``os.replace`` it over the destination — atomic on POSIX and on
   Windows;
4. optionally ``fsync`` the directory, so the *rename itself* survives a
   power cut (POSIX only; silently skipped where directories cannot be
   opened).

Readers therefore need no locking discipline beyond "open the final
name": they see the old bytes or the new bytes, nothing in between.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_directory(directory: Union[str, Path]) -> None:
    """Best-effort fsync of *directory* so renames inside it are durable.

    A no-op on platforms where directories cannot be opened for fsync
    (Windows); failure to sync a directory is never an error — the
    rename already happened atomically, durability of the *name* is the
    only thing at stake.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # noqa: REP006 - directory fsync is best-effort by contract
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    durable: bool = True,
) -> Path:
    """Atomically replace *path* with *data* (tmp + fsync + ``os.replace``).

    With ``durable=True`` (the default) the temporary file is fsynced
    before the rename and the parent directory after it, so a crash at
    any instant leaves either the previous file or the complete new one.
    ``durable=False`` skips both fsyncs for hot paths where atomicity
    (no torn readers) matters but durability is someone else's problem.
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    handle, temp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            if durable:
                stream.flush()
                os.fsync(stream.fileno())
        os.replace(temp_name, path)
    except BaseException:
        # SimulatedCrash included: never leave a stray temp file behind
        # when the write itself (not the surrounding process) failed.
        try:
            os.unlink(temp_name)
        except OSError:  # noqa: REP006 - cleanup must not mask the original failure
            pass
        raise
    if durable:
        fsync_directory(directory)
    return path


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Text twin of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), durable=durable)
