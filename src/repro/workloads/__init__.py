"""Synthetic workload generators shared by benchmarks and examples."""

from repro.workloads.diurnal import DEFAULT_FACTORS, DiurnalWorkload
from repro.workloads.drift import DRIFT_SCENARIOS, LiveTrafficGenerator
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "SyntheticWorkload",
    "DiurnalWorkload",
    "DEFAULT_FACTORS",
    "DRIFT_SCENARIOS",
    "LiveTrafficGenerator",
]
