"""REP013 positive fixture: unchecked per-record propensity use."""


def reweight(trace, policy):
    """Weight rewards by raw propensities with no contract gate."""
    return [1.0 / p for p in trace.propensities]


def run(trace, policy):
    """Public entry that never validates the trace."""
    return reweight(trace, policy)
