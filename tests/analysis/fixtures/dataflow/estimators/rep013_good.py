"""REP013 negative fixture: propensity use behind a contract gate."""

from repro.core.contracts import check_propensities


def _weights(trace):
    """Raw weights; every caller validates first."""
    return [1.0 / p for p in trace.propensities]


def run_checked(trace):
    """Public entry that validates before weighting."""
    check_propensities(trace.propensities)
    return _weights(trace)
