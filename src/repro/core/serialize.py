"""Canonical JSON encoding for evaluation payloads and spec fingerprints.

The service tier (:mod:`repro.serve`) and the spec-addressable facade
(:mod:`repro.api.specs`) both need one property from their wire format:
**a JSON round trip must be lossless**, so a served evaluation is
bit-identical to a direct library call and a spec's sha256 fingerprint
is the same however the spec was constructed.  Python's ``json`` module
round-trips finite floats exactly (``repr`` emits the shortest string
that parses back to the same double), so the encoder's job is the
residue JSON cannot carry natively:

* tuples (composite decisions like ``("cdn-1", 720)``) — tagged
  ``{"__tuple__": [...]}``, matching the trace JSONL format;
* non-finite floats (``nan`` standard errors) — tagged
  ``{"__float__": "nan" | "inf" | "-inf"}`` so payloads stay strict
  JSON (``allow_nan=False``);
* dicts with non-string keys (per-decision coverage counts) — tagged
  ``{"__pairs__": [[key, value], ...]}``;
* numpy arrays (contributions, bootstrap replicates) — tagged
  ``{"__ndarray__": [...], "dtype": "float64"}``;
* numpy scalars — demoted to the matching Python ``int``/``float``/
  ``bool`` (``np.float64`` already *is* a ``float``; the integer kinds
  are not JSON-serialisable without this).

:func:`canonical_json` fixes key order and separators on top of the
encoding, and :func:`fingerprint` hashes that canonical form — two specs
fingerprint identically iff they encode identically.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

import numpy as np

from repro.errors import TraceError

#: Tag keys the decoder recognises; a *plain* payload dict must not use
#: them as ordinary string keys (the encoder rejects the collision).
TAGS = ("__tuple__", "__float__", "__pairs__", "__ndarray__")

_FLOAT_TAGS = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}


def encode_value(value: Any) -> Any:
    """Encode *value* into the tagged, JSON-serialisable form.

    Raises :class:`~repro.errors.TraceError` for values with no faithful
    JSON form (sets, arbitrary objects) — an unencodable payload must
    fail loudly at the boundary, not serialise as a lossy ``str()``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {"__float__": "nan"}
        return {"__float__": "inf" if value > 0 else "-inf"}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": [encode_value(item) for item in value.tolist()],
            "dtype": str(value.dtype),
        }
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            collisions = set(value) & set(TAGS)
            if collisions:
                raise TraceError(
                    f"cannot encode a dict using reserved tag key(s) "
                    f"{sorted(collisions)}"
                )
            return {key: encode_value(item) for key, item in value.items()}
        return {
            "__pairs__": [
                [encode_value(key), encode_value(item)]
                for key, item in value.items()
            ]
        }
    raise TraceError(
        f"value of type {type(value).__name__} has no JSON encoding: {value!r}"
    )


def decode_value(payload: Any) -> Any:
    """Inverse of :func:`encode_value`.

    Idempotent on already-decoded Python values (tuples pass through,
    plain numbers pass through), so spec constructors can decode their
    options whether they came off the wire or straight from Python code.
    """
    if isinstance(payload, tuple):
        return tuple(decode_value(item) for item in payload)
    if isinstance(payload, list):
        return [decode_value(item) for item in payload]
    if isinstance(payload, dict):
        if set(payload) == {"__tuple__"}:
            return tuple(decode_value(item) for item in payload["__tuple__"])
        if set(payload) == {"__float__"}:
            try:
                return _FLOAT_TAGS[payload["__float__"]]
            except (KeyError, TypeError):
                raise TraceError(
                    f"unknown float tag {payload['__float__']!r}"
                ) from None
        if set(payload) == {"__pairs__"}:
            return {
                decode_value(key): decode_value(item)
                for key, item in payload["__pairs__"]
            }
        if set(payload) == {"__ndarray__", "dtype"}:
            return np.asarray(
                [decode_value(item) for item in payload["__ndarray__"]],
                dtype=np.dtype(payload["dtype"]),
            )
        return {key: decode_value(item) for key, item in payload.items()}
    return payload


def canonical_json(value: Any) -> str:
    """The canonical JSON text of *value*: encoded, sorted keys, compact
    separators, strict (``allow_nan=False``) — the form fingerprints
    hash, so it must be a pure function of the value."""
    return json.dumps(
        encode_value(value),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def fingerprint(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of *value*.

    This is the identity the service tier caches on: equal fingerprints
    mean byte-equal canonical payloads, which (by the lossless-encoding
    property) mean the same resolved policy/estimator/request.
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def float_list(values: np.ndarray) -> list:
    """A float array as a JSON-ready list (non-finite entries tagged).

    The common all-finite case stays a flat list of numbers — compact
    and directly readable by non-Python clients; :func:`decode_value`
    plus ``np.asarray(..., dtype=float)`` restores the exact doubles.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0 or bool(np.isfinite(array).all()):
        return [float(item) for item in array.tolist()]
    return [encode_value(float(item)) for item in array.tolist()]
