"""REP008 fixture: noqa comments naming unknown rule ids."""

FIRST = 1  # noqa: REP999
SECOND = 2  # noqa: REP001,REP998
THIRD = 3  # noqa: REP002
