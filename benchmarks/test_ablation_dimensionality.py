"""Ablation — estimator error vs decision-space size (§3's curse of
dimensionality).

As |D| grows with the trace length fixed, per-decision coverage thins:
IPS variance grows, clipping trades some of it for bias, and DR's model
half cushions the collapse.
"""

from repro.experiments import render_sweep, run_dimensionality_ablation

from benchmarks.conftest import report

DECISION_COUNTS = (2, 4, 8, 16)
RUNS = 20
SEED = 2017


def test_ablation_dimensionality(benchmark):
    points = benchmark.pedantic(
        lambda: run_dimensionality_ablation(
            decision_counts=DECISION_COUNTS, runs=RUNS, n_trace=1200, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    report("== ablation-dimensionality ==\n" + render_sweep(points, "|D|"))

    smallest = points[0].summaries
    largest = points[-1].summaries
    # IPS error grows with the decision space.
    assert largest["ips"].mean > smallest["ips"].mean
    # DR stays better than IPS at the largest decision space.
    assert largest["dr"].mean < largest["ips"].mean
