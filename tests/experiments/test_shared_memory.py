"""Shared-memory trace transport: promotion, fallback, byte-identity.

The harness contract for ``run_repeated(..., trace=...)`` is that
shared-memory promotion is purely a transport optimisation: summaries,
records, and ledger bytes are identical whether the trace rode a shm
segment, a fork copy, or the pickle fallback — and whether promotion
succeeded at all.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.types import ClientContext, Trace, TraceRecord
from repro.experiments.harness import _fork_available, run_repeated
from repro.store import shm
from repro.store.shm import (
    SharedTraceColumns,
    shared_memory_available,
    shared_trace_clone,
)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)
needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="shared_memory unavailable"
)


def build_trace(n=120, seed=5):
    rng = np.random.default_rng(seed)
    return Trace(
        [
            TraceRecord(
                context=ClientContext(
                    x=float(rng.integers(0, 4)), isp=f"isp-{rng.integers(0, 2)}"
                ),
                decision=("a", "b")[int(rng.integers(0, 2))],
                reward=float(rng.normal()),
                propensity=0.5,
                timestamp=float(rng.integers(0, 1000)),
            )
            for _ in range(n)
        ]
    )


def shared_run(rng, trace):
    subset = trace.subsample(40, rng)
    return {
        "mean": abs(float(subset.rewards().mean())),
        "spread": float(subset.rewards().std()),
    }


def sweep(workers, trace, ledger_path=None):
    return run_repeated(
        "shm-equivalence",
        shared_run,
        runs=6,
        seed=2017,
        workers=workers,
        trace=trace,
        ledger_path=ledger_path,
    )


@needs_shm
class TestSharedTraceColumns:
    def test_columns_match_source(self):
        trace = build_trace()
        shared = SharedTraceColumns.from_columns(trace.columns())
        try:
            for name in ("rewards", "propensities", "timestamps"):
                assert np.array_equal(
                    getattr(shared, name), getattr(trace.columns(), name)
                )
            assert np.array_equal(
                shared.decision_codes, trace.columns().decision_codes
            )
            assert shared.decisions == trace.columns().decisions
        finally:
            shared.close()

    def test_pickle_attaches_instead_of_copying(self):
        trace = build_trace()
        shared = SharedTraceColumns.from_columns(trace.columns())
        try:
            payload = pickle.dumps(shared)
            # The numeric columns must not ride the pickle: the payload
            # carries a segment name plus the Python-object columns.
            attached = pickle.loads(payload)
            try:
                assert attached.segment_name == shared.segment_name
                assert np.array_equal(attached.rewards, shared.rewards)
            finally:
                attached.close()
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        shared = SharedTraceColumns.from_columns(build_trace().columns())
        shared.close()
        shared.close()


class TestSharedTraceClone:
    @needs_shm
    def test_dense_trace_promoted(self):
        trace = build_trace()
        clone, release = shared_trace_clone(trace)
        try:
            assert isinstance(clone.columns(), SharedTraceColumns)
            assert np.array_equal(clone.rewards(), trace.rewards())
        finally:
            release()

    def test_non_trace_passes_through(self):
        sentinel = object()
        clone, release = shared_trace_clone(sentinel)
        assert clone is sentinel
        release()  # no-op must be callable

    def test_unavailable_shm_passes_through(self, monkeypatch):
        monkeypatch.setattr(shm, "_shared_memory", None)
        trace = build_trace()
        clone, release = shared_trace_clone(trace)
        assert clone is trace
        release()


@needs_fork
class TestSweepByteIdentity:
    def test_parallel_matches_sequential_with_shared_trace(self, tmp_path):
        trace = build_trace()
        sequential = sweep(1, trace, tmp_path / "seq.jsonl")
        parallel = sweep(3, trace, tmp_path / "par.jsonl")
        assert parallel.summaries == sequential.summaries
        assert parallel.render() == sequential.render()
        assert (tmp_path / "par.jsonl").read_bytes() == (
            tmp_path / "seq.jsonl"
        ).read_bytes()

    def test_pickle_fallback_is_byte_identical(self, tmp_path, monkeypatch):
        trace = build_trace()
        shared = sweep(3, trace, tmp_path / "shm.jsonl")
        monkeypatch.setattr(shm, "_shared_memory", None)
        fallback = sweep(3, trace, tmp_path / "fallback.jsonl")
        assert fallback.summaries == shared.summaries
        assert fallback.render() == shared.render()
        assert (tmp_path / "fallback.jsonl").read_bytes() == (
            tmp_path / "shm.jsonl"
        ).read_bytes()
