"""Shared-memory trace columns for the parallel harness.

:class:`SharedTraceColumns` is a :class:`~repro.core.types.TraceColumns`
whose numeric columns (rewards, propensities, timestamps, decision
codes) live in one named ``multiprocessing.shared_memory`` segment
instead of private process memory.  It exposes the exact struct-of-
arrays interface of its base class, so estimators cannot tell the
difference — but pool workers *map* the segment instead of receiving a
pickled copy of the arrays:

* **fork transport** — forked workers inherit the mapping directly; the
  parked object in the worker is the same segment, zero copies.
* **pickle transport** — ``__reduce__`` serialises the segment *name*
  plus the Python-object columns; the receiving process attaches to the
  existing segment by name.  The numeric payload never crosses the pipe.

Lifecycle: exactly one process owns a segment (the one that called
:meth:`SharedTraceColumns.from_columns`).  Only the owner unlinks —
guarded by PID so forked children, which inherit ``_owns`` with the rest
of the object, can never reap a segment the parent still maps.  Owners
are registered with ``atexit`` as a crash net: segments are unlinked on
interpreter shutdown even when an exception skips the explicit
:meth:`close`.  Attaching processes additionally *unregister* the
segment from their ``resource_tracker`` — on POSIX every open registers
with the tracker, so without this a short-lived attacher's exit would
unlink a segment the owner is still using.

:func:`shared_trace_clone` is the harness entry point: best-effort
promotion of a dense :class:`~repro.core.types.Trace` onto shared
memory, returning the original object untouched (with a no-op release)
whenever shared memory is unavailable — the pickle/fork fallback path
must stay byte-identical, not merely equivalent.
"""

from __future__ import annotations

import atexit
import os
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.types import Decision, Trace, TraceColumns

try:  # pragma: no cover - import success is the normal case
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

#: Numeric columns packed into the segment, in layout order.
_FLOAT_COLUMNS = ("rewards", "propensities", "timestamps")


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    return _shared_memory is not None


def _column_views(segment, count: int):
    """The four numeric column views over *segment*'s buffer."""
    float_bytes = np.dtype(np.float64).itemsize * count
    views = []
    offset = 0
    for _ in _FLOAT_COLUMNS:
        views.append(
            np.ndarray((count,), dtype=np.float64, buffer=segment.buf, offset=offset)
        )
        offset += float_bytes
    codes = np.ndarray((count,), dtype=np.intp, buffer=segment.buf, offset=offset)
    return views[0], views[1], views[2], codes


def _segment_size(count: int) -> int:
    total = (
        3 * np.dtype(np.float64).itemsize + np.dtype(np.intp).itemsize
    ) * count
    return max(total, 1)  # zero-size segments are invalid


class SharedTraceColumns(TraceColumns):
    """Trace columns whose numeric arrays live in a named shm segment.

    Construct via :meth:`from_columns` (owner) or by unpickling a
    transported instance (attacher).  Identical read interface to
    :class:`~repro.core.types.TraceColumns`; the arrays must be treated
    as read-only, like every other columns cache.
    """

    __slots__ = ("_segment", "_owner_pid", "_closed")

    def __init__(
        self,
        segment,
        rewards: np.ndarray,
        propensities: np.ndarray,
        timestamps: np.ndarray,
        decisions: Tuple[Decision, ...],
        contexts: tuple,
        decision_codes: np.ndarray,
        decision_vocabulary: Tuple[Decision, ...],
        feature_names: Optional[Tuple[str, ...]],
        owner_pid: Optional[int],
    ):
        super().__init__(
            rewards,
            propensities,
            timestamps,
            decisions,
            contexts,
            decision_codes,
            decision_vocabulary,
            feature_names=feature_names,
        )
        self._segment = segment
        self._owner_pid = owner_pid
        self._closed = False

    @property
    def segment_name(self) -> str:
        """The shm segment's system-wide name (for diagnostics/tests)."""
        return self._segment.name

    @classmethod
    def from_columns(cls, columns: TraceColumns) -> "SharedTraceColumns":
        """Copy *columns*' numeric arrays into a fresh owned segment."""
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        count = len(columns)
        segment = _shared_memory.SharedMemory(
            create=True, size=_segment_size(count)
        )
        rewards, propensities, timestamps, codes = _column_views(segment, count)
        rewards[:] = columns.rewards
        propensities[:] = columns.propensities
        timestamps[:] = columns.timestamps
        codes[:] = columns.decision_codes
        shared = cls(
            segment,
            rewards,
            propensities,
            timestamps,
            columns.decisions,
            columns.contexts,
            codes,
            columns.decision_vocabulary,
            columns._feature_names,
            owner_pid=os.getpid(),
        )
        atexit.register(shared.close)
        return shared

    def __reduce__(self):
        return (
            _attach_columns,
            (
                self._segment.name,
                len(self),
                self.decisions,
                self.contexts,
                self.decision_vocabulary,
                self._feature_names,
            ),
        )

    def close(self) -> None:
        """Release the segment's *name*; attachers detach their mapping.

        The owner unlinks (the name and backing file go away; the live
        mapping itself persists until every process holding it exits, so
        outstanding numpy views stay valid).  Attachers only close their
        mapping — a ``BufferError`` from still-exported views is
        swallowed, since their mapping dies with the process anyway.
        Idempotent, and safe in forked children: they inherit the
        owner's ``_owner_pid`` but run under a different PID, so they
        can never reap a segment the parent still uses.
        """
        if self._closed:
            return
        self._closed = True
        if self._owner_pid is not None and self._owner_pid == os.getpid():
            try:
                self._segment.unlink()
            except (FileNotFoundError, OSError):  # noqa: REP006 - unlink at teardown is best-effort; pragma: no cover
                pass
            atexit.unregister(self.close)
        else:
            try:
                self._segment.close()
            except (BufferError, OSError):  # noqa: REP006 - attacher close is best-effort; pragma: no cover
                pass


def _attach_columns(
    name: str,
    count: int,
    decisions: Tuple[Decision, ...],
    contexts: tuple,
    decision_vocabulary: Tuple[Decision, ...],
    feature_names: Optional[Tuple[str, ...]],
) -> SharedTraceColumns:
    """Unpickle hook: attach to segment *name* and rebuild the views."""
    segment = _shared_memory.SharedMemory(name=name)
    # On POSIX, attaching registers the segment with this process's
    # resource tracker as if it were a new allocation; unregister so an
    # attacher's exit cannot unlink a segment its owner still maps.
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: REP006 - tracker internals differ across CPythons; worst case is a spurious unlink warning
        pass
    rewards, propensities, timestamps, codes = _column_views(segment, count)
    return SharedTraceColumns(
        segment,
        rewards,
        propensities,
        timestamps,
        decisions,
        contexts,
        codes,
        decision_vocabulary,
        feature_names,
        owner_pid=None,
    )


class SharedColumnBuffers:
    """Named-shm gather buffers for the parallel streaming engine.

    One segment per estimator column, created by the parent *before* it
    forks its worker pool: the forked workers inherit the mappings and
    write their disjoint ``[cursor, cursor+size)`` spans in place, so
    the gathered columns never cross the result pipe.  Same lifecycle
    rules as :class:`SharedTraceColumns` — only the creating PID
    unlinks, with an ``atexit`` net for crashes; the live mapping (and
    therefore any outstanding views) survives until process exit.
    """

    __slots__ = ("_segments", "views", "_owner_pid", "_closed")

    def __init__(self, dtypes, count: int):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._segments = {}
        self.views = {}
        self._owner_pid = os.getpid()
        self._closed = False
        try:
            for key, dtype in dtypes.items():
                resolved = np.dtype(dtype)
                segment = _shared_memory.SharedMemory(
                    create=True, size=max(resolved.itemsize * count, 1)
                )
                self._segments[key] = segment
                self.views[key] = np.ndarray(
                    (count,), dtype=resolved, buffer=segment.buf
                )
        except BaseException:
            for segment in self._segments.values():
                try:
                    segment.unlink()
                except (FileNotFoundError, OSError):  # noqa: REP006 - partial-failure sweep must not mask the original error; pragma: no cover
                    pass
            raise
        atexit.register(self.close)

    def close(self) -> None:
        """Unlink every segment (owner PID only; idempotent)."""
        if self._closed or self._owner_pid != os.getpid():
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # noqa: REP006 - unlink at teardown is best-effort; pragma: no cover
                pass
        atexit.unregister(self.close)


def shared_trace_clone(trace) -> Tuple[object, Callable[[], None]]:
    """Best-effort shm promotion of a dense trace for a parallel sweep.

    Returns ``(trace_for_workers, release)``.  For a dense
    :class:`~repro.core.types.Trace` with shared memory available, the
    first element is a clone sharing the record list whose column cache
    is a :class:`SharedTraceColumns`; ``release()`` unlinks the segment
    (call it exactly once, after the sweep).  In every other case —
    sharded traces (already out-of-core), shared memory unavailable, or
    any allocation failure — the original object comes back with a no-op
    release, so callers degrade to plain fork/pickle semantics without
    a special case.
    """
    if not isinstance(trace, Trace) or len(trace) == 0:
        return trace, lambda: None
    if _shared_memory is None:
        return trace, lambda: None
    try:
        shared = SharedTraceColumns.from_columns(trace.columns())
    except Exception:  # noqa: REP006 - promotion is an optimisation; any allocation failure degrades to fork/pickle
        return trace, lambda: None
    clone = Trace._from_records(trace._records)
    clone._columns = shared
    return clone, shared.close
