"""Project-wide symbol table and call graph for whole-program lint rules.

The per-file rules (REP001–REP009) see one AST at a time; the dataflow
tier (REP010–REP013, :mod:`repro.analysis.dataflow`) reasons about flows
*between* files — an unseeded RNG created in a helper module reaching an
estimator, a fork-unsafe global mutated from a pool worker, a
propensity-consuming path with no dominating contract check.  This module
extracts the facts those rules need into :class:`ModuleIndex`, a plain
JSON-serialisable summary of one file, and assembles the summaries into a
:class:`ProjectIndex` carrying the symbol table, the import graph, and a
best-effort static call graph.

Design constraints:

* **Cacheable.**  A :class:`ModuleIndex` round-trips through JSON
  (:meth:`ModuleIndex.to_json` / :meth:`ModuleIndex.from_json`), so the
  incremental engine (:mod:`repro.analysis.cache`) re-parses only files
  whose content hash changed; unchanged files contribute their cached
  index to the project graph at zero parse cost.
* **Best-effort resolution.**  Calls are resolved statically through
  local definitions, import aliases, ``self`` method dispatch (including
  virtual dispatch to subclass overrides), and ``ClassName()``
  constructors.  Unresolvable calls (getattr, callables in data
  structures, foreign libraries) become no edges — the dataflow rules
  are deliberately under-approximate, never speculative.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Bump when the index schema or extraction logic changes; cached
#: indexes with a different version are discarded.
INDEX_VERSION = 1

#: ``np.random.X`` members that construct generators/seeds rather than
#: draw from hidden global state (mirrors REP001's allow-list).
RNG_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Runtime-contract entry points (:mod:`repro.core.contracts` plus the
#: propensity-source validators that delegate to them).  A function that
#: transitively calls one of these is a *checking* function for REP013.
CONTRACT_CHECKERS = {
    "check_propensities",
    "check_weights",
    "check_trace",
    "check_trace_columns",
    "validate_positive",
    "validate_positive_batch",
}

#: Method names that mutate their receiver in place (REP011).
MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "appendleft",
    "extendleft",
}

#: Pool-submission methods whose callable argument runs in a worker
#: process (REP011 roots).
POOL_SUBMIT_METHODS = {"submit", "map", "imap", "imap_unordered", "apply_async", "starmap"}


def dotted(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain (``np.random.default_rng``) or None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class CallSite:
    """One call expression inside a function body."""

    __slots__ = ("name", "line", "arg_names", "keyword_names", "lambda_args")

    def __init__(
        self,
        name: str,
        line: int,
        arg_names: Tuple[Optional[str], ...] = (),
        keyword_names: Tuple[str, ...] = (),
        lambda_args: Tuple[int, ...] = (),
    ):
        self.name = name
        self.line = line
        #: Dotted names of positional arguments (None for non-name args).
        self.arg_names = arg_names
        self.keyword_names = keyword_names
        #: Positions of arguments that are lambda/locally-defined callables.
        self.lambda_args = lambda_args

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "args": list(self.arg_names),
            "kwargs": list(self.keyword_names),
            "lambdas": list(self.lambda_args),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CallSite":
        return cls(
            name=str(payload["name"]),
            line=int(payload["line"]),
            arg_names=tuple(payload.get("args") or ()),
            keyword_names=tuple(payload.get("kwargs") or ()),
            lambda_args=tuple(int(i) for i in payload.get("lambdas") or ()),
        )


class FunctionInfo:
    """Static facts about one function or method body."""

    __slots__ = (
        "qualname",
        "line",
        "params",
        "calls",
        "rng_sources",
        "global_writes",
        "module_mutations",
        "propensity_reads",
        "pid_guarded",
        "is_method",
        "owner_class",
    )

    def __init__(
        self,
        qualname: str,
        line: int,
        params: Tuple[str, ...] = (),
        calls: Tuple[CallSite, ...] = (),
        rng_sources: Tuple[Tuple[int, str], ...] = (),
        global_writes: Tuple[Tuple[int, str], ...] = (),
        module_mutations: Tuple[Tuple[int, str], ...] = (),
        propensity_reads: Tuple[int, ...] = (),
        pid_guarded: bool = False,
        is_method: bool = False,
        owner_class: Optional[str] = None,
    ):
        self.qualname = qualname
        self.line = line
        self.params = params
        self.calls = calls
        #: ``(line, description)`` for every unseeded-RNG expression.
        self.rng_sources = rng_sources
        #: ``(line, name)`` for ``global X`` names rebound in the body.
        self.global_writes = global_writes
        #: ``(line, name)`` for in-place mutations of module-level names.
        self.module_mutations = module_mutations
        #: Lines reading per-record propensities (``.propensities`` or a
        #: ``propensity_batch`` call).
        self.propensity_reads = propensity_reads
        #: Whether the body consults ``os.getpid()`` — the sanctioned
        #: fork-reinitialisation idiom (see REP011).
        self.pid_guarded = pid_guarded
        self.is_method = is_method
        self.owner_class = owner_class

    def to_json(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "calls": [call.to_json() for call in self.calls],
            "rng_sources": [list(item) for item in self.rng_sources],
            "global_writes": [list(item) for item in self.global_writes],
            "module_mutations": [list(item) for item in self.module_mutations],
            "propensity_reads": list(self.propensity_reads),
            "pid_guarded": self.pid_guarded,
            "is_method": self.is_method,
            "owner_class": self.owner_class,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(payload["qualname"]),
            line=int(payload["line"]),
            params=tuple(payload.get("params") or ()),
            calls=tuple(
                CallSite.from_json(item) for item in payload.get("calls") or ()
            ),
            rng_sources=tuple(
                (int(line), str(text))
                for line, text in payload.get("rng_sources") or ()
            ),
            global_writes=tuple(
                (int(line), str(name))
                for line, name in payload.get("global_writes") or ()
            ),
            module_mutations=tuple(
                (int(line), str(name))
                for line, name in payload.get("module_mutations") or ()
            ),
            propensity_reads=tuple(
                int(line) for line in payload.get("propensity_reads") or ()
            ),
            pid_guarded=bool(payload.get("pid_guarded")),
            is_method=bool(payload.get("is_method")),
            owner_class=payload.get("owner_class"),
        )


class MethodInfo:
    """Structural facts about one method needed for parity checks."""

    __slots__ = ("name", "line", "params", "is_abstract", "raises_only", "self_calls")

    def __init__(
        self,
        name: str,
        line: int,
        params: Tuple[str, ...] = (),
        is_abstract: bool = False,
        raises_only: bool = False,
        self_calls: Tuple[str, ...] = (),
    ):
        self.name = name
        self.line = line
        self.params = params
        self.is_abstract = is_abstract
        #: Body is nothing but (docstring +) ``raise`` — a "not
        #: implemented here" placeholder, not a real implementation.
        self.raises_only = raises_only
        #: Names called on ``self`` inside the body (for delegation checks).
        self.self_calls = self_calls

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "is_abstract": self.is_abstract,
            "raises_only": self.raises_only,
            "self_calls": list(self.self_calls),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "MethodInfo":
        return cls(
            name=str(payload["name"]),
            line=int(payload["line"]),
            params=tuple(payload.get("params") or ()),
            is_abstract=bool(payload.get("is_abstract")),
            raises_only=bool(payload.get("raises_only")),
            self_calls=tuple(payload.get("self_calls") or ()),
        )


class ClassInfo:
    """One class definition: bases, methods, constructor signature."""

    __slots__ = ("name", "line", "bases", "methods", "init_params", "has_var_keyword")

    def __init__(
        self,
        name: str,
        line: int,
        bases: Tuple[str, ...] = (),
        methods: Optional[Dict[str, MethodInfo]] = None,
        init_params: Tuple[str, ...] = (),
        has_var_keyword: bool = False,
    ):
        self.name = name
        self.line = line
        #: Base-class names as written (last dotted component kept too).
        self.bases = bases
        self.methods = methods or {}
        self.init_params = init_params
        self.has_var_keyword = has_var_keyword

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": {
                name: method.to_json() for name, method in self.methods.items()
            },
            "init_params": list(self.init_params),
            "has_var_keyword": self.has_var_keyword,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ClassInfo":
        return cls(
            name=str(payload["name"]),
            line=int(payload["line"]),
            bases=tuple(payload.get("bases") or ()),
            methods={
                name: MethodInfo.from_json(method)
                for name, method in (payload.get("methods") or {}).items()
            },
            init_params=tuple(payload.get("init_params") or ()),
            has_var_keyword=bool(payload.get("has_var_keyword")),
        )


class ModuleIndex:
    """JSON-serialisable static summary of one Python file."""

    __slots__ = (
        "display",
        "module",
        "path_parts",
        "imports",
        "functions",
        "classes",
        "module_state",
        "exports",
        "noqa",
    )

    def __init__(
        self,
        display: str,
        module: str,
        path_parts: Tuple[str, ...],
        imports: Optional[Dict[str, str]] = None,
        functions: Optional[Dict[str, FunctionInfo]] = None,
        classes: Optional[Dict[str, ClassInfo]] = None,
        module_state: Optional[Dict[str, int]] = None,
        exports: Optional[List[str]] = None,
        noqa: Optional[Dict[int, Optional[List[str]]]] = None,
    ):
        self.display = display
        #: Dotted module name (``repro.core.estimators.ips``), best-effort.
        self.module = module
        self.path_parts = path_parts
        #: Local alias -> dotted target for every import in the file.
        self.imports = imports or {}
        #: Qualname (``func`` or ``Class.method``) -> facts.
        self.functions = functions or {}
        self.classes = classes or {}
        #: Module-level *mutable* assignments: name -> line.
        self.module_state = module_state or {}
        #: ``__all__`` contents (None when absent or not a literal).
        self.exports = exports
        #: line -> None (bare noqa) or list of codes.
        self.noqa = noqa or {}

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether *line* carries a noqa comment covering *rule_id*."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        if codes is None:
            return True
        return rule_id.upper() in {code.upper() for code in codes}

    def to_json(self) -> Dict[str, object]:
        return {
            "display": self.display,
            "module": self.module,
            "path_parts": list(self.path_parts),
            "imports": dict(self.imports),
            "functions": {
                name: info.to_json() for name, info in self.functions.items()
            },
            "classes": {name: info.to_json() for name, info in self.classes.items()},
            "module_state": dict(self.module_state),
            "exports": self.exports,
            "noqa": {
                str(line): codes for line, codes in self.noqa.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ModuleIndex":
        return cls(
            display=str(payload["display"]),
            module=str(payload["module"]),
            path_parts=tuple(payload.get("path_parts") or ()),
            imports=dict(payload.get("imports") or {}),
            functions={
                name: FunctionInfo.from_json(info)
                for name, info in (payload.get("functions") or {}).items()
            },
            classes={
                name: ClassInfo.from_json(info)
                for name, info in (payload.get("classes") or {}).items()
            },
            module_state={
                name: int(line)
                for name, line in (payload.get("module_state") or {}).items()
            },
            exports=payload.get("exports"),
            noqa={
                int(line): codes
                for line, codes in (payload.get("noqa") or {}).items()
            },
        )


def module_name_for(parts: Sequence[str]) -> str:
    """Dotted module name from path parts, anchored at the package root.

    ``src/repro/core/ips.py`` -> ``repro.core.ips``; paths outside a
    recognisable package fall back to the stem-joined tail.
    """
    names = [part for part in parts]
    if names and names[-1].endswith(".py"):
        stem = names[-1][:-3]
        names = names[:-1] + ([] if stem == "__init__" else [stem])
    for anchor in ("repro", "src"):
        if anchor in names:
            index = names.index(anchor)
            if anchor == "src":
                index += 1
            names = names[index:]
            break
    else:
        names = names[-3:]
    return ".".join(names) if names else "<module>"


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted(node.func)
        if name in {"list", "dict", "set", "defaultdict", "collections.defaultdict", "deque", "collections.deque"}:
            return True
    return False


class _FunctionScanner(ast.NodeVisitor):
    """Collect :class:`FunctionInfo` facts from one function body."""

    def __init__(self, module_level_names: Set[str]):
        self.module_level_names = module_level_names
        self.calls: List[CallSite] = []
        self.rng_sources: List[Tuple[int, str]] = []
        self.global_names: Set[str] = set()
        self.global_writes: List[Tuple[int, str]] = []
        self.module_mutations: List[Tuple[int, str]] = []
        self.propensity_reads: List[int] = []
        self.pid_guarded = False
        self.local_callables: Set[str] = set()

    # -- nested scopes: record names, do not descend into bodies twice --

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_write_targets(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_targets([node.target], node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write_targets([node.target], node.lineno)
        self.generic_visit(node)

    def _record_write_targets(self, targets: Sequence[ast.AST], line: int) -> None:
        for target in targets:
            if isinstance(target, ast.Name) and target.id in self.global_names:
                self.global_writes.append((line, target.id))
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in self.module_level_names:
                    self.module_mutations.append((line, name))

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_write_targets(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_callables.add(node.name)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "propensities" and isinstance(node.ctx, ast.Load):
            self.propensity_reads.append(node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted(node.func)
        if name is not None:
            arg_names = tuple(dotted(arg) for arg in node.args)
            lambda_args = tuple(
                position
                for position, arg in enumerate(node.args)
                if isinstance(arg, ast.Lambda)
                or (isinstance(arg, ast.Name) and arg.id in self.local_callables)
            )
            self.calls.append(
                CallSite(
                    name=name,
                    line=node.lineno,
                    arg_names=arg_names,
                    keyword_names=tuple(
                        keyword.arg
                        for keyword in node.keywords
                        if keyword.arg is not None
                    ),
                    lambda_args=lambda_args,
                )
            )
            parts = name.split(".")
            if parts[-1] == "getpid":
                self.pid_guarded = True
            if parts[-1] == "propensity_batch":
                self.propensity_reads.append(node.lineno)
            self._record_rng_source(name, parts, node)
            self._record_mutation(parts, node)
        self.generic_visit(node)

    def _record_rng_source(
        self, name: str, parts: List[str], node: ast.Call
    ) -> None:
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            member = parts[2]
            if member == "default_rng":
                if not node.args and not node.keywords:
                    self.rng_sources.append(
                        (node.lineno, "np.random.default_rng() without a seed")
                    )
            elif member not in RNG_CONSTRUCTORS:
                self.rng_sources.append(
                    (node.lineno, f"np.random.{member}(...) global-state draw")
                )
        elif parts[0] == "random" and len(parts) == 2:
            self.rng_sources.append(
                (node.lineno, f"stdlib random.{parts[1]}(...) global-state draw")
            )

    def _record_mutation(self, parts: List[str], node: ast.Call) -> None:
        if (
            len(parts) == 2
            and parts[1] in MUTATOR_METHODS
            and parts[0] in self.module_level_names
        ):
            self.module_mutations.append((node.lineno, parts[0]))


def _params_of(args: ast.arguments) -> Tuple[str, ...]:
    named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg is not None:
        named.append(args.vararg)
    return tuple(argument.arg for argument in named)


def _is_abstract(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", ()):
        name = dotted(decorator)
        if name is not None and name.split(".")[-1] in (
            "abstractmethod",
            "abstractproperty",
        ):
            return True
    return False


def _raises_only(node: ast.AST) -> bool:
    body = list(getattr(node, "body", ()))
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]
    return bool(body) and all(isinstance(item, ast.Raise) for item in body)


def _self_calls(node: ast.AST) -> Tuple[str, ...]:
    names: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted(child.func)
            if name is not None and name.startswith("self."):
                names.append(name.split(".", 1)[1].split(".")[0])
    return tuple(names)


def build_module_index(
    tree: ast.Module,
    display: str,
    path_parts: Sequence[str],
    noqa: Optional[Dict[int, Optional[List[str]]]] = None,
) -> ModuleIndex:
    """Extract the :class:`ModuleIndex` facts from a parsed module."""
    imports: Dict[str, str] = {}
    functions: Dict[str, FunctionInfo] = {}
    classes: Dict[str, ClassInfo] = {}
    module_state: Dict[str, int] = {}
    exports: Optional[List[str]] = None

    module = module_name_for(path_parts)
    module_level_names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_level_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            module_level_names.add(node.target.id)

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            prefix = node.module or ""
            if node.level:
                # Relative import: anchor at the containing package.  In
                # ``pkg/mod.py`` level 1 means ``pkg``; in
                # ``pkg/__init__.py`` (module name ``pkg``) it means
                # ``pkg`` itself, so __init__ modules keep one more part.
                parts = module.split(".")
                keep = len(parts) - node.level
                if display.endswith("__init__.py"):
                    keep += 1
                base = ".".join(parts[:max(keep, 0)])
                prefix = f"{base}.{node.module}" if node.module else base
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _function_info(
                node, node.name, module_level_names, is_method=False, owner=None
            )
        elif isinstance(node, ast.ClassDef):
            class_info, method_infos = _class_info(node, module_level_names)
            classes[node.name] = class_info
            functions.update(method_infos)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__" and value is not None:
                    try:
                        exports = [str(name) for name in ast.literal_eval(value)]
                    except (ValueError, TypeError):
                        exports = None
                elif value is not None and _is_mutable_literal(value):
                    module_state[target.id] = node.lineno

    return ModuleIndex(
        display=display,
        module=module,
        path_parts=tuple(path_parts),
        imports=imports,
        functions=functions,
        classes=classes,
        module_state=module_state,
        exports=exports,
        noqa=noqa or {},
    )


def _function_info(
    node: ast.AST,
    qualname: str,
    module_level_names: Set[str],
    is_method: bool,
    owner: Optional[str],
) -> FunctionInfo:
    scanner = _FunctionScanner(module_level_names)
    for child in node.body:
        scanner.visit(child)
    return FunctionInfo(
        qualname=qualname,
        line=node.lineno,
        params=_params_of(node.args),
        calls=tuple(scanner.calls),
        rng_sources=tuple(scanner.rng_sources),
        global_writes=tuple(scanner.global_writes),
        module_mutations=tuple(scanner.module_mutations),
        propensity_reads=tuple(scanner.propensity_reads),
        pid_guarded=scanner.pid_guarded,
        is_method=is_method,
        owner_class=owner,
    )


def _class_info(
    node: ast.ClassDef, module_level_names: Set[str]
) -> Tuple[ClassInfo, Dict[str, FunctionInfo]]:
    methods: Dict[str, MethodInfo] = {}
    functions: Dict[str, FunctionInfo] = {}
    init_params: Tuple[str, ...] = ()
    has_var_keyword = False
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        methods[item.name] = MethodInfo(
            name=item.name,
            line=item.lineno,
            params=_params_of(item.args),
            is_abstract=_is_abstract(item),
            raises_only=_raises_only(item),
            self_calls=_self_calls(item),
        )
        qualname = f"{node.name}.{item.name}"
        functions[qualname] = _function_info(
            item, qualname, module_level_names, is_method=True, owner=node.name
        )
        if item.name == "__init__":
            init_params = _params_of(item.args)
            has_var_keyword = item.args.kwarg is not None
    bases = tuple(
        name for name in (dotted(base) for base in node.bases) if name is not None
    )
    return (
        ClassInfo(
            name=node.name,
            line=node.lineno,
            bases=bases,
            methods=methods,
            init_params=init_params,
            has_var_keyword=has_var_keyword,
        ),
        functions,
    )


class ProjectIndex:
    """All module indexes of one lint invocation, plus the call graph.

    Node identity: ``"display::qualname"`` — the file's display path and
    the function qualname inside it.  The call graph is built lazily on
    first access and memoised.
    """

    def __init__(self, indexes: Sequence[ModuleIndex]):
        self.indexes = list(indexes)
        self.by_display: Dict[str, ModuleIndex] = {
            index.display: index for index in self.indexes
        }
        self.by_module: Dict[str, ModuleIndex] = {}
        for index in self.indexes:
            self.by_module.setdefault(index.module, index)
        self._edges: Optional[Dict[str, Set[str]]] = None
        self._class_owner: Dict[str, List[Tuple[ModuleIndex, ClassInfo]]] = {}
        for index in self.indexes:
            for class_info in index.classes.values():
                self._class_owner.setdefault(class_info.name, []).append(
                    (index, class_info)
                )

    # -- symbol table -----------------------------------------------------

    def node_id(self, index: ModuleIndex, qualname: str) -> str:
        """Stable call-graph node id for a function in a module."""
        return f"{index.display}::{qualname}"

    def function_nodes(self) -> Iterator[Tuple[str, ModuleIndex, FunctionInfo]]:
        """Every function in the project as ``(node_id, index, info)``."""
        for index in self.indexes:
            for qualname, info in index.functions.items():
                yield self.node_id(index, qualname), index, info

    def lookup(self, node_id: str) -> Optional[Tuple[ModuleIndex, FunctionInfo]]:
        """Resolve a node id back to its module index and function info."""
        display, _, qualname = node_id.partition("::")
        index = self.by_display.get(display)
        if index is None:
            return None
        info = index.functions.get(qualname)
        if info is None:
            return None
        return index, info

    def classes_named(self, name: str) -> List[Tuple[ModuleIndex, ClassInfo]]:
        """Every project class with this name (usually one)."""
        return self._class_owner.get(name, [])

    def ancestry(self, class_name: str) -> Iterator[Tuple[ModuleIndex, ClassInfo]]:
        """The class and its project-visible base classes, MRO-ish order."""
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for index, class_info in self.classes_named(current):
                yield index, class_info
                stack.extend(base.split(".")[-1] for base in class_info.bases)

    def subclasses_of(self, class_name: str) -> List[str]:
        """Names of project classes that (transitively) subclass *class_name*."""
        children: Dict[str, Set[str]] = {}
        for index in self.indexes:
            for class_info in index.classes.values():
                for base in class_info.bases:
                    children.setdefault(base.split(".")[-1], set()).add(
                        class_info.name
                    )
        found: List[str] = []
        stack = [class_name]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            for child in children.get(current, ()):  # pragma: no branch
                if child not in seen:
                    seen.add(child)
                    found.append(child)
                    stack.append(child)
        return found

    def descends_from(self, class_name: str, base_name: str) -> bool:
        """Whether *class_name* transitively subclasses *base_name*.

        The base is matched by name even when its defining module is not
        part of the linted file set (fixtures and partial lints import
        ``OffPolicyEstimator`` from outside the analyzed paths).
        """
        for _, class_info in self.ancestry(class_name):
            if class_info.name == base_name:
                return True
            if any(
                base.split(".")[-1] == base_name for base in class_info.bases
            ):
                return True
        return False

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, index: ModuleIndex, caller: FunctionInfo, call: CallSite
    ) -> List[str]:
        """Resolve one call site to project call-graph node ids.

        Handles local functions, import aliases, ``self`` dispatch
        (including virtual dispatch to overrides in project subclasses),
        ``ClassName(...)`` constructors, and ``module.function`` access
        through ``import`` aliases.  Unresolvable calls yield ``[]``.
        """
        parts = call.name.split(".")
        head = parts[0]

        if head == "self" and caller.owner_class is not None and len(parts) >= 2:
            return self._resolve_method(index, caller.owner_class, parts[1])

        if len(parts) == 1:
            return self._resolve_bare_name(index, head)

        # module.attr / alias.attr through imports
        if head in index.imports:
            target = index.imports[head]
            return self._resolve_dotted(target, parts[1:])
        # ClassName.method on a local class
        if head in index.classes and len(parts) == 2:
            return self._resolve_method(index, head, parts[1], virtual=False)
        return []

    def _resolve_bare_name(self, index: ModuleIndex, name: str) -> List[str]:
        if name in index.functions:
            return [self.node_id(index, name)]
        if name in index.classes:
            return self._resolve_method(index, name, "__init__", virtual=False)
        if name in index.imports:
            return self._resolve_dotted(index.imports[name], [])
        return []

    def _resolve_dotted(self, target: str, rest: List[str]) -> List[str]:
        full = ".".join([target, *rest]) if rest else target
        parts = full.split(".")
        # Try to split into module prefix + symbol suffix.
        for split in range(len(parts), 0, -1):
            module = ".".join(parts[:split])
            index = self.by_module.get(module)
            if index is None:
                continue
            suffix = parts[split:]
            if not suffix:
                return []
            if len(suffix) == 1:
                return self._resolve_bare_name(index, suffix[0])
            if suffix[0] in index.classes and len(suffix) == 2:
                return self._resolve_method(index, suffix[0], suffix[1], virtual=False)
            return []
        # ``from m import f`` style: target may name the symbol directly.
        module, _, symbol = full.rpartition(".")
        index = self.by_module.get(module)
        if index is not None and symbol:
            return self._resolve_bare_name(index, symbol)
        return []

    def _resolve_method(
        self,
        index: ModuleIndex,
        class_name: str,
        method: str,
        virtual: bool = True,
    ) -> List[str]:
        """Resolve ``Class.method`` through the MRO, plus virtual dispatch
        to every project subclass override when *virtual* (``self.m()``
        on a base class may execute any override at runtime)."""
        resolved: List[str] = []
        for owner_index, class_info in self.ancestry(class_name):
            if method in class_info.methods:
                qualname = f"{class_info.name}.{method}"
                if qualname in owner_index.functions:
                    resolved.append(self.node_id(owner_index, qualname))
                break
        if virtual:
            for subclass in self.subclasses_of(class_name):
                for owner_index, class_info in self.classes_named(subclass):
                    if method in class_info.methods:
                        qualname = f"{class_info.name}.{method}"
                        if qualname in owner_index.functions:
                            node = self.node_id(owner_index, qualname)
                            if node not in resolved:
                                resolved.append(node)
        return resolved

    # -- graph queries ------------------------------------------------------

    def edges(self) -> Dict[str, Set[str]]:
        """The memoised call graph: node id -> callee node ids."""
        if self._edges is None:
            edges: Dict[str, Set[str]] = {}
            for node, index, info in self.function_nodes():
                targets: Set[str] = set()
                for call in info.calls:
                    targets.update(self.resolve_call(index, info, call))
                edges[node] = targets
            self._edges = edges
        return self._edges

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Every node reachable from *roots* through call edges."""
        edges = self.edges()
        seen: Set[str] = set()
        stack = [root for root in roots if root in edges]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        return seen

    def transitive_markers(self, marked: Set[str]) -> Set[str]:
        """Every node from which some node in *marked* is reachable.

        (Reverse reachability: used to propagate RNG taint up the call
        graph and contract-checker status across helpers.)
        """
        reverse: Dict[str, Set[str]] = {}
        for node, targets in self.edges().items():
            for target in targets:
                reverse.setdefault(target, set()).add(node)
        seen = set(marked)
        stack = list(marked)
        while stack:
            node = stack.pop()
            for caller in reverse.get(node, ()):  # pragma: no branch
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)
        return seen

    def entry_points(self) -> Set[str]:
        """Nodes with no project-internal callers (the public surface)."""
        edges = self.edges()
        called: Set[str] = set()
        for targets in edges.values():
            called.update(targets)
        return {node for node in edges if node not in called}
