"""Tests for the one-stop evaluation report."""

import numpy as np
import pytest

from repro import core
from repro.core.reporting import evaluate_policy
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import EstimatorError

from tests.conftest import make_uniform_trace


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision]


@pytest.fixture
def trace(abc_space, rng):
    return make_uniform_trace(abc_space, _truth, rng, n=400, noise=0.2)


@pytest.fixture
def new_policy(abc_space):
    return core.DeterministicPolicy(abc_space, lambda c: "c")


class TestEvaluatePolicy:
    def test_standard_panel(self, trace, new_policy):
        result = evaluate_policy(new_policy, trace)
        assert set(result.estimates) == {"dm", "snips", "dr"}
        assert result.recommended == "dr"
        assert result.value == pytest.approx(3.0, abs=0.25)
        assert result.overlap.n == len(trace)
        assert result.bootstrap is None

    def test_with_bootstrap(self, trace, new_policy):
        result = evaluate_policy(
            new_policy, trace, bootstrap_replicates=40, rng=0
        )
        assert result.bootstrap is not None
        assert result.bootstrap.lower <= result.value <= result.bootstrap.upper

    def test_custom_model_shared(self, trace, new_policy):
        model = core.OracleRewardModel(_truth)
        result = evaluate_policy(new_policy, trace, model=model)
        # With an exact model DM and DR agree in expectation (here the
        # rewards are noisy, so they differ only via the correction).
        assert result.estimates["dm"].value == pytest.approx(3.0, abs=1e-9)

    def test_extra_estimators(self, trace, new_policy):
        result = evaluate_policy(
            new_policy,
            trace,
            extra_estimators={"ips": core.IPS()},
        )
        assert "ips" in result.estimates

    def test_partial_failure_reported(self, abc_space, new_policy):
        # No overlap at all: SNIPS fails, DM survives.
        trace = Trace(
            [
                TraceRecord(
                    ClientContext(x=float(i % 3), isp="i"), "a", 1.0, propensity=0.5
                )
                for i in range(20)
            ]
        )
        result = evaluate_policy(new_policy, trace)
        assert "snips" in result.failed
        assert "dm" in result.estimates
        assert not result.overlap.healthy()

    def test_render_sections(self, trace, new_policy):
        text = evaluate_policy(new_policy, trace, bootstrap_replicates=20, rng=0).render()
        assert "evaluation report" in text
        assert "recommended" in text
        assert "bootstrap" in text
        assert "effective sample size" in text

    def test_empty_trace_rejected(self, new_policy):
        with pytest.raises(EstimatorError):
            evaluate_policy(new_policy, Trace())
