"""SWITCH-DR: interpolate between DR and DM per record.

An extension beyond the paper's basic DR (in the spirit of its "favorable
settings" discussion): when a record's importance weight exceeds a
threshold ``tau``, its noisy correction term is dropped and the record is
scored by the reward model alone.  This bounds the variance contribution
of thin-propensity records while keeping DR's correction where weights
are tame — useful exactly in the low-randomness logging regimes of §4.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.contracts import check_weights
from repro.core.estimators.base import (
    EstimateResult,
    OffPolicyEstimator,
    expected_model_rewards,
    result_from_contributions,
    weight_diagnostics,
)
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.propensity import PropensitySource
from repro.core.types import Trace
from repro.errors import EstimatorError


class SwitchDR(OffPolicyEstimator):
    """DR with per-record switching to DM above a weight threshold.

    Parameters
    ----------
    model:
        Reward model shared by both branches.
    tau:
        Weight threshold; records with ``w_k > tau`` contribute only
        their DM term.  ``tau = inf`` recovers plain DR; ``tau = 0``
        recovers plain DM.
    """

    failure_modes = (
        "missing-propensities",
        "propensity-violation",
        "unfitted-model",
        "model-fit-failure",
    )

    def __init__(self, model: RewardModel, tau: float = 10.0, fit_on_trace: bool = True):
        if tau < 0:
            raise EstimatorError(f"tau must be non-negative, got {tau}")
        self._model = model
        self._tau = float(tau)
        self._fit_on_trace = fit_on_trace

    @property
    def name(self) -> str:
        return "switch-dr"

    @property
    def tau(self) -> float:
        """The switching threshold."""
        return self._tau

    def _estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        propensities: Optional[PropensitySource],
    ) -> EstimateResult:
        if not self._model.fitted:
            if not self._fit_on_trace:
                raise EstimatorError(
                    "SWITCH-DR model is not fitted and fit_on_trace is disabled"
                )
            self._model.fit(trace)
        n = len(trace)
        columns = trace.columns()
        model = self._model
        contributions = expected_model_rewards(
            new_policy,
            trace,
            lambda positions, contexts, decision: model.predict_batch(
                contexts, [decision] * len(contexts)
            ),
        )
        old = propensities.propensity_batch(trace)
        new = new_policy.propensity_batch(columns.decisions, columns.contexts)
        weights = new / old
        # Residual predictions are only requested for non-switched records,
        # matching the scalar path (a model that cannot score a switched
        # record's logged decision must not be asked to).
        kept = np.flatnonzero(~(weights > self._tau))
        if kept.size:
            predictions = model.predict_batch(
                [columns.contexts[int(index)] for index in kept],
                [columns.decisions[int(index)] for index in kept],
            )
            residuals = columns.rewards[kept] - predictions
            contributions[kept] = contributions[kept] + weights[kept] * residuals
        switched = n - int(kept.size)
        diagnostics = weight_diagnostics(check_weights(weights, where=self.name).values)
        diagnostics["switched_fraction"] = switched / n
        return result_from_contributions(self.name, contributions, diagnostics)
