"""Decision-reward coupling: self-induced load (§4.1, §4.3).

"If we assign clients to a specific server ... then the performance of
future clients using that server instance may be degraded due to
increased load."  This simulator realises that feedback loop: clients
arrive in sequence, the policy assigns each to a server, each assignment
raises that server's utilisation for a while, and rewards are
load-dependent latencies.  The server-load proxy metric the paper
suggests monitoring (§4.3) is logged per record, so change-point
detection and state matching can be evaluated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import Policy
from repro.core.random import ensure_rng
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import SimulationError
from repro.netsim.load import LoadLatencyCurve, Server


@dataclass(frozen=True)
class CoupledAssignment:
    """One client assignment with the load observed at decision time."""

    record: TraceRecord
    server_utilisation: float


class CoupledLoadSimulator:
    """Server-selection with self-induced congestion.

    Parameters
    ----------
    server_capacities:
        Capacity per server name; the decision space is the server set.
    session_length:
        How many subsequent arrivals a client keeps loading its server
        (a sliding window of active sessions).
    base_latency_ms:
        Zero-load latency of every server.
    reward_scale:
        Rewards are ``reward_scale / latency`` so higher is better and
        congestion visibly hurts.
    """

    def __init__(
        self,
        server_capacities: Dict[str, float],
        session_length: int = 50,
        base_latency_ms: float = 20.0,
        reward_scale: float = 1000.0,
        noise_scale: float = 0.05,
    ):
        if not server_capacities:
            raise SimulationError("at least one server is required")
        if session_length <= 0:
            raise SimulationError(
                f"session_length must be positive, got {session_length}"
            )
        self._capacities = dict(server_capacities)
        self._session_length = session_length
        self._base_latency = base_latency_ms
        self._reward_scale = reward_scale
        self._noise_scale = noise_scale

    def space(self) -> DecisionSpace:
        """The server decision space."""
        return DecisionSpace(sorted(self._capacities))

    def run(
        self,
        policy: Policy,
        contexts: Sequence[ClientContext],
        rng,
    ) -> Tuple[Trace, List[float]]:
        """Assign *contexts* in order under *policy*.

        Returns the logged trace (records carry the assigned server's
        pre-admission utilisation as the ``state`` proxy value — a float,
        deliberately unlabelled; discretising it is the estimator's job)
        and the per-arrival utilisation series of the most-loaded server
        (the monitoring signal for change-point detection).
        """
        generator = ensure_rng(rng)
        curve = LoadLatencyCurve(self._base_latency)
        servers = {
            name: Server(name, capacity, curve)
            for name, capacity in self._capacities.items()
        }
        active: List[Tuple[int, str]] = []  # (expiry index, server name)
        records = []
        load_series: List[float] = []
        for index, context in enumerate(contexts):
            # Expire old sessions.
            active = [(expiry, name) for expiry, name in active if expiry > index]
            for server in servers.values():
                server.reset()
            for _, name in active:
                servers[name].admit()

            decision = policy.sample(context, generator)
            server = servers[str(decision)]
            utilisation = server.utilisation
            latency = server.expected_latency(extra_load=1.0)
            noisy = latency * float(generator.lognormal(0.0, self._noise_scale))
            reward = self._reward_scale / noisy
            records.append(
                TraceRecord(
                    context=context,
                    decision=decision,
                    reward=float(reward),
                    propensity=policy.propensity(decision, context),
                    timestamp=float(index),
                    state=None,
                )
            )
            load_series.append(max(s.utilisation for s in servers.values()))
            active.append((index + self._session_length, str(decision)))
        return Trace(records), load_series
