"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro import core
from repro.errors import SimulationError
from repro.workloads import SyntheticWorkload


class TestGroundTruth:
    def test_deterministic_surface(self):
        workload = SyntheticWorkload(effect_seed=3)
        context = core.ClientContext(f0="v1", f1="v2", f2="v0")
        a = workload.true_mean_reward(context, "d1")
        b = SyntheticWorkload(effect_seed=3).true_mean_reward(context, "d1")
        assert a == b

    def test_different_seeds_differ(self):
        context = core.ClientContext(f0="v1", f1="v2", f2="v0")
        a = SyntheticWorkload(effect_seed=1).true_mean_reward(context, "d1")
        b = SyntheticWorkload(effect_seed=2).true_mean_reward(context, "d1")
        assert a != b

    def test_interaction_scale_zero_is_additive(self):
        """With no interaction term, the decision ordering is the same in
        every context cell."""
        workload = SyntheticWorkload(interaction_scale=0.0)
        orderings = set()
        for i in range(3):
            for j in range(3):
                context = core.ClientContext(f0=f"v{i}", f1=f"v{j}", f2="v0")
                values = {
                    d: workload.true_mean_reward(context, d)
                    for d in workload.space()
                }
                orderings.add(tuple(sorted(values, key=values.get)))
        assert len(orderings) == 1

    def test_interactions_change_ordering(self):
        workload = SyntheticWorkload(interaction_scale=3.0)
        orderings = set()
        for i in range(4):
            for j in range(4):
                context = core.ClientContext(f0=f"v{i}", f1=f"v{j}", f2="v0")
                values = {
                    d: workload.true_mean_reward(context, d)
                    for d in workload.space()
                }
                orderings.add(tuple(sorted(values, key=values.get)))
        assert len(orderings) > 1


class TestPolicies:
    def test_optimal_policy_beats_fixed(self, rng):
        workload = SyntheticWorkload()
        old = workload.uniform_policy()
        trace = workload.generate_trace(old, 300, rng)
        best = workload.ground_truth_value(workload.optimal_policy(), trace)
        for index in range(len(workload.space())):
            fixed = workload.ground_truth_value(workload.fixed_policy(index), trace)
            assert best >= fixed - 1e-9

    def test_logging_policy_explores(self):
        workload = SyntheticWorkload()
        policy = workload.logging_policy(epsilon=0.4)
        context = core.ClientContext(f0="v0", f1="v0", f2="v0")
        distribution = policy.probabilities(context)
        assert min(distribution.values()) == pytest.approx(0.1)


class TestTraceGeneration:
    def test_trace_properties(self, rng):
        workload = SyntheticWorkload()
        trace = workload.generate_trace(workload.uniform_policy(), 250, rng)
        assert len(trace) == 250
        assert trace.has_propensities()
        assert set(trace.feature_names()) == {"f0", "f1", "f2"}

    def test_noise_around_truth(self, rng):
        workload = SyntheticWorkload(noise_scale=0.1)
        trace = workload.generate_trace(workload.uniform_policy(), 2000, rng)
        residuals = [
            record.reward - workload.true_mean_reward(record.context, record.decision)
            for record in trace
        ]
        assert np.mean(residuals) == pytest.approx(0.0, abs=0.02)
        assert np.std(residuals) == pytest.approx(0.1, abs=0.02)

    def test_zero_n_rejected(self, rng):
        workload = SyntheticWorkload()
        with pytest.raises(SimulationError):
            workload.generate_trace(workload.uniform_policy(), 0, rng)

    def test_validation(self):
        with pytest.raises(SimulationError):
            SyntheticWorkload(n_features=0)
        with pytest.raises(SimulationError):
            SyntheticWorkload(interaction_scale=-1.0)


class TestEstimatorIntegration:
    def test_dr_accurate_on_workload(self, rng):
        workload = SyntheticWorkload()
        old = workload.logging_policy(epsilon=0.5)
        new = workload.optimal_policy()
        trace = workload.generate_trace(old, 2000, rng)
        truth = workload.ground_truth_value(new, trace)
        dr = core.DoublyRobust(
            core.TabularMeanModel(key_features=("f0",))
        ).estimate(new, trace, old_policy=old)
        assert core.relative_error(truth, dr.value) < 0.05
