"""Round-trip tests for the :mod:`repro.api` facade.

The facade's contract is that it adds nothing numerically: building an
estimator through the registry and calling :func:`repro.api.evaluate`
must be bit-identical to constructing the class and calling
``estimate()`` directly.  These tests pin that contract, the registry's
error paths, and the deprecation shims the facade supersedes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import api, core
from repro.api.registry import Registry, default_registry
from repro.core.reporting import evaluate_policy
from repro.errors import EstimatorError

from tests.conftest import make_uniform_trace


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision]


@pytest.fixture
def trace(abc_space, rng):
    return make_uniform_trace(abc_space, _truth, rng, n=300, noise=0.2)


@pytest.fixture
def new_policy(abc_space):
    return core.DeterministicPolicy(abc_space, lambda c: "c")


class TestFacadeBitIdentity:
    """facade == direct call, bit for bit."""

    CASES = {
        "dm": lambda: core.DirectMethod(core.TabularMeanModel()),
        "snips": lambda: core.SelfNormalizedIPS(),
        "dr": lambda: core.DoublyRobust(core.TabularMeanModel()),
        "matching": lambda: core.MatchingEstimator(),
        "clipped-ips": lambda: core.ClippedIPS(),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_logged_propensities(self, name, trace, new_policy):
        direct = self.CASES[name]().estimate(new_policy, trace)
        report = api.evaluate(trace, new_policy, estimator=name)
        assert report.value == direct.value
        assert report.result.std_error == direct.std_error or (
            np.isnan(report.result.std_error) and np.isnan(direct.std_error)
        )
        np.testing.assert_array_equal(
            report.result.contributions, direct.contributions
        )

    @pytest.mark.parametrize("name", ["dr", "snips"])
    def test_policy_propensities(self, name, trace, new_policy, abc_space):
        old = core.UniformRandomPolicy(abc_space)
        direct = self.CASES[name]().estimate(new_policy, trace, old_policy=old)
        report = api.evaluate(trace, new_policy, estimator=name, propensities=old)
        assert report.value == direct.value

    def test_clip_forwarded(self, trace, new_policy):
        direct = core.ClippedIPS(clip=2.0).estimate(new_policy, trace)
        report = api.evaluate(trace, new_policy, estimator="clipped-ips", clip=2.0)
        assert report.value == direct.value

    def test_shared_model_instance(self, trace, new_policy):
        model = core.OracleRewardModel(_truth)
        direct = core.DirectMethod(model).estimate(new_policy, trace)
        report = api.evaluate(trace, new_policy, estimator="dm", model=model)
        assert report.value == direct.value
        assert report.value == pytest.approx(3.0, abs=1e-9)

    def test_bootstrap_round_trip(self, trace, new_policy):
        estimator = core.DoublyRobust(core.TabularMeanModel())
        direct = core.bootstrap_ci(
            estimator, new_policy, trace, replicates=40, rng=0
        )
        report = api.evaluate(
            trace, new_policy, estimator="dr", bootstrap_replicates=40, rng=0
        )
        assert report.bootstrap is not None
        assert report.bootstrap.lower == direct.lower
        assert report.bootstrap.upper == direct.upper

    def test_estimator_instance_passthrough(self, trace, new_policy):
        instance = core.ClippedIPS(clip=3.0)
        direct = instance.estimate(new_policy, trace)
        report = api.evaluate(trace, new_policy, estimator=instance)
        assert report.value == direct.value
        assert report.recommended == instance.name


class TestCompare:
    def test_matches_deprecated_evaluate_policy(self, trace, new_policy):
        with pytest.warns(DeprecationWarning, match="repro.api.compare"):
            old_report = evaluate_policy(
                new_policy, trace, bootstrap_replicates=40, rng=0
            )
        new_report = api.compare(
            trace, new_policy, bootstrap_replicates=40, rng=0
        )
        assert set(new_report.estimates) == set(old_report.estimates)
        for name in new_report.estimates:
            assert new_report.estimates[name].value == old_report.estimates[name].value
        assert new_report.recommended == old_report.recommended
        assert new_report.bootstrap.lower == old_report.bootstrap.lower
        assert new_report.render() == old_report.render()

    def test_extra_estimators_and_instances(self, trace, new_policy):
        report = api.compare(
            trace,
            new_policy,
            estimators=["dm", core.ClippedIPS(clip=4.0)],
            extra_estimators={"ips": core.IPS()},
        )
        assert set(report.estimates) == {"dm", "clipped-ips", "ips"}
        assert report.recommended == "dm"

    def test_partial_failure_reported_not_raised(self, abc_space, new_policy, rng):
        # A trace the new policy never overlaps: SNIPS fails, DM survives.
        old = core.DeterministicPolicy(abc_space, lambda c: "a")
        records = []
        for _ in range(50):
            context = core.ClientContext(x=1.0, isp="isp-0")
            records.append(
                core.TraceRecord(
                    context=context,
                    decision="a",
                    reward=1.0,
                    propensity=1.0,
                )
            )
        degenerate = core.Trace(records)
        report = api.compare(degenerate, new_policy, estimators=["dm", "snips"])
        assert "snips" in report.failed
        assert report.recommended == "dm"

    def test_all_failed_raises(self, abc_space, new_policy):
        records = [
            core.TraceRecord(
                context=core.ClientContext(x=1.0, isp="isp-0"),
                decision="a",
                reward=1.0,
                propensity=1.0,
            )
            for _ in range(20)
        ]
        degenerate = core.Trace(records)
        with pytest.raises(EstimatorError):
            api.compare(degenerate, new_policy, estimators=["snips"])

    def test_diagnostics_off_skips_overlap(self, trace, new_policy):
        report = api.compare(trace, new_policy, diagnostics=False)
        assert report.overlap is None
        assert "recommended" in report.render()


class TestRegistry:
    def test_unknown_name_lists_known(self):
        with pytest.raises(EstimatorError, match="dr.*snips|snips.*dr"):
            default_registry.estimator_spec("drr")

    def test_model_rejected_for_model_free_estimator(self):
        with pytest.raises(EstimatorError, match="does not take a reward model"):
            default_registry.build_estimator("ips", model=core.TabularMeanModel())

    def test_clip_rejected_when_unsupported(self):
        with pytest.raises(EstimatorError, match="does not support clip="):
            default_registry.build_estimator("dm", clip=5.0)

    def test_duplicate_registration_needs_replace(self):
        registry = Registry()
        registry.register_estimator("ips", core.IPS)
        with pytest.raises(EstimatorError, match="replace=True"):
            registry.register_estimator("ips", core.IPS)
        registry.register_estimator("ips", core.SelfNormalizedIPS, replace=True)
        assert isinstance(registry.build_estimator("ips"), core.SelfNormalizedIPS)

    def test_build_model_forwards_options(self):
        model = default_registry.build_model("knn", k=7)
        assert isinstance(model, core.KNNRewardModel)
        with pytest.raises(EstimatorError, match="registered models"):
            default_registry.build_model("nope")

    def test_default_names(self):
        assert default_registry.estimator_names() == (
            "clipped-ips",
            "dm",
            "dr",
            "ips",
            "matching",
            "replay-dr",
            "sndr",
            "snips",
            "switch-dr",
        )
        assert "tabular" in default_registry.model_names()

    def test_instance_with_model_or_clip_rejected(self, trace, new_policy):
        with pytest.raises(EstimatorError, match="pre-built estimator"):
            api.evaluate(
                trace,
                new_policy,
                estimator=core.IPS(),
                clip=1.0,
            )

    def test_custom_registry_threaded_through(self, trace, new_policy):
        registry = Registry()
        registry.register_estimator("only", core.SelfNormalizedIPS)
        report = api.evaluate(trace, new_policy, estimator="only", registry=registry)
        assert report.recommended == "snips"
        with pytest.raises(EstimatorError):
            api.evaluate(trace, new_policy, estimator="dr", registry=registry)


class TestDeprecatedAliases:
    def test_clipped_ips_max_weight_alias(self, trace, new_policy):
        with pytest.warns(DeprecationWarning, match="clip="):
            aliased = core.ClippedIPS(max_weight=2.0)
        assert aliased.clip == 2.0
        canonical = core.ClippedIPS(clip=2.0)
        assert (
            aliased.estimate(new_policy, trace).value
            == canonical.estimate(new_policy, trace).value
        )
        with pytest.warns(DeprecationWarning):
            assert aliased.max_weight == 2.0

    def test_switch_dr_tau_alias(self):
        with pytest.warns(DeprecationWarning, match="clip="):
            aliased = core.SwitchDR(core.TabularMeanModel(), tau=4.0)
        assert aliased.clip == 4.0
        with pytest.warns(DeprecationWarning):
            assert aliased.tau == 4.0

    def test_dr_max_weight_alias(self):
        with pytest.warns(DeprecationWarning, match="clip="):
            aliased = core.DoublyRobust(core.TabularMeanModel(), max_weight=4.0)
        assert aliased.clip == 4.0

    def test_both_spellings_rejected(self):
        with pytest.raises(EstimatorError, match="deprecated alias"):
            core.ClippedIPS(clip=2.0, max_weight=3.0)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(EstimatorError, match="unexpected keyword"):
            core.ClippedIPS(threshold=2.0)


class TestReExports:
    def test_top_level_functions_are_the_facade(self):
        assert repro.evaluate is api.evaluate
        assert repro.compare is api.compare
        assert repro.api is api
