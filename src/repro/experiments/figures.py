"""Drivers for the paper's illustrative figures (Figs 1-5).

These are mechanism demonstrations rather than estimator comparisons:
each reproduces the *phenomenon* its figure depicts, quantified so a
benchmark can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro import abr
from repro.cbn.scenario import WiseScenario
from repro.cbn.wise import REWARD_VARIABLE, WiseRewardModel
from repro.cfa.scenario import CfaScenario
from repro.core.estimators import DirectMethod, DoublyRobust, MatchingEstimator
from repro.core.models import KNNRewardModel
from repro.core.metrics import relative_error
from repro.core.models import TabularMeanModel
from repro.core.selection import PolicyComparator
from repro.core.types import Trace
from repro.errors import EstimatorError
from pathlib import Path

from repro.experiments.harness import ExperimentResult, run_repeated
from repro.runtime import RetryPolicy
from repro.relay.scenario import RelayScenario
from repro.workloads.synthetic import SyntheticWorkload


# ---------------------------------------------------------------------------
# Fig 1 — the trace-driven decision workflow: does the evaluator pick the
# truly-best policy?
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkflowOutcome:
    """Outcome of one policy-selection workflow run."""

    selected: str
    truly_best: str
    regret: float
    true_values: Dict[str, float]


def run_fig1_workflow(
    seed: int = 0,
    n_trace: int = 3000,
    workload: SyntheticWorkload | None = None,
) -> WorkflowOutcome:
    """Fig 1: rank candidate policies offline and measure selection regret.

    Candidates are the synthetic workload's per-decision fixed policies
    plus the truth-greedy policy; the evaluator is DR with a tabular
    model on a trace logged by an epsilon-greedy production policy.
    """
    workload = workload or SyntheticWorkload()
    rng = np.random.default_rng(seed)
    old = workload.logging_policy(epsilon=0.3)
    trace = workload.generate_trace(old, n_trace, rng)

    candidates = {
        f"always-{d}": workload.fixed_policy(i)
        for i, d in enumerate(workload.space().decisions)
    }
    candidates["oracle-greedy"] = workload.optimal_policy()
    true_values = {
        name: workload.ground_truth_value(policy, trace)
        for name, policy in candidates.items()
    }

    comparator = PolicyComparator(
        DoublyRobust(TabularMeanModel(key_features=("f0",))),
        trace,
        old_policy=old,
    )
    comparison = comparator.compare(candidates)
    truly_best = max(true_values, key=true_values.get)
    regret = true_values[truly_best] - true_values[comparison.best.name]
    return WorkflowOutcome(
        selected=comparison.best.name,
        truly_best=truly_best,
        regret=float(regret),
        true_values=true_values,
    )


# ---------------------------------------------------------------------------
# Fig 2 — the ABR throughput-independence bias, session level.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AbrBiasOutcome:
    """Session-replay estimate vs ground truth for a new ABR policy."""

    replay_estimate: float
    true_qoe: float
    replay_relative_error: float
    low_bitrate_fraction_logged: float


def run_fig2_abr_bias(
    seed: int = 0,
    bandwidth_mbps: float = 3.0,
    chunk_count: int = 60,
) -> AbrBiasOutcome:
    """Fig 2: replaying a higher-bitrate policy over a low-bitrate trace
    underestimates achievable throughput and thus QoE.

    The logging controller is conservative (low buffer thresholds keep it
    at low bitrates), so its observed throughput sits far below the
    available bandwidth; replaying MPC over that trace mispredicts.
    Ground truth runs MPC in the real simulator on the same channel.
    """
    manifest = abr.VideoManifest(chunk_count=chunk_count)
    efficiency = abr.BitrateEfficiency(manifest.ladder, floor=0.2, exponent=0.8)
    rng = np.random.default_rng(seed)

    simulator = abr.SessionSimulator(
        manifest,
        abr.ConstantBandwidth(bandwidth_mbps),
        abr.ObservedThroughputModel(efficiency, noise_sigma=0.05),
        initial_buffer_seconds=4.0,
    )
    # A timid logging policy: stays at the low rungs (Fig 2's "old ABR
    # policy chooses a low bitrate").
    old = abr.ExploratoryABR(
        abr.RateBasedPolicy(manifest.ladder, safety=0.5), epsilon=0.1
    )
    logged = simulator.run(old, rng)
    low_fraction = float(
        np.mean(
            [
                chunk.bitrate_mbps <= manifest.ladder.bitrates_mbps[1]
                for chunk in logged.chunks
            ]
        )
    )

    new_controller = abr.MPCPolicy(manifest)
    replay = abr.SessionReplayEvaluator(manifest, initial_buffer_seconds=4.0)
    estimate = replay.estimate_session_qoe(new_controller, logged, rng)

    truth_runs = [
        simulator.run(new_controller, np.random.default_rng(seed * 1000 + i)).session_qoe
        for i in range(10)
    ]
    true_qoe = float(np.mean(truth_runs))
    return AbrBiasOutcome(
        replay_estimate=float(estimate),
        true_qoe=true_qoe,
        replay_relative_error=relative_error(true_qoe, estimate),
        low_bitrate_fraction_logged=low_fraction,
    )


# ---------------------------------------------------------------------------
# Fig 3 — NAT selection bias in relay evaluation.
# ---------------------------------------------------------------------------

def run_fig3_relay_bias(
    runs: int = 50,
    seed: int = 0,
    scenario: RelayScenario | None = None,
    retry: RetryPolicy | None = None,
    ledger_path: str | Path | None = None,
    resume: bool = False,
    workers: int = 1,
    telemetry_path: str | Path | None = None,
) -> ExperimentResult:
    """Fig 3: the VIA evaluator (per-AS-pair means, NAT ignored) vs DR.

    The logging policy relays mostly NAT-ed calls, so per-(pair, path)
    averages under-rate relay paths for public-IP clients; DR corrects
    with importance-weighted residuals.
    """
    scenario = scenario or RelayScenario()
    old = scenario.old_policy()
    new = scenario.new_policy()

    def run(rng: np.random.Generator) -> Dict[str, float]:
        trace = scenario.generate_trace(rng)
        truth = scenario.ground_truth_value(new, trace)
        via = DirectMethod(scenario.via_model()).estimate(new, trace)
        dr = DoublyRobust(scenario.via_model()).estimate(new, trace, old_policy=old)
        return {
            "via": relative_error(truth, via.value),
            "dr": relative_error(truth, dr.value),
        }

    return run_repeated(
        "fig3-relay-bias",
        run,
        runs=runs,
        seed=seed,
        baseline="via",
        treatment="dr",
        retry=retry,
        ledger_path=ledger_path,
        resume=resume,
        workers=workers,
        telemetry_path=telemetry_path,
    )


# ---------------------------------------------------------------------------
# Fig 4 — the learned CBN is structurally wrong on small traces.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CbnLearningOutcome:
    """Structure-recovery statistics over repeated runs."""

    runs: int
    backend_missing_fraction: float
    misprediction_ms_mean: float


def run_fig4_cbn_learning(
    runs: int = 20, seed: int = 0, scenario: WiseScenario | None = None
) -> CbnLearningOutcome:
    """Fig 4: how often the learned CBN misses the backend dependency,
    and by how much it mispredicts the (ISP-1, FE-1, BE-2) response time.

    Ground truth for that configuration is *short*; an incomplete CBN
    (reward depends on frontend only) predicts long.
    """
    scenario = scenario or WiseScenario()
    backend_missing = 0
    mispredictions: List[float] = []
    from repro.core.types import ClientContext

    probe_context = ClientContext(isp="isp-1")
    probe_decision = ("fe-1", "be-2")
    true_short = scenario.true_mean_response("isp-1", probe_decision)
    for index in range(runs):
        rng = np.random.default_rng(seed * 7919 + index)
        trace = scenario.generate_trace(rng)
        model = WiseRewardModel(decision_factors=("frontend", "backend"))
        model.fit(trace)
        if "backend" not in model.reward_parents():
            backend_missing += 1
        predicted = model.predict(probe_context, probe_decision)
        mispredictions.append(abs(predicted - true_short))
    return CbnLearningOutcome(
        runs=runs,
        backend_missing_fraction=backend_missing / runs,
        misprediction_ms_mean=float(np.mean(mispredictions)),
    )


# ---------------------------------------------------------------------------
# Fig 5 — matching coverage collapses as the decision space grows.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CoverageOutcome:
    """Match statistics for one decision-space size."""

    n_decisions: int
    match_fraction_mean: float
    matching_error_mean: float
    dr_error_mean: float
    no_match_runs: int


def run_fig5_matching_coverage(
    cdn_counts: Tuple[int, ...] = (2, 3, 5, 8),
    runs: int = 20,
    seed: int = 0,
    n_clients: int = 600,
) -> List[CoverageOutcome]:
    """Fig 5: sweep the decision-space size and watch exact matching thin
    out (match fraction ~ 1/|D| under random logging) while DR keeps
    using every record."""
    outcomes: List[CoverageOutcome] = []
    for cdn_count in cdn_counts:
        scenario = CfaScenario(n_clients=n_clients, n_cdns=cdn_count)
        quality = scenario.quality()
        old = scenario.old_policy()
        new = scenario.new_policy(quality)
        fractions: List[float] = []
        matching_errors: List[float] = []
        dr_errors: List[float] = []
        no_match = 0
        for index in range(runs):
            rng = np.random.default_rng(seed * 104729 + index)
            trace = scenario.generate_trace(rng, quality)
            truth = scenario.ground_truth_value(new, trace, quality)
            try:
                matched = MatchingEstimator().estimate(new, trace)
                fractions.append(matched.diagnostics["match_fraction"])
                matching_errors.append(relative_error(truth, matched.value))
            except EstimatorError:
                no_match += 1
            dr = DoublyRobust(KNNRewardModel(k=5)).estimate(
                new, trace, old_policy=old
            )
            dr_errors.append(relative_error(truth, dr.value))
        outcomes.append(
            CoverageOutcome(
                n_decisions=len(scenario.space()),
                match_fraction_mean=float(np.mean(fractions)) if fractions else 0.0,
                matching_error_mean=(
                    float(np.mean(matching_errors)) if matching_errors else float("nan")
                ),
                dr_error_mean=float(np.mean(dr_errors)),
                no_match_runs=no_match,
            )
        )
    return outcomes


def render_coverage_table(outcomes: List[CoverageOutcome]) -> str:
    """Text table for the Fig 5 sweep."""
    lines = [
        f"{'|D|':>5}  {'match frac':>10}  {'match err':>10}  {'dr err':>10}  {'no-match':>8}"
    ]
    for outcome in outcomes:
        lines.append(
            f"{outcome.n_decisions:5d}  {outcome.match_fraction_mean:10.3f}  "
            f"{outcome.matching_error_mean:10.4f}  {outcome.dr_error_mean:10.4f}  "
            f"{outcome.no_match_runs:8d}"
        )
    return "\n".join(lines)
