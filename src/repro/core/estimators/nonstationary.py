"""DR for non-stationary (history-dependent) policies — paper §4.2.

The paper extends the basic DR estimator to policies whose decisions
depend on the history of previous (client, decision, reward) triples,
using the rejection-sampling replay idea of Li et al.'s contextual-bandit
evaluation: maintain a *separate* history ``g`` containing only the
clients on which the new policy's sampled decision matched the logged
one.  Verbatim algorithm (§4.2):

    h_1 = ∅ (old policy history); g_1 = ∅ (new policy history); M = 0
    for k = 1..n:
      1. sample d' ~ mu_new(. | c_k, g_k)
      2. if d' == d_k:
           M += Σ_d mu_new(d|c_k, g_k) r̂(c_k, d)
                + mu_new(d_k|c_k, g_k) / mu_old(d_k|c_k, h_k) · (r_k − r̂(c_k, d_k))
           g_{k+1} = g_k ⊕ (c_k, d_k, r_k)
         else: g_{k+1} = g_k
      4. h_{k+1} = h_k ⊕ (c_k, d_k, r_k)
    return M / |g_{n+1}|

For stationary policies this reduces to basic DR restricted to a random
matched subset; the paper notes it "is identical to the basic DR under
the assumption of stationary policies" (in expectation), which our
property tests verify statistically.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.contracts import check_propensity, check_trace
from repro.core.estimators.base import EstimateResult
from repro.core.history import History, HistoryPolicy, StationaryAdapter
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.random import ensure_rng
from repro.core.types import Trace
from repro.errors import EstimatorError, PropensityError

OldPolicyLike = Union[Policy, HistoryPolicy, None]


class ReplayDoublyRobust:
    """Rejection-sampling DR for history-dependent policies.

    Parameters
    ----------
    model:
        Reward model r̂ for the DM half; fit on the trace if not fitted.
    rng:
        Seed or generator for the rejection-sampling draws (step 1).

    Notes
    -----
    Unlike the stationary estimators this class does not subclass
    :class:`OffPolicyEstimator` — its signature differs (the new policy is
    a :class:`HistoryPolicy`, and the old policy may be one too).
    """

    #: Anticipated contract failures, mirroring
    #: :attr:`repro.core.estimators.base.OffPolicyEstimator.failure_modes`
    #: even though this estimator sits outside that hierarchy.
    failure_modes = (
        "missing-propensities",
        "propensity-violation",
        "no-matched-records",
    )

    def __init__(self, model: RewardModel, rng=None):
        self._model = model
        self._rng = ensure_rng(rng)

    @property
    def name(self) -> str:
        """Estimator name used in reports."""
        return "replay-dr"

    def estimate(
        self,
        new_policy: Union[HistoryPolicy, Policy],
        trace: Trace,
        old_policy: OldPolicyLike = None,
    ) -> EstimateResult:
        """Run the §4.2 algorithm over *trace*.

        *old_policy* may be stationary, history-dependent, or ``None``
        (in which case logged per-record propensities are required).
        """
        if len(trace) == 0:
            raise EstimatorError("cannot estimate from an empty trace")
        check_trace(trace, where=f"{self.name} input trace")
        if isinstance(new_policy, Policy):
            new_policy = StationaryAdapter(new_policy)
        if isinstance(old_policy, Policy):
            old_policy = StationaryAdapter(old_policy)
        if not self._model.fitted:
            self._model.fit(trace)

        old_history = History()
        new_history = History()
        matched_terms: list[float] = []
        for index, record in enumerate(trace):
            # Step 1: sample the new policy's decision under its own history.
            new_distribution = new_policy.probabilities(record.context, new_history)
            sampled = _sample_from(new_distribution, self._rng)
            if sampled == record.decision:
                # Step 2: DR update on this matched client.
                old_propensity = self._old_propensity(
                    old_policy, record, index, old_history
                )
                new_propensity = new_distribution.get(record.decision, 0.0)
                # noqa rationale: replay is history-dependent — each
                # record's distribution depends on the decisions sampled
                # for earlier records, so the predictions cannot be
                # batched ahead of the sequential pass.
                dm_term = sum(
                    probability
                    * self._model.predict(record.context, decision)  # noqa: REP007
                    for decision, probability in new_distribution.items()
                    if probability > 0.0
                )
                residual = record.reward - self._model.predict(  # noqa: REP007
                    record.context, record.decision
                )
                matched_terms.append(
                    dm_term + (new_propensity / old_propensity) * residual
                )
                new_history.append(record.context, record.decision, record.reward)
            # Step 4: the old policy saw every record.
            old_history.append(record.context, record.decision, record.reward)

        if not matched_terms:
            raise EstimatorError(
                "replay estimator matched no trace records; the new policy "
                "never sampled the logged decision (no overlap)"
            )
        contributions = np.asarray(matched_terms, dtype=float)
        value = float(contributions.mean())
        std_error = (
            float(contributions.std(ddof=1) / np.sqrt(contributions.size))
            if contributions.size > 1
            else float("nan")
        )
        return EstimateResult(
            value=value,
            method=self.name,
            n=len(trace),
            contributions=contributions,
            std_error=std_error,
            diagnostics={
                "match_count": int(contributions.size),
                "match_fraction": contributions.size / len(trace),
            },
        )

    def _old_propensity(
        self,
        old_policy: Optional[HistoryPolicy],
        record,
        index: int,
        old_history: History,
    ) -> float:
        if old_policy is not None:
            value = old_policy.propensity(record.decision, record.context, old_history)
        elif record.propensity is not None:
            value = record.propensity
        else:
            raise PropensityError(
                f"trace record {index} has no logged propensity and no old "
                "policy was given"
            )
        return check_propensity(
            value, where=f"old-policy propensity at record {index}"
        )


def _sample_from(distribution, rng: np.random.Generator):
    """Sample a decision from a dict distribution."""
    decisions = list(distribution.keys())
    probabilities = np.asarray([distribution[d] for d in decisions], dtype=float)
    probabilities = np.clip(probabilities, 0.0, None)
    probabilities /= probabilities.sum()
    index = rng.choice(len(decisions), p=probabilities)
    return decisions[int(index)]
