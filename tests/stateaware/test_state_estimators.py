"""Tests for state-matched and transition-adjusted DR, and the coupled
load simulator."""

import numpy as np
import pytest

from repro import core
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import EstimatorError
from repro.stateaware.coupling import CoupledLoadSimulator
from repro.stateaware.estimators import StateMatchedDR, TransitionAdjustedDR
from repro.errors import SimulationError


def _state_trace(rng, n=600, peak_fraction=0.25, degradation=0.8):
    """Rewards: decision effect x state factor; uniform logging."""
    space = core.DecisionSpace(["a", "b"])
    old = core.UniformRandomPolicy(space)
    base = {"a": 2.0, "b": 4.0}
    records = []
    for _ in range(n):
        context = ClientContext(g=f"g{rng.integers(0, 2)}")
        state = "peak" if rng.uniform() < peak_fraction else "morning"
        factor = degradation if state == "peak" else 1.0
        decision = old.sample(context, rng)
        reward = factor * base[decision] + rng.normal(0, 0.1)
        records.append(
            TraceRecord(
                context,
                decision,
                float(reward),
                propensity=0.5,
                state=state,
            )
        )
    return Trace(records), space


class TestStateMatchedDR:
    def test_estimates_target_state_value(self, rng):
        trace, space = _state_trace(rng)
        new = core.DeterministicPolicy(space, lambda c: "b")
        result = StateMatchedDR(
            lambda: core.TabularMeanModel(key_features=("g",)),
            target_state="peak",
        ).estimate(new, trace)
        assert result.value == pytest.approx(0.8 * 4.0, abs=0.15)
        assert result.method == "state-matched-dr"
        assert result.diagnostics["matched_fraction"] == pytest.approx(0.25, abs=0.06)

    def test_too_few_matching_records_raises(self, rng):
        trace, space = _state_trace(rng, n=40, peak_fraction=0.02)
        new = core.DeterministicPolicy(space, lambda c: "b")
        estimator = StateMatchedDR(
            lambda: core.TabularMeanModel(key_features=("g",)),
            target_state="peak",
            min_records=10,
        )
        with pytest.raises(EstimatorError):
            estimator.estimate(new, trace)

    def test_min_records_validation(self):
        with pytest.raises(EstimatorError):
            StateMatchedDR(lambda: core.TabularMeanModel(), "peak", min_records=0)


class TestTransitionAdjustedDR:
    def test_corrects_toward_target_state(self, rng):
        trace, space = _state_trace(rng)
        new = core.DeterministicPolicy(space, lambda c: "b")
        adjusted = TransitionAdjustedDR(
            lambda: core.TabularMeanModel(key_features=("g",)),
            target_state="peak",
        ).estimate(new, trace)
        naive = core.DoublyRobust(
            core.TabularMeanModel(key_features=("g",))
        ).estimate(new, trace)
        truth = 0.8 * 4.0
        assert abs(adjusted.value - truth) < abs(naive.value - truth)
        assert "transition_ratios" in adjusted.diagnostics

    def test_uses_all_records(self, rng):
        trace, space = _state_trace(rng)
        new = core.DeterministicPolicy(space, lambda c: "b")
        result = TransitionAdjustedDR(
            lambda: core.TabularMeanModel(key_features=("g",)), "peak"
        ).estimate(new, trace)
        assert result.n == len(trace)


class TestCoupledLoadSimulator:
    def _contexts(self, n=300):
        return [ClientContext(region="r0") for _ in range(n)]

    def test_trace_and_series_lengths(self, rng):
        simulator = CoupledLoadSimulator({"s1": 50.0, "s2": 50.0})
        policy = core.UniformRandomPolicy(simulator.space())
        trace, series = simulator.run(policy, self._contexts(), rng)
        assert len(trace) == 300
        assert len(series) == 300

    def test_concentration_degrades_rewards(self, rng):
        """Self-induced load: concentrating on one server yields lower
        rewards than spreading — the §4.1 coupling."""
        simulator = CoupledLoadSimulator({"s1": 60.0, "s2": 60.0}, session_length=60)
        space = simulator.space()
        spread = core.UniformRandomPolicy(space)
        concentrate = core.EpsilonGreedyPolicy(
            core.DeterministicPolicy(space, lambda c: "s1"), epsilon=0.1
        )
        trace_spread, _ = simulator.run(spread, self._contexts(400), rng)
        trace_conc, _ = simulator.run(concentrate, self._contexts(400), rng)
        assert trace_conc.mean_reward() < trace_spread.mean_reward()

    def test_load_series_ramps_up(self, rng):
        simulator = CoupledLoadSimulator({"s1": 100.0}, session_length=50)
        policy = core.UniformRandomPolicy(simulator.space())
        _, series = simulator.run(policy, self._contexts(200), rng)
        assert np.mean(series[:10]) < np.mean(series[100:])

    def test_rewards_positive(self, rng):
        simulator = CoupledLoadSimulator({"s1": 30.0})
        policy = core.UniformRandomPolicy(simulator.space())
        trace, _ = simulator.run(policy, self._contexts(100), rng)
        assert np.all(trace.rewards() > 0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CoupledLoadSimulator({})
        with pytest.raises(SimulationError):
            CoupledLoadSimulator({"s1": 10.0}, session_length=0)
