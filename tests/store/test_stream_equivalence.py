"""The pinned guarantee: streaming estimation is bit-identical to dense.

Every estimator with streaming hooks is run three ways — on the dense
in-memory trace, on the sharded reader with its default chunking, and on
pathological re-chunkings (one record per chunk, a prime stride) — and
the results must agree *bit for bit*: value, standard error, per-record
contributions, diagnostics.  Not "close"; identical.  The engine earns
this by gathering per-record columns and reducing once (see
``repro/store/streaming.py``), and this suite is what keeps that
property from regressing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.contracts import check_trace
from repro.core.estimators import (
    IPS,
    ClippedIPS,
    DirectMethod,
    DoublyRobust,
    MatchingEstimator,
    OffPolicyEstimator,
    SelfNormalizedDR,
    SelfNormalizedIPS,
    SwitchDR,
)
from repro.core.models.tabular import TabularMeanModel
from repro.core.propensity import EmpiricalPropensityModel
from repro.errors import EstimatorError, TraceError
from repro.runtime.fallback import EstimatorFallbackChain
from repro.store import ShardedTrace, shard_filename
from repro.workloads.synthetic import SyntheticWorkload

from tests.store.conftest import build_trace

RECORDS = 300
SHARD_SIZE = 90

ESTIMATOR_FACTORIES = {
    "ips": lambda: IPS(),
    "clipped-ips": lambda: ClippedIPS(clip=5.0),
    "snips": lambda: SelfNormalizedIPS(),
    "matching": lambda: MatchingEstimator(),
    "dm": lambda: DirectMethod(TabularMeanModel()),
    "dr": lambda: DoublyRobust(TabularMeanModel()),
    "sndr": lambda: SelfNormalizedDR(TabularMeanModel()),
    "switch-dr": lambda: SwitchDR(TabularMeanModel(), clip=5.0),
}

CHUNKINGS = (1, 7, RECORDS)


@pytest.fixture(scope="module")
def workload():
    return SyntheticWorkload()


@pytest.fixture(scope="module")
def old_policy(workload):
    return workload.logging_policy(epsilon=0.3)


@pytest.fixture(scope="module")
def new_policy(workload):
    return workload.logging_policy(epsilon=0.1, base_index=1)


@pytest.fixture(scope="module")
def dense(workload, old_policy):
    trace = workload.generate_trace(
        old_policy, RECORDS, np.random.default_rng(7)
    )
    trace.columns()
    return trace


@pytest.fixture(scope="module")
def shard_dir(dense, tmp_path_factory):
    directory = tmp_path_factory.mktemp("equivalence") / "shards"
    dense.to_shards(directory, shard_size=SHARD_SIZE)
    return directory


@pytest.fixture
def sharded(shard_dir):
    return ShardedTrace(shard_dir)


def assert_same_result(dense_result, stream_result):
    """Bitwise equality of every field of two EstimateResults."""
    assert dense_result.method == stream_result.method
    assert dense_result.n == stream_result.n
    assert dense_result.value == stream_result.value
    assert (
        dense_result.std_error == stream_result.std_error
        or (
            np.isnan(dense_result.std_error)
            and np.isnan(stream_result.std_error)
        )
    )
    np.testing.assert_array_equal(
        np.asarray(dense_result.contributions),
        np.asarray(stream_result.contributions),
    )
    assert dense_result.diagnostics == stream_result.diagnostics


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(ESTIMATOR_FACTORIES))
    @pytest.mark.parametrize("chunk_records", CHUNKINGS)
    def test_every_estimator_every_chunking(
        self, name, chunk_records, dense, sharded, new_policy
    ):
        factory = ESTIMATOR_FACTORIES[name]
        expected = factory().estimate(new_policy, dense)
        streamed = factory().estimate(
            new_policy, sharded.rechunked(chunk_records)
        )
        assert_same_result(expected, streamed)

    @pytest.mark.parametrize("name", ["ips", "dr"])
    def test_old_policy_source(self, name, dense, sharded, new_policy, old_policy):
        factory = ESTIMATOR_FACTORIES[name]
        expected = factory().estimate(new_policy, dense, old_policy=old_policy)
        streamed = factory().estimate(
            new_policy, sharded.rechunked(7), old_policy=old_policy
        )
        assert_same_result(expected, streamed)

    @pytest.mark.parametrize("name", ["ips", "dr"])
    def test_floored_source(self, name, dense, sharded, new_policy):
        factory = ESTIMATOR_FACTORIES[name]
        expected = factory().estimate(new_policy, dense, propensity_floor=0.5)
        streamed = factory().estimate(
            new_policy, sharded.rechunked(7), propensity_floor=0.5
        )
        assert_same_result(expected, streamed)

    @pytest.mark.parametrize("name", ["ips", "dr"])
    def test_estimated_model_source(
        self, name, workload, dense, sharded, new_policy
    ):
        # The estimated source scores per record, so chunks materialise
        # their record objects — the slow-but-correct streaming path.
        model = EmpiricalPropensityModel(workload.space()).fit(dense)
        factory = ESTIMATOR_FACTORIES[name]
        expected = factory().estimate(new_policy, dense, propensity_model=model)
        streamed = factory().estimate(
            new_policy, sharded.rechunked(50), propensity_model=model
        )
        assert_same_result(expected, streamed)

    def test_view_matches_dense_take(self, dense, sharded, new_policy):
        expected = IPS().estimate(new_policy, dense[100:250])
        streamed = IPS().estimate(new_policy, sharded[100:250])
        assert_same_result(expected, streamed)

    @settings(
        deadline=None,
        max_examples=15,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(chunk_records=st.integers(min_value=1, max_value=RECORDS + 5))
    def test_any_chunking_is_equivalent(
        self, chunk_records, dense, sharded, new_policy
    ):
        # The reader is pure (rechunked() returns a fresh view), so the
        # unreset function-scoped fixture is safe across examples.
        expected = SelfNormalizedIPS().estimate(new_policy, dense)
        streamed = SelfNormalizedIPS().estimate(
            new_policy, sharded.rechunked(chunk_records)
        )
        assert_same_result(expected, streamed)


class TestObservability:
    def test_capture_does_not_change_results(self, dense, sharded, new_policy):
        bare = DoublyRobust(TabularMeanModel()).estimate(new_policy, sharded)
        with obs.capture():
            captured = DoublyRobust(TabularMeanModel()).estimate(
                new_policy, sharded
            )
        assert_same_result(bare, captured)
        assert_same_result(
            DoublyRobust(TabularMeanModel()).estimate(new_policy, dense),
            captured,
        )

    def test_stream_metrics_published(self, sharded, new_policy):
        # shards of 90/90/90/30 with a bound of 50 chunk as
        # 50+40 per full shard plus one 30 → 7 chunks.
        with obs.capture() as recorder:
            IPS().estimate(new_policy, sharded.rechunked(50))
        snapshot = recorder.metrics.snapshot()
        assert snapshot["counters"]["ope.stream.chunks"] == 7
        assert snapshot["histograms"]["store.chunk.records"]["count"] == 7
        assert snapshot["histograms"]["store.chunk.records"]["max"] == 50.0
        paths = [record.path for record in recorder.spans]
        assert any("ope.stream" in path for path in paths)


def _corrupt(shard_dir, shard_index, column, position, value, destination):
    """Copy a shard directory, overwriting one array cell in one shard.

    Semantic corruption with valid bytes: the manifest is re-stamped
    with the rewritten shard's checksum, so the record-level contracts
    (not the integrity layer) are what must catch the bad value.
    """
    import shutil

    from repro.testing.faults import restamp_shard

    shutil.copytree(shard_dir, destination)
    path = destination / shard_filename(shard_index)
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    arrays[column] = arrays[column].copy()
    arrays[column][position] = value
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)
    restamp_shard(destination, shard_index)
    return ShardedTrace(destination)


class TestFaultInjection:
    def test_nan_reward_raises_with_absolute_index(
        self, shard_dir, tmp_path, new_policy
    ):
        # shard 1, local record 2 → absolute record 92.
        corrupted = _corrupt(shard_dir, 1, "rewards", 2, np.nan, tmp_path / "c")
        with pytest.raises(TraceError, match="record 92 has non-finite reward"):
            IPS().estimate(new_policy, corrupted)

    def test_bad_propensity_raises(self, shard_dir, tmp_path, new_policy):
        corrupted = _corrupt(
            shard_dir, 0, "propensities", 5, 1.5, tmp_path / "c"
        )
        with pytest.raises(TraceError, match=r"record 5 .* outside \(0, 1\]"):
            IPS().estimate(new_policy, corrupted)

    def test_quarantine_splits_corrupt_shard_records(self, shard_dir, tmp_path):
        corrupted = _corrupt(shard_dir, 1, "rewards", 2, np.nan, tmp_path / "c")
        report = check_trace(corrupted, quarantine=True)
        assert len(report.clean) == RECORDS - 1
        assert report.reason_counts == {"non-finite-reward": 1}
        (bad,) = report.quarantined
        assert bad.index == 92
        assert bad.reason == "non-finite-reward"

    def test_fallback_chain_degrades_to_dm_without_propensities(
        self, tmp_path, new_policy
    ):
        # nan propensity is the format's "missing" encoding, so the
        # chain's DR head fails propensity resolution and the DM tail
        # answers — same degradation story as the dense runtime.
        bare = build_trace(n=60, with_propensities=False)
        sharded = bare.to_shards(tmp_path / "s", shard_size=25)
        chain = EstimatorFallbackChain(
            [DoublyRobust(TabularMeanModel()), DirectMethod(TabularMeanModel())]
        )
        result = chain.estimate(new_policy, sharded)
        fallback = result.diagnostics["fallback"]
        assert fallback["answered_by"] == "dm"
        assert fallback["chain"] == ["dr", "dm"]
        (hop,) = fallback["hops"]
        assert hop["link"] == "dr"
        assert hop["error_type"] == "PropensityError"
        # Apart from the fallback annotation, the answer IS the DM answer
        # on the materialised trace — bit for bit.
        expected = DirectMethod(TabularMeanModel()).estimate(new_policy, bare)
        assert result.value == expected.value
        assert result.std_error == expected.std_error
        np.testing.assert_array_equal(
            np.asarray(result.contributions), np.asarray(expected.contributions)
        )


class TestDenseOnlyEstimators:
    def test_estimator_without_hooks_refuses_streaming(
        self, sharded, new_policy
    ):
        class DenseOnly(OffPolicyEstimator):
            requires_propensities = False

            @property
            def name(self):
                return "dense-only"

            def _estimate(self, new_policy, trace, propensities):
                raise AssertionError("the streaming path must refuse first")

        with pytest.raises(EstimatorError, match="does not support streaming"):
            DenseOnly().estimate(new_policy, sharded)
