"""State-transition modelling between network regimes.

Paper §4.3 ("Modeling world state"): *"if we know that the peak-hour
performance is on average 20% worse than morning-hour performance, we
could create a new trace by degrading the performance in the trace by
20% ... and use the DR estimator on the new trace"*, and the conjecture
that the transition function can be *estimated* from a few samples of
each state.

:class:`StateTransitionModel` estimates multiplicative per-state reward
ratios from labelled samples and rewrites traces from one state into
another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from repro.core.types import Trace
from repro.errors import EstimatorError, SimulationError


@dataclass(frozen=True)
class TransitionEstimate:
    """Estimated reward ratio between two states."""

    source_state: Hashable
    target_state: Hashable
    ratio: float
    source_samples: int
    target_samples: int


class StateTransitionModel:
    """Multiplicative reward transition between system states.

    Fit from a trace whose records carry ``state`` labels; the ratio of
    per-state mean rewards defines the transition function.  This is the
    paper's "degrade the performance in the trace by 20%" knob, estimated
    from data rather than assumed.
    """

    def __init__(self) -> None:
        self._state_means: Dict[Hashable, float] = {}
        self._state_counts: Dict[Hashable, int] = {}
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """``True`` once :meth:`fit` has run."""
        return self._fitted

    @property
    def states(self) -> tuple:
        """States observed at fit time."""
        if not self._fitted:
            raise EstimatorError("transition model must be fit first")
        return tuple(self._state_means)

    def fit(self, trace: Trace) -> "StateTransitionModel":
        """Estimate per-state mean rewards from a state-labelled trace."""
        sums: Dict[Hashable, float] = {}
        counts: Dict[Hashable, int] = {}
        for record in trace:
            if record.state is None:
                raise EstimatorError(
                    "transition model needs state labels on every record; "
                    "label the trace first (e.g. via change-point detection)"
                )
            sums[record.state] = sums.get(record.state, 0.0) + record.reward
            counts[record.state] = counts.get(record.state, 0) + 1
        if len(sums) < 2:
            raise EstimatorError(
                f"need at least two distinct states to fit transitions, got {list(sums)}"
            )
        self._state_means = {state: sums[state] / counts[state] for state in sums}
        self._state_counts = counts
        self._fitted = True
        return self

    def mean_reward(self, state: Hashable) -> float:
        """Mean reward observed in *state* at fit time."""
        if not self._fitted:
            raise EstimatorError("transition model must be fit first")
        try:
            return self._state_means[state]
        except KeyError:
            raise EstimatorError(f"state {state!r} not seen at fit time") from None

    def transition(self, source: Hashable, target: Hashable) -> TransitionEstimate:
        """The estimated reward ratio from *source* to *target* state."""
        source_mean = self.mean_reward(source)
        target_mean = self.mean_reward(target)
        if source_mean == 0:
            raise EstimatorError(
                f"mean reward in state {source!r} is zero; ratio undefined"
            )
        return TransitionEstimate(
            source_state=source,
            target_state=target,
            ratio=target_mean / source_mean,
            source_samples=self._state_counts[source],
            target_samples=self._state_counts[target],
        )

    def translate_trace(self, trace: Trace, target: Hashable) -> Trace:
        """Rewrite every record's reward into the *target* state.

        Each record's reward is scaled by the ratio between the target
        state's mean and its own state's mean, and relabelled; the result
        is the "new trace" of §4.3 on which a standard estimator can run.
        """
        translated = []
        for record in trace:
            if record.state is None:
                raise EstimatorError("cannot translate a record without a state label")
            estimate = self.transition(record.state, target)
            translated.append(
                record.with_reward(record.reward * estimate.ratio).with_state(target)
            )
        return Trace(translated)


def label_trace_by_hour(
    trace: Trace,
    peak_hours: tuple[float, float] = (17.0, 23.0),
) -> Trace:
    """Label records ``"peak"`` / ``"off-peak"`` from a ``timestamp``
    carrying the hour of day."""
    start, stop = peak_hours
    if not 0.0 <= start < stop <= 24.0:
        raise SimulationError(f"peak_hours must satisfy 0 <= start < stop <= 24")
    labelled = []
    for record in trace:
        if record.timestamp is None:
            raise EstimatorError("record has no timestamp to derive an hour from")
        hour = record.timestamp % 24.0
        labelled.append(
            record.with_state("peak" if start <= hour < stop else "off-peak")
        )
    return Trace(labelled)


def label_trace_by_segmentation(trace: Trace, labels: np.ndarray) -> Trace:
    """Attach per-record segment labels (e.g. from
    :func:`repro.stateaware.changepoint.pelt` over a proxy metric)."""
    if len(labels) != len(trace):
        raise EstimatorError(
            f"{len(labels)} labels for a trace of {len(trace)} records"
        )
    return Trace(
        record.with_state(f"segment-{int(label)}")
        for record, label in zip(trace, labels)
    )
