"""StreamBatch / CodedSequence / GridPolicy: the columnar fast paths.

The load-bearing property throughout: the coded fast paths and the
object-level slow paths must return the **same float64 objects bit for
bit** — both read the same stored matrix entries; only the addressing
differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PolicyError, SimulationError
from repro.live import CodedSequence, GridPolicy, StreamBatch, grid_cells
from repro.workloads.drift import LiveTrafficGenerator


@pytest.fixture(scope="module")
def generator():
    return LiveTrafficGenerator(seed=13, chunk_records=256)


@pytest.fixture(scope="module")
def batch(generator):
    return generator.next_batch()


class TestCodedSequence:
    def test_behaves_like_the_materialised_tuple(self, batch):
        sequence = batch.columns().decisions
        assert isinstance(sequence, CodedSequence)
        expected = [
            batch.decisions_vocabulary[code] for code in batch.decision_codes
        ]
        assert len(sequence) == len(expected)
        assert list(sequence) == expected
        assert sequence[0] == expected[0]
        assert sequence[-1] == expected[-1]
        assert sequence == expected

    def test_slice_stays_coded(self, batch):
        sequence = batch.columns().decisions
        sliced = sequence[10:20]
        assert isinstance(sliced, CodedSequence)
        assert sliced.vocabulary is sequence.vocabulary
        assert list(sliced) == list(sequence)[10:20]

    def test_identity_vocab_equality_compares_codes(self, batch):
        sequence = batch.columns().decisions
        twin = CodedSequence(sequence.codes.copy(), sequence.vocabulary)
        assert sequence == twin
        other = CodedSequence(
            (sequence.codes + 1) % len(sequence.vocabulary),
            sequence.vocabulary,
        )
        assert sequence != other


class TestStreamBatch:
    def test_columns_match_record_materialisation(self, batch):
        columns = batch.columns()
        records = list(batch.iter_records())
        assert len(records) == len(batch)
        for index in (0, 7, len(batch) - 1):
            record = records[index]
            assert record.context == columns.contexts[index]
            assert record.decision == columns.decisions[index]
            assert record.reward == float(columns.rewards[index])
            assert record.propensity == float(columns.propensities[index])
        assert batch[3] == records[3]

    def test_has_propensities(self, batch):
        assert batch.has_propensities()

    def test_shape_mismatch_rejected(self, batch):
        with pytest.raises(SimulationError, match="rewards"):
            StreamBatch(
                batch.context_codes,
                batch.decision_codes,
                batch.rewards[:-1],
                batch.propensities,
                batch.timestamps,
                batch.contexts_vocabulary,
                batch.decisions_vocabulary,
                batch.feature_names,
            )


class TestGridPolicy:
    def test_fast_and_slow_paths_are_bit_identical(self, generator, batch):
        policy = generator.candidate_policy(0)
        columns = batch.columns()
        fast = policy.propensity_batch(columns.decisions, columns.contexts)
        slow = policy.propensity_batch(
            list(columns.decisions), list(columns.contexts)
        )
        np.testing.assert_array_equal(fast, slow)
        matrix = policy.probability_matrix(columns.contexts)
        slow_matrix = policy.probability_matrix(list(columns.contexts))
        np.testing.assert_array_equal(matrix, slow_matrix)

    def test_matches_base_policy_probabilities(self, generator):
        base = generator.workload.logging_policy(epsilon=0.2)
        policy = GridPolicy(base, generator.cells)
        cell = generator.cells[3]
        assert policy.probabilities(cell) == base.probabilities(cell)

    def test_foreign_vocabulary_falls_back(self, generator, batch):
        policy = generator.candidate_policy(1)
        columns = batch.columns()
        # A value-equal but non-identical vocabulary must take the slow
        # path and still agree (the fast path requires identity; note
        # tuple(t) returns t itself, so build a genuinely new tuple).
        foreign = CodedSequence(
            batch.decision_codes, tuple(list(generator.decisions_vocabulary))
        )
        assert foreign.vocabulary is not batch.decisions_vocabulary
        fast = policy.propensity_batch(columns.decisions, columns.contexts)
        fallback = policy.propensity_batch(foreign, columns.contexts)
        np.testing.assert_array_equal(fast, fallback)

    def test_unknown_context_is_an_error(self, generator):
        from repro.core.types import ClientContext

        policy = generator.candidate_policy(0)
        stranger = ClientContext(
            {name: "nope" for name in generator.feature_names}
        )
        with pytest.raises(PolicyError, match="not a cell"):
            policy.probabilities(stranger)

    def test_vocabulary_value_check(self, generator):
        base = generator.workload.logging_policy(epsilon=0.2)
        with pytest.raises(PolicyError, match="decision space order"):
            GridPolicy(
                base,
                generator.cells,
                decisions_vocabulary=tuple(
                    reversed(generator.decisions_vocabulary)
                ),
            )

    def test_grid_cells_helper(self, generator):
        assert grid_cells(generator.space) == generator.decisions_vocabulary
