"""Every kernel backend is bit-identical to the numpy reference.

This is the backend dimension of the repo's equivalence matrix: the
batch-vs-scalar and stream-vs-dense suites pin the *shape* of the
computation, this suite pins the *implementation* — each registered
backend must reproduce the numpy backend's float64 outputs exactly, for
the kernels themselves and for full estimator runs built on them.  On a
numpy-only environment the sweep degenerates to a self-check; the CI
optional-deps leg installs numba and runs the real comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    IPS,
    ClippedIPS,
    DirectMethod,
    DoublyRobust,
    SelfNormalizedDR,
    SwitchDR,
)
from repro.core.models.knn import KNNRewardModel
from repro.core.models.linear import RidgeRewardModel
from repro.core.models.tabular import TabularMeanModel
from repro.errors import ModelError
from repro.kernels import available_backends, backend_for, use_backend
from repro.workloads.synthetic import SyntheticWorkload

BACKENDS = available_backends()

ESTIMATOR_FACTORIES = {
    "ips": lambda: IPS(),
    "clipped-ips": lambda: ClippedIPS(clip=5.0),
    "dm": lambda: DirectMethod(TabularMeanModel()),
    "dr": lambda: DoublyRobust(TabularMeanModel()),
    "sndr": lambda: SelfNormalizedDR(TabularMeanModel()),
    "switch-dr": lambda: SwitchDR(TabularMeanModel(), clip=5.0),
}


@pytest.fixture(scope="module")
def workload():
    return SyntheticWorkload()


@pytest.fixture(scope="module")
def trace(workload):
    old = workload.logging_policy(epsilon=0.3)
    return workload.generate_trace(old, 400, np.random.default_rng(11))


@pytest.fixture(scope="module")
def new_policy(workload):
    return workload.logging_policy(epsilon=0.1, base_index=1)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestBackendBitIdentity:
    @pytest.mark.parametrize("estimator_name", sorted(ESTIMATOR_FACTORIES))
    def test_estimators_match_numpy(
        self, backend_name, estimator_name, trace, new_policy
    ):
        with use_backend("numpy"):
            reference = ESTIMATOR_FACTORIES[estimator_name]().estimate(
                new_policy, trace
            )
        with use_backend(backend_name):
            candidate = ESTIMATOR_FACTORIES[estimator_name]().estimate(
                new_policy, trace
            )
        assert candidate.value == reference.value
        assert np.array_equal(candidate.contributions, reference.contributions)
        assert candidate.diagnostics == reference.diagnostics

    def test_ridge_matches_numpy(self, backend_name, trace):
        with use_backend("numpy"):
            reference = RidgeRewardModel(alpha=0.5)
            reference.fit(trace)
        with use_backend(backend_name):
            candidate = RidgeRewardModel(alpha=0.5)
            candidate.fit(trace)
        assert np.array_equal(candidate._coefficients, reference._coefficients)
        assert candidate._intercept == reference._intercept

    def test_knn_matches_numpy(self, backend_name, trace):
        queries = list(trace)[:25]
        with use_backend("numpy"):
            reference = KNNRewardModel(k=3)
            reference.fit(trace)
            expected = [
                reference.predict(r.context, r.decision) for r in queries
            ]
        with use_backend(backend_name):
            candidate = KNNRewardModel(k=3)
            candidate.fit(trace)
            actual = [
                candidate.predict(r.context, r.decision) for r in queries
            ]
        assert actual == expected

    def test_elementwise_kernels_match_numpy(self, backend_name):
        rng = np.random.default_rng(5)
        reference = backend_for("numpy")
        candidate = backend_for(backend_name)
        old = rng.uniform(0.05, 1.0, size=200)
        new = rng.uniform(0.0, 1.0, size=200)
        weights = candidate.importance_ratio(new, old)
        assert np.array_equal(weights, reference.importance_ratio(new, old))
        assert np.array_equal(
            candidate.clip_weights(weights, 2.5),
            reference.clip_weights(weights, 2.5),
        )
        dm = rng.normal(size=200)
        residuals = rng.normal(size=200)
        assert np.array_equal(
            candidate.dr_contributions(dm, weights, residuals),
            reference.dr_contributions(dm, weights, residuals),
        )
        assert np.array_equal(
            candidate.sndr_contributions(dm, weights, residuals, 0.875),
            reference.sndr_contributions(dm, weights, residuals, 0.875),
        )
        rewards = rng.normal(size=200)
        assert np.array_equal(
            candidate.ips_contributions(weights, rewards),
            reference.ips_contributions(weights, rewards),
        )

    def test_accumulators_match_numpy(self, backend_name):
        rng = np.random.default_rng(9)
        reference = backend_for("numpy")
        candidate = backend_for(backend_name)
        rows = rng.integers(0, 6, size=300).astype(np.intp)
        codes = rng.integers(0, 4, size=300).astype(np.intp)
        counts_a = np.full((6, 4), 1.0)
        counts_b = counts_a.copy()
        candidate.cpt_accumulate(counts_a, rows, codes)
        reference.cpt_accumulate(counts_b, rows, codes)
        assert np.array_equal(counts_a, counts_b)
        ids = rng.integers(-1, 5, size=300).astype(np.intp)
        values = rng.normal(size=300)
        sums_a, counts_a = np.zeros(5), np.zeros(5)
        sums_b, counts_b = np.zeros(5), np.zeros(5)
        candidate.bucket_accumulate(sums_a, counts_a, ids, values)
        reference.bucket_accumulate(sums_b, counts_b, ids, values)
        assert np.array_equal(sums_a, sums_b)
        assert np.array_equal(counts_a, counts_b)


class TestTabularTracePaths:
    """predict_trace/predict_trace_for_decision vs the scalar batch API."""

    @pytest.mark.parametrize("fallback", ["decision", "global"])
    def test_predict_trace_matches_predict_batch(self, trace, fallback):
        model = TabularMeanModel(fallback=fallback)
        model.fit(trace)
        columns = trace.columns()
        expected = model.predict_batch(columns.contexts, columns.decisions)
        assert np.array_equal(model.predict_trace(columns), expected)
        positions = np.asarray([0, 3, 7, len(columns) - 1], dtype=np.intp)
        assert np.array_equal(
            model.predict_trace(columns, positions), expected[positions]
        )

    def test_predict_trace_for_decision_matches_predict_batch(self, trace):
        model = TabularMeanModel(fallback="decision")
        model.fit(trace)
        columns = trace.columns()
        decision = columns.decision_vocabulary[0]
        expected = model.predict_batch(
            columns.contexts, [decision] * len(columns)
        )
        assert np.array_equal(
            model.predict_trace_for_decision(columns, decision), expected
        )
        positions = np.asarray([1, 2, 11], dtype=np.intp)
        assert np.array_equal(
            model.predict_trace_for_decision(columns, decision, positions),
            expected[positions],
        )

    def test_error_fallback_raises_the_scalar_message(self, trace):
        # Fit on a prefix so later records hit unseen buckets; the fast
        # path must raise the exact error of the first failing record.
        model = TabularMeanModel(fallback="error")
        model.fit(trace[: len(trace) // 4])
        columns = trace.columns()
        scalar_error = None
        for record in trace:
            try:
                model.predict(record.context, record.decision)
            except ModelError as error:
                scalar_error = str(error)
                break
        if scalar_error is None:
            pytest.skip("prefix covered every bucket; nothing to compare")
        with pytest.raises(ModelError) as caught:
            model.predict_trace(columns)
        assert str(caught.value) == scalar_error

    def test_refit_invalidates_consumer_caches(self, trace):
        model = TabularMeanModel()
        model.fit(trace[: len(trace) // 2])
        columns = trace.columns()
        first = model.predict_trace(columns)
        model.fit(trace)  # refit on more data: new fit token, fresh codes
        second = model.predict_trace(columns)
        expected = model.predict_batch(columns.contexts, columns.decisions)
        assert np.array_equal(second, expected)
        assert not np.array_equal(first, second)
