"""The drift-injection traffic generator: determinism and scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.workloads.drift import (
    DIURNAL_BANDS,
    DRIFT_SCENARIOS,
    LiveTrafficGenerator,
)


def collect(generator, chunks):
    return [generator.next_batch() for _ in range(chunks)]


class TestDeterminism:
    @pytest.mark.parametrize("scenario", DRIFT_SCENARIOS)
    def test_same_seed_same_stream(self, scenario):
        first = LiveTrafficGenerator(
            scenario=scenario, seed=21, chunk_records=512
        )
        second = LiveTrafficGenerator(
            scenario=scenario, seed=21, chunk_records=512
        )
        for a, b in zip(collect(first, 4), collect(second, 4)):
            np.testing.assert_array_equal(a.rewards, b.rewards)
            np.testing.assert_array_equal(a.context_codes, b.context_codes)
            np.testing.assert_array_equal(a.decision_codes, b.decision_codes)
            np.testing.assert_array_equal(a.propensities, b.propensities)

    def test_vocabularies_shared_by_identity_across_batches(self):
        generator = LiveTrafficGenerator(seed=0, chunk_records=128)
        one, two = collect(generator, 2)
        assert one.contexts_vocabulary is two.contexts_vocabulary
        assert one.decisions_vocabulary is two.decisions_vocabulary
        assert (
            generator.candidate_policy(0).propensity_batch(
                one.columns().decisions, one.columns().contexts
            ).dtype
            == np.float64
        )


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError, match="unknown scenario"):
            LiveTrafficGenerator(scenario="full-moon")

    def test_diurnal_labels_and_reward_factors(self):
        generator = LiveTrafficGenerator(
            scenario="diurnal",
            seed=3,
            chunk_records=16384,
            arrivals_per_hour=512.0,  # 32 virtual hours per batch
        )
        batch = generator.next_batch()
        labels = set(batch.states.tolist())
        expected = {"normal"} | {label for label, _, _ in DIURNAL_BANDS}
        assert labels == expected
        # Peak-hour records (factor 0.8) average below off-peak (1.1).
        hours = batch.timestamps
        peak = (hours >= 18.0) & (hours < 22.0)
        off_peak = (hours >= 2.0) & (hours < 6.0)
        assert batch.rewards[peak].mean() < batch.rewards[off_peak].mean()

    def test_flash_crowd_window_skews_and_degrades(self):
        generator = LiveTrafficGenerator(
            scenario="flash-crowd",
            seed=5,
            chunk_records=100_000,
            flash_start=100_000,
            flash_duration=100_000,
            flash_factor=0.5,
        )
        before = generator.next_batch()
        during = generator.next_batch()
        after = generator.next_batch()
        crowd = max(1, len(generator.cells) // 4)
        in_crowd_during = (during.context_codes < crowd).mean()
        in_crowd_before = (before.context_codes < crowd).mean()
        assert in_crowd_during > 2 * in_crowd_before
        assert during.rewards.mean() < before.rewards.mean()
        assert after.rewards.mean() > during.rewards.mean()

    def test_coupled_rewards_lag_one_batch(self):
        generator = LiveTrafficGenerator(
            scenario="coupled", seed=9, chunk_records=50_000, coupling=0.6
        )
        stationary = LiveTrafficGenerator(
            scenario="stationary", seed=9, chunk_records=50_000
        )
        # First batch: shares start uniform → no feedback yet, rewards
        # identical to the stationary control for the same draws.
        np.testing.assert_array_equal(
            generator.next_batch().rewards, stationary.next_batch().rewards
        )
        # Second batch: the logging policy is biased toward decision 0,
        # so decision-0 records should now be penalised relative to the
        # control.
        coupled = generator.next_batch()
        control = stationary.next_batch()
        mask = coupled.decision_codes == 0
        assert (coupled.rewards[mask] < control.rewards[mask]).all()

    def test_propensities_always_match_logging_policy(self):
        for scenario in DRIFT_SCENARIOS:
            generator = LiveTrafficGenerator(
                scenario=scenario, seed=1, chunk_records=1000
            )
            batch = generator.next_batch()
            expected = generator.logging_policy.matrix[
                batch.context_codes, batch.decision_codes
            ]
            np.testing.assert_array_equal(batch.propensities, expected)


class TestBatching:
    def test_iter_batches_truncates_to_exact_total(self):
        generator = LiveTrafficGenerator(seed=2, chunk_records=1000)
        batches = list(generator.iter_batches(max_records=2500))
        assert [len(batch) for batch in batches] == [1000, 1000, 500]
        assert generator.emitted == 2500

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError, match="chunk_records"):
            LiveTrafficGenerator(chunk_records=0)
        with pytest.raises(SimulationError, match="arrivals_per_hour"):
            LiveTrafficGenerator(arrivals_per_hour=0.0)
        generator = LiveTrafficGenerator(seed=0)
        with pytest.raises(SimulationError, match="batch size"):
            generator.next_batch(0)

    def test_candidate_policies_named_and_distinct(self):
        generator = LiveTrafficGenerator(seed=0)
        policies = generator.candidate_policies(3)
        assert sorted(policies) == ["policy-d0", "policy-d1", "policy-d2"]
        with pytest.raises(SimulationError, match="at least one"):
            generator.candidate_policies(0)
