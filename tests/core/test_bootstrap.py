"""Tests for bootstrap and jackknife uncertainty."""

import numpy as np
import pytest

from repro import core
from repro.core.bootstrap import bootstrap_ci, jackknife_std_error
from repro.errors import EstimatorError

from tests.conftest import make_uniform_trace


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision]


@pytest.fixture
def trace(abc_space, rng):
    return make_uniform_trace(abc_space, _truth, rng, n=300, noise=0.2)


@pytest.fixture
def new_policy(abc_space):
    return core.DeterministicPolicy(abc_space, lambda c: "c")


class TestBootstrap:
    def test_interval_contains_point(self, trace, new_policy, abc_space):
        result = bootstrap_ci(
            core.SelfNormalizedIPS(),
            new_policy,
            trace,
            old_policy=core.UniformRandomPolicy(abc_space),
            replicates=100,
            rng=0,
        )
        assert result.lower <= result.point_estimate <= result.upper
        assert result.replicates.size == 100

    def test_interval_covers_truth_usually(self, abc_space, new_policy):
        covered = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            trace = make_uniform_trace(abc_space, _truth, rng, n=300, noise=0.2)
            truth = 3.0
            result = bootstrap_ci(
                core.SelfNormalizedIPS(),
                new_policy,
                trace,
                replicates=80,
                rng=seed,
            )
            if result.lower <= truth <= result.upper:
                covered += 1
        assert covered >= 8  # 95% nominal; allow slack at these sizes

    def test_deterministic_given_seed(self, trace, new_policy):
        a = bootstrap_ci(core.SelfNormalizedIPS(), new_policy, trace, replicates=50, rng=7)
        b = bootstrap_ci(core.SelfNormalizedIPS(), new_policy, trace, replicates=50, rng=7)
        assert a.lower == b.lower and a.upper == b.upper

    def test_parameter_validation(self, trace, new_policy):
        with pytest.raises(EstimatorError):
            bootstrap_ci(core.IPS(), new_policy, trace, replicates=1)
        with pytest.raises(EstimatorError):
            bootstrap_ci(core.IPS(), new_policy, trace, confidence=1.5)

    def test_render(self, trace, new_policy):
        result = bootstrap_ci(core.IPS(), new_policy, trace, replicates=20, rng=0)
        assert "bootstrap" in result.render()


class TestJackknife:
    def test_positive_and_finite(self, trace, new_policy):
        stderr = jackknife_std_error(
            core.IPS(), new_policy, trace, max_leave_out=40, rng=0
        )
        assert stderr > 0
        assert np.isfinite(stderr)

    def test_comparable_to_analytic_stderr(self, trace, new_policy):
        analytic = core.IPS().estimate(new_policy, trace).std_error
        jackknife = jackknife_std_error(
            core.IPS(), new_policy, trace, max_leave_out=150, rng=0
        )
        assert jackknife == pytest.approx(analytic, rel=0.8)

    def test_needs_at_least_three_records(self, abc_space, new_policy):
        from repro.core.types import ClientContext, Trace, TraceRecord

        tiny = Trace(
            [TraceRecord(ClientContext(x=0.0), "c", 1.0, propensity=0.5)] * 2
        )
        with pytest.raises(EstimatorError):
            jackknife_std_error(core.IPS(), new_policy, tiny)
