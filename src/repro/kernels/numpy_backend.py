"""The numpy reference backend.

These are the estimator stack's historical inline expressions, moved
here verbatim — every other backend is measured against their float64
bytes.  Nothing in this module may be "optimised" in a way that changes
rounding: ``np.add.at`` accumulates in index order, elementwise ufunc
chains round after every operation, and the ridge solve keeps its exact
centring → gram → solve sequence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.backend import KernelBackend


def cpt_accumulate(counts: np.ndarray, rows: np.ndarray, codes: np.ndarray) -> None:
    """``counts[rows[i], codes[i]] += 1.0`` in record order."""
    np.add.at(counts, (rows, codes), 1.0)


def bucket_accumulate(
    sums: np.ndarray, counts: np.ndarray, ids: np.ndarray, values: np.ndarray
) -> None:
    """Per-bucket running sums/counts, accumulated in record order.

    ``np.add.at`` applies its updates sequentially over the index
    array, so each bucket cell sees the same left-to-right addition
    sequence as the scalar ``sums[key] += value`` loop it replaces.
    Negative ids mark records outside every bucket and are skipped.
    """
    if ids.size and ids.min() < 0:
        keep = ids >= 0
        ids = ids[keep]
        values = values[keep]
    np.add.at(sums, ids, values)
    np.add.at(counts, ids, 1.0)


def importance_ratio(new: np.ndarray, old: np.ndarray) -> np.ndarray:
    """``mu_new / mu_old`` elementwise."""
    return new / old


def clip_weights(weights: np.ndarray, clip: float) -> np.ndarray:
    """``min(w, clip)`` elementwise."""
    return np.minimum(weights, clip)


def dr_contributions(
    dm_terms: np.ndarray, weights: np.ndarray, residuals: np.ndarray
) -> np.ndarray:
    """``dm + w * res`` elementwise (round after multiply, then add)."""
    return dm_terms + weights * residuals


def sndr_contributions(
    dm_terms: np.ndarray,
    weights: np.ndarray,
    residuals: np.ndarray,
    scale: float,
) -> np.ndarray:
    """``dm + (w * res) * scale`` elementwise, in that association."""
    return dm_terms + weights * residuals * scale


def ips_contributions(weights: np.ndarray, rewards: np.ndarray) -> np.ndarray:
    """``w * r`` elementwise."""
    return weights * rewards


def ridge_solve(
    design: np.ndarray, targets: np.ndarray, alpha: float
) -> Tuple[np.ndarray, float]:
    """Centred normal-equations ridge fit.

    Centre targets and columns so the intercept absorbs the means and
    escapes the ridge penalty; solve the regularised gram system.
    """
    column_means = design.mean(axis=0)
    target_mean = targets.mean()
    centered = design - column_means
    gram = centered.T @ centered + alpha * np.eye(design.shape[1])
    moment = centered.T @ (targets - target_mean)
    coefficients = np.linalg.solve(gram, moment)
    intercept = float(target_mean - column_means @ coefficients)
    return coefficients, intercept


def knn_distances(candidates: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Euclidean distance from *query* to every candidate row."""
    return np.linalg.norm(candidates - query, axis=1)


def topk_indices(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the *k* smallest distances (argpartition order)."""
    return np.argpartition(distances, k - 1)[:k]


BACKEND = KernelBackend(
    name="numpy",
    cpt_accumulate=cpt_accumulate,
    bucket_accumulate=bucket_accumulate,
    importance_ratio=importance_ratio,
    clip_weights=clip_weights,
    dr_contributions=dr_contributions,
    sndr_contributions=sndr_contributions,
    ips_contributions=ips_contributions,
    ridge_solve=ridge_solve,
    knn_distances=knn_distances,
    topk_indices=topk_indices,
)
