"""CLI tests for `repro lint`: --rules, --format, --fix, --baseline, --cache."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

UNSEEDED = (
    '"""Doc."""\n'
    "\n"
    "import numpy as np\n"
    "\n"
    "rng = np.random.default_rng()\n"
)


class TestRulesFlag:
    def test_single_rule_filter(self, capsys):
        code = main(
            ["lint", "--rules", "REP002", str(FIXTURES / "rep001_bad.py")]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_rule_list(self, capsys):
        code = main(
            [
                "lint",
                "--rules",
                "REP001,REP002",
                str(FIXTURES / "rep001_bad.py"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REP001" in out

    def test_empty_rules_is_usage_error(self, capsys):
        code = main(["lint", "--rules", " , ", str(FIXTURES / "clean.py")])
        assert code == 2
        assert "no rule ids" in capsys.readouterr().err


class TestFormatFlag:
    def test_sarif_format(self, capsys):
        code = main(
            ["lint", "--format", "sarif", str(FIXTURES / "rep002_bad.py")]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["REP002"]

    def test_json_format_carries_cache_counters(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        target = tmp_path / "mod.py"
        target.write_text('"""Doc."""\n\nVALUE = 1\n')
        main(["lint", "--cache", str(cache), "--format", "json", str(target)])
        capsys.readouterr()
        code = main(
            ["lint", "--cache", str(cache), "--format", "json", str(target)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["cached_files"] == 1
        assert payload["analyzed_files"] == 0


class TestFixFlag:
    def test_dry_run_prints_diff_without_editing(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        code = main(["lint", "--fix", "--dry-run", str(target)])
        out = capsys.readouterr().out
        assert code == 1  # violations still present
        assert "-rng = np.random.default_rng()" in out
        assert "1 fix(es) planned" in out
        assert target.read_text() == UNSEEDED

    def test_fix_applies_and_relints_clean(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        code = main(["lint", "--fix", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "applied 1 fix(es)" in out
        assert "ok:" in out
        assert "default_rng(0)" in target.read_text()

    def test_dry_run_without_fix_is_usage_error(self, capsys):
        code = main(["lint", "--dry-run", str(FIXTURES / "clean.py")])
        assert code == 2
        assert "--dry-run requires --fix" in capsys.readouterr().err


class TestBaselineFlag:
    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(FIXTURES / "rep001_bad.py")
        code = main(["lint", "--write-baseline", str(baseline), target])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote 3 finding(s)" in out
        code = main(["lint", "--baseline", str(baseline), target])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 baselined" in out

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "lint",
                "--baseline",
                str(tmp_path / "nope.json"),
                str(FIXTURES / "clean.py"),
            ]
        )
        assert code == 2
        assert "baseline" in capsys.readouterr().err


class TestCacheFlag:
    def test_cache_hit_across_two_invocations(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        for name in ("a.py", "b.py"):
            (tmp_path / name).write_text('"""Doc."""\n\nVALUE = 1\n')
        first = main(["lint", "--cache", str(cache), str(tmp_path)])
        first_out = capsys.readouterr().out
        second = main(["lint", "--cache", str(cache), str(tmp_path)])
        second_out = capsys.readouterr().out
        assert first == second == 0
        assert "cache:" not in first_out  # cold run: nothing cached yet
        assert "cache: 2 hit(s), 0 analyzed" in second_out

    def test_changed_file_reanalyzed_only(self, tmp_path, capsys):
        cache = tmp_path / "cache.json"
        for name in ("a.py", "b.py", "c.py"):
            (tmp_path / name).write_text('"""Doc."""\n\nVALUE = 1\n')
        main(["lint", "--cache", str(cache), str(tmp_path)])
        capsys.readouterr()
        (tmp_path / "b.py").write_text('"""Doc."""\n\nassert True\n')
        code = main(["lint", "--cache", str(cache), str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP002" in out
        assert "cache: 2 hit(s), 1 analyzed" in out
