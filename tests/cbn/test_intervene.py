"""Tests for the CBN do-operator."""

import pytest

from repro.cbn.graph import BayesianNetwork
from repro.errors import SimulationError

from tests.cbn.test_graph import sprinkler_network


class TestIntervene:
    def test_intervened_variable_forced(self):
        network = sprinkler_network().intervene({"sprinkler": "on"})
        assert network.query("sprinkler") == {"on": 1.0, "off": 0.0}

    def test_intervention_cuts_incoming_edges(self):
        network = sprinkler_network().intervene({"sprinkler": "on"})
        assert network.parents("sprinkler") == ()
        # Downstream structure intact:
        assert set(network.parents("wet")) == {"sprinkler", "rain"}

    def test_do_differs_from_conditioning(self):
        """Forcing the sprinkler on tells us nothing about rain (no
        back-door), whereas *observing* it on does."""
        base = sprinkler_network()
        conditioned = base.query("rain", {"sprinkler": "on"})["yes"]
        intervened = base.intervene({"sprinkler": "on"}).query("rain")["yes"]
        assert intervened == pytest.approx(0.2)  # the prior
        assert conditioned != pytest.approx(0.2, abs=0.01)

    def test_downstream_effect_propagates(self):
        base = sprinkler_network()
        wet_do_on = base.intervene({"sprinkler": "on"}).query("wet")["wet"]
        wet_do_off = base.intervene({"sprinkler": "off"}).query("wet")["wet"]
        assert wet_do_on > wet_do_off

    def test_original_network_untouched(self):
        base = sprinkler_network()
        base.intervene({"sprinkler": "on"})
        assert base.parents("sprinkler") == ("rain",)

    def test_invalid_value_rejected(self):
        with pytest.raises(SimulationError):
            sprinkler_network().intervene({"sprinkler": "sideways"})

    def test_multiple_interventions(self):
        network = sprinkler_network().intervene({"sprinkler": "on", "rain": "no"})
        assert network.query("wet")["wet"] == pytest.approx(0.9)
