"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TraceError(ReproError):
    """A trace is malformed (bad record, inconsistent schema, bad file)."""


class PolicyError(ReproError):
    """A policy violates its contract (probabilities do not sum to one,
    a decision outside the decision space, negative probability, ...)."""


class EstimatorError(ReproError):
    """An estimator was invoked with inputs it cannot handle."""


class PropensityError(EstimatorError):
    """A propensity is missing, non-positive, or cannot be estimated.

    Subclasses :class:`EstimatorError` because a broken propensity is an
    estimator-input contract violation: IPS/DR divide by it, so letting a
    zero or negative value through would silently produce ``inf``/``nan``
    estimates instead of an exception.
    """


class AnalysisError(ReproError):
    """The static-analysis linter was invoked incorrectly (unknown rule
    id, unreadable path, or a file that does not parse)."""


class LedgerError(ReproError):
    """A run ledger is unusable (corrupt header, record/seed mismatch,
    or a ledger written by a different experiment configuration)."""


class RunTimeoutError(ReproError):
    """A per-seed experiment run exceeded its wall-clock timeout.

    Raised by the :mod:`repro.runtime` retry executor; treated like a
    failed run (recorded, skipped, optionally retried) rather than a
    crash, because a wedged model fit on one resample should not throw
    away the other 49 runs of a sweep.
    """


class FallbackExhaustedError(EstimatorError):
    """Every link of an :class:`repro.runtime.EstimatorFallbackChain`
    failed.

    Subclasses :class:`EstimatorError` so the experiment harness counts
    an exhausted chain as one failed run instead of aborting the sweep;
    the message enumerates every hop so nothing is masked.
    """


class TelemetryError(ReproError):
    """The observability layer was misused (bad metric name, malformed
    telemetry snapshot, or an unreadable telemetry file).

    Telemetry is a side channel: estimators and the harness never let a
    :class:`TelemetryError` abort an experiment run — it surfaces only
    from explicit telemetry entry points (sinks, validators, the
    ``repro trace`` CLI).
    """


class StoreError(ReproError):
    """An on-disk sharded trace is unusable (missing or corrupt manifest,
    format-version mismatch, schema-hash mismatch, or a shard whose
    arrays disagree with the manifest's record counts).

    Raised by :mod:`repro.store`; distinct from :class:`TraceError` so
    callers can tell "this trace data is malformed" apart from "this
    shard directory cannot be trusted at all".
    """


class ModelError(ReproError):
    """A reward model was used before fitting or fit on unusable data."""


class SimulationError(ReproError):
    """A simulation substrate was configured inconsistently."""
