"""Tests for ABR building blocks: ladder, bandwidth, throughput, buffer,
QoE, and throughput predictors."""

import numpy as np
import pytest

from repro import abr
from repro.errors import SimulationError


class TestBitrateLadder:
    def test_defaults_ascending_five_levels(self):
        ladder = abr.BitrateLadder()
        assert len(ladder) == 5
        assert list(ladder) == sorted(ladder)

    def test_index_and_clamp(self):
        ladder = abr.BitrateLadder((1.0, 2.0, 3.0))
        assert ladder.index_of(2.0) == 1
        assert ladder.clamp(-5) == 0
        assert ladder.clamp(99) == 2
        with pytest.raises(SimulationError):
            ladder.index_of(9.9)

    def test_highest_below(self):
        ladder = abr.BitrateLadder((1.0, 2.0, 3.0))
        assert ladder.highest_below(2.5) == 2.0
        assert ladder.highest_below(0.5) == 1.0  # floor fallback
        assert ladder.highest_below(100.0) == 3.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.BitrateLadder((1.0,))
        with pytest.raises(SimulationError):
            abr.BitrateLadder((2.0, 1.0))
        with pytest.raises(SimulationError):
            abr.BitrateLadder((1.0, 1.0))


class TestVideoManifest:
    def test_chunk_megabits(self):
        manifest = abr.VideoManifest(chunk_seconds=4.0)
        assert manifest.chunk_megabits(2.0) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.VideoManifest(chunk_seconds=0.0)
        with pytest.raises(SimulationError):
            abr.VideoManifest(chunk_count=0)


class TestBandwidthProcesses:
    def test_constant(self):
        process = abr.ConstantBandwidth(3.0)
        rng = np.random.default_rng(0)
        assert process.bandwidth(0, rng) == 3.0
        assert process.bandwidth(99, rng) == 3.0

    def test_noisy_mean_preserved(self):
        process = abr.NoisyBandwidth(abr.ConstantBandwidth(3.0), sigma=0.1)
        rng = np.random.default_rng(0)
        samples = [process.bandwidth(i, rng) for i in range(2000)]
        assert np.median(samples) == pytest.approx(3.0, rel=0.05)

    def test_markov_two_levels(self):
        process = abr.MarkovBandwidth(good_mbps=5.0, bad_mbps=1.0)
        rng = np.random.default_rng(0)
        samples = {process.bandwidth(i, rng) for i in range(200)}
        assert samples == {5.0, 1.0}

    def test_markov_consistent_within_session(self):
        process = abr.MarkovBandwidth(5.0, 1.0)
        rng = np.random.default_rng(0)
        first = process.bandwidth(10, rng)
        assert process.bandwidth(10, rng) == first
        process.reset()

    def test_trace_replay_wraps(self):
        process = abr.TraceBandwidth([1.0, 2.0, 3.0])
        rng = np.random.default_rng(0)
        assert process.bandwidth(4, rng) == 2.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.ConstantBandwidth(0.0)
        with pytest.raises(SimulationError):
            abr.MarkovBandwidth(1.0, 2.0)
        with pytest.raises(SimulationError):
            abr.TraceBandwidth([])


class TestThroughputModel:
    def test_efficiency_monotone_in_bitrate(self):
        """The paper's p(r): monotonically increasing, <= 1."""
        ladder = abr.BitrateLadder()
        efficiency = abr.BitrateEfficiency(ladder)
        values = [efficiency.efficiency(r) for r in ladder]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in values)

    def test_observed_below_available_for_low_bitrates(self):
        ladder = abr.BitrateLadder()
        model = abr.ObservedThroughputModel(abr.BitrateEfficiency(ladder))
        observed = model.expected(3.0, ladder.lowest)
        assert observed < 3.0

    def test_ideal_channel_independent(self):
        model = abr.ObservedThroughputModel(None)
        assert model.expected(3.0, 0.1) == model.expected(3.0, 5.0) == 3.0
        assert not model.bitrate_dependent

    def test_noise(self):
        ladder = abr.BitrateLadder()
        model = abr.ObservedThroughputModel(
            abr.BitrateEfficiency(ladder), noise_sigma=0.1
        )
        rng = np.random.default_rng(0)
        samples = [model.observe(3.0, 1.5, rng) for _ in range(500)]
        assert np.std(samples) > 0
        assert all(s > 0 for s in samples)

    def test_validation(self):
        ladder = abr.BitrateLadder()
        with pytest.raises(SimulationError):
            abr.BitrateEfficiency(ladder, floor=0.0)
        model = abr.ObservedThroughputModel(abr.BitrateEfficiency(ladder))
        with pytest.raises(SimulationError):
            model.expected(0.0, 1.0)


class TestPlaybackBuffer:
    def test_fast_download_fills_buffer(self):
        buffer = abr.PlaybackBuffer(capacity_seconds=30.0, initial_seconds=5.0)
        step = buffer.download_chunk(
            chunk_megabits=4.0, chunk_seconds=4.0, throughput_mbps=8.0
        )
        assert step.download_seconds == pytest.approx(0.5)
        assert step.rebuffer_seconds == 0.0
        assert step.buffer_after == pytest.approx(5.0 - 0.5 + 4.0)

    def test_slow_download_rebuffers(self):
        buffer = abr.PlaybackBuffer(initial_seconds=1.0)
        step = buffer.download_chunk(
            chunk_megabits=8.0, chunk_seconds=4.0, throughput_mbps=1.0
        )
        assert step.download_seconds == pytest.approx(8.0)
        assert step.rebuffer_seconds == pytest.approx(7.0)
        assert buffer.total_rebuffer_seconds == pytest.approx(7.0)
        assert step.buffer_after == pytest.approx(4.0)

    def test_capacity_cap(self):
        buffer = abr.PlaybackBuffer(capacity_seconds=6.0, initial_seconds=5.0)
        step = buffer.download_chunk(1.0, 4.0, 100.0)
        assert step.buffer_after == 6.0

    def test_reset(self):
        buffer = abr.PlaybackBuffer(initial_seconds=2.0)
        buffer.download_chunk(8.0, 4.0, 1.0)
        buffer.reset(initial_seconds=3.0)
        assert buffer.level_seconds == 3.0
        assert buffer.total_rebuffer_seconds == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.PlaybackBuffer(capacity_seconds=0.0)
        with pytest.raises(SimulationError):
            abr.PlaybackBuffer(initial_seconds=99.0)
        buffer = abr.PlaybackBuffer()
        with pytest.raises(SimulationError):
            buffer.download_chunk(0.0, 4.0, 1.0)
        with pytest.raises(SimulationError):
            buffer.download_chunk(1.0, 4.0, 0.0)


class TestQoE:
    def test_chunk_qoe_components(self):
        model = abr.QoEModel(rebuffer_penalty=4.0, smoothness_penalty=1.0)
        assert model.chunk_qoe(3.0, 0.0) == pytest.approx(3.0)
        assert model.chunk_qoe(3.0, 0.5) == pytest.approx(1.0)
        assert model.chunk_qoe(3.0, 0.0, previous_bitrate_mbps=1.0) == pytest.approx(
            3.0 - 2.0
        )

    def test_log_utility(self):
        model = abr.QoEModel(log_utility=True, min_bitrate_mbps=1.0)
        assert model.utility(1.0) == pytest.approx(0.0)
        assert model.utility(np.e) == pytest.approx(1.0)

    def test_session_qoe(self):
        model = abr.QoEModel(rebuffer_penalty=1.0, smoothness_penalty=0.0)
        value = model.session_qoe([1.0, 2.0], [0.0, 1.0])
        assert value == pytest.approx((1.0 + 2.0 - 1.0) / 2.0)

    def test_validation(self):
        model = abr.QoEModel()
        with pytest.raises(SimulationError):
            model.chunk_qoe(1.0, -0.5)
        with pytest.raises(SimulationError):
            model.session_qoe([1.0], [0.0, 0.0])
        with pytest.raises(SimulationError):
            model.session_qoe([], [])


class TestPredictors:
    def test_last_sample(self):
        predictor = abr.LastSamplePredictor()
        assert predictor.predict([1.0, 2.0, 5.0]) == 5.0

    def test_harmonic_mean_robust_to_spikes(self):
        harmonic = abr.HarmonicMeanPredictor(window=5)
        arithmetic = float(np.mean([1.0, 1.0, 1.0, 1.0, 100.0]))
        prediction = harmonic.predict([1.0, 1.0, 1.0, 1.0, 100.0])
        assert prediction < arithmetic
        assert prediction < 2.0

    def test_harmonic_window(self):
        predictor = abr.HarmonicMeanPredictor(window=2)
        assert predictor.predict([100.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_ewma_smoothing(self):
        predictor = abr.EWMAPredictor(alpha=0.5)
        assert predictor.predict([2.0]) == 2.0
        assert predictor.predict([2.0, 4.0]) == pytest.approx(3.0)

    def test_empty_history_raises(self):
        for predictor in (
            abr.LastSamplePredictor(),
            abr.HarmonicMeanPredictor(),
            abr.EWMAPredictor(),
        ):
            with pytest.raises(SimulationError):
                predictor.predict([])

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.HarmonicMeanPredictor(window=0)
        with pytest.raises(SimulationError):
            abr.EWMAPredictor(alpha=0.0)
