"""Data-only specs for policies, estimators, and traces.

The service tier answers "what would policy B have done?" over HTTP, so
every request ingredient must be *data, not code*: a JSON-serialisable
spec with a stable sha256 fingerprint.  This module defines the three
spec classes and their resolvers:

* :class:`PolicySpec` — ``{"kind": "epsilon-greedy", "options": {...}}``,
  resolved to a :class:`~repro.core.policy.Policy` through the policy
  section of the :class:`~repro.api.registry.Registry`;
* :class:`EstimatorConfig` — ``{"name": "dr", "options": {"clip": 10}}``,
  resolved to an :class:`~repro.core.estimators.OffPolicyEstimator`;
* :class:`TraceRef` — ``{"name": "abr-2017q3"}``, resolved by the
  server's :class:`~repro.store.naming.TraceCatalog` (the library-side
  facade takes trace objects directly).

Resolution builds exactly the objects a direct caller would construct by
hand — same constructors, same argument values — so spec-driven calls
are bit-identical to object calls (pinned by ``tests/api``).

Fingerprints hash the canonical JSON of ``to_dict()``-equivalent content
(:func:`repro.core.serialize.fingerprint`), so two specs share a
fingerprint iff they serialise identically; the serve cache keys on
these.

Importing this module installs the built-in policy kinds (``uniform``,
``constant``, ``tabular``, ``epsilon-greedy``, ``mixture``) into
:data:`~repro.api.registry.default_registry`;
:func:`install_builtin_policies` does the same for a custom registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.api.registry import Registry, default_registry
from repro.core.estimators import OffPolicyEstimator
from repro.core.models.base import RewardModel
from repro.core.policy import (
    DeterministicPolicy,
    EpsilonGreedyPolicy,
    MixturePolicy,
    Policy,
    TabularPolicy,
    UniformRandomPolicy,
)
from repro.core.serialize import decode_value, encode_value, fingerprint
from repro.core.spaces import DecisionSpace
from repro.errors import EstimatorError, PolicyError

__all__ = [
    "EstimatorConfig",
    "PolicySpec",
    "TraceRef",
    "install_builtin_policies",
    "resolve_estimator_config",
    "resolve_policy_spec",
]


def _require_mapping(payload: Any, what: str) -> Mapping[str, Any]:
    """*payload* as a string-keyed mapping, or an actionable error."""
    if not isinstance(payload, Mapping) or not all(
        isinstance(key, str) for key in payload
    ):
        raise PolicyError(
            f"{what} must be a string-keyed mapping, got "
            f"{type(payload).__name__}: {payload!r}"
        )
    return payload


def _check_keys(
    payload: Mapping[str, Any],
    what: str,
    required: Sequence[str],
    optional: Sequence[str] = (),
) -> None:
    """Reject missing/unknown keys with a message naming the expected set."""
    missing = sorted(key for key in required if key not in payload)
    unknown = sorted(set(payload) - set(required) - set(optional))
    if missing or unknown:
        expected = ", ".join(
            list(required) + [f"{key} (optional)" for key in optional]
        )
        parts = []
        if missing:
            parts.append(f"missing key(s) {missing}")
        if unknown:
            parts.append(f"unknown key(s) {unknown}")
        raise PolicyError(
            f"{what}: {'; '.join(parts)}; expected keys: {expected}"
        )


@dataclass(frozen=True)
class PolicySpec:
    """A policy as data: a registered *kind* plus its *options*.

    ``options`` values are plain Python (tuples allowed — the JSON form
    tags them); :meth:`from_dict` decodes tagged wire payloads, so the
    two construction paths yield equal specs with equal fingerprints.
    """

    kind: str
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str):
            raise PolicyError(
                f"policy spec kind must be a string, got "
                f"{type(self.kind).__name__}"
            )
        object.__setattr__(
            self, "options", dict(_require_mapping(self.options, "policy options"))
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable form (tuples and friends tagged)."""
        return {"kind": self.kind, "options": encode_value(self.options)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PolicySpec":
        """Reconstruct from :meth:`to_dict` output (or hand-written JSON)."""
        payload = _require_mapping(payload, "policy spec")
        _check_keys(payload, "policy spec", required=["kind"], optional=["options"])
        return cls(
            kind=payload["kind"],
            options=decode_value(payload.get("options", {})),
        )

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON of this spec."""
        return fingerprint({"kind": self.kind, "options": self.options})


@dataclass(frozen=True)
class EstimatorConfig:
    """An estimator as data: a registered *name* plus its *options*.

    Supported options are ``clip`` (canonical weight threshold, for
    estimators with ``supports_clip``) and ``model`` (a reward-model
    name or ``{"name": ..., "options": {...}}`` mapping, for estimators
    with ``needs_model``); :func:`resolve_estimator_config` rejects
    anything else by name.
    """

    name: str
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str):
            raise EstimatorError(
                f"estimator config name must be a string, got "
                f"{type(self.name).__name__}"
            )
        try:
            checked = dict(_require_mapping(self.options, "estimator options"))
        except PolicyError as error:
            raise EstimatorError(str(error)) from None
        object.__setattr__(self, "options", checked)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable form."""
        return {"name": self.name, "options": encode_value(self.options)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EstimatorConfig":
        """Reconstruct from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(payload, Mapping):
            raise EstimatorError(
                f"estimator config must be a mapping, got "
                f"{type(payload).__name__}: {payload!r}"
            )
        try:
            _check_keys(
                payload, "estimator config", required=["name"], optional=["options"]
            )
        except PolicyError as error:
            raise EstimatorError(str(error)) from None
        return cls(
            name=payload["name"],
            options=decode_value(payload.get("options", {})),
        )

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON of this config."""
        return fingerprint({"name": self.name, "options": self.options})


@dataclass(frozen=True)
class TraceRef:
    """A named trace, resolved server-side by the trace catalog."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise PolicyError(
                f"trace ref name must be a non-empty string, got {self.name!r}"
            )

    def to_dict(self) -> Dict[str, str]:
        """The JSON-serialisable form."""
        return {"name": self.name}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceRef":
        """Reconstruct from :meth:`to_dict` output."""
        payload = _require_mapping(payload, "trace ref")
        _check_keys(payload, "trace ref", required=["name"])
        return cls(name=payload["name"])

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical JSON of this ref."""
        return fingerprint({"name": self.name})


# -- built-in policy kinds ----------------------------------------------
#
# Each builder maps decoded options onto exactly the constructor call a
# direct caller would write, so spec-built policies are the same objects
# (and produce bit-identical probabilities) as hand-built ones.


def _build_space(value: Any) -> DecisionSpace:
    """A :class:`DecisionSpace` from a decision list (or pass one through)."""
    if isinstance(value, DecisionSpace):
        return value
    if not isinstance(value, (list, tuple)):
        raise PolicyError(
            "space must be a list of decisions (strings, numbers, or "
            f"tagged tuples), got {type(value).__name__}: {value!r}"
        )
    return DecisionSpace(list(value))


def _distribution(value: Any, what: str) -> Dict[Any, float]:
    """A decision→probability mapping with float probabilities."""
    if not isinstance(value, Mapping):
        raise PolicyError(
            f"{what} must map decisions to probabilities, got "
            f"{type(value).__name__}: {value!r}"
        )
    return {decision: float(probability) for decision, probability in value.items()}


def _build_uniform(options: Dict[str, Any], registry: Registry) -> Policy:
    """``{"kind": "uniform", "options": {"space": [...]}}``."""
    _check_keys(options, "uniform policy options", required=["space"])
    return UniformRandomPolicy(_build_space(options["space"]))


def _build_constant(options: Dict[str, Any], registry: Registry) -> Policy:
    """``{"kind": "constant", "options": {"space": [...], "decision": d}}``."""
    _check_keys(
        options, "constant policy options", required=["space", "decision"]
    )
    space = _build_space(options["space"])
    decision = options["decision"]
    space.validate(decision)
    return DeterministicPolicy(space, lambda context: decision)


def _build_tabular(options: Dict[str, Any], registry: Registry) -> Policy:
    """``{"kind": "tabular", "options": {"space", "key_features", "table",
    "default"?}}`` — table keys are context-feature tuples (tagged in
    JSON), rows are decision→probability distributions."""
    _check_keys(
        options,
        "tabular policy options",
        required=["space", "key_features", "table"],
        optional=["default"],
    )
    table = options["table"]
    if not isinstance(table, Mapping):
        raise PolicyError(
            "tabular policy table must be a mapping from key tuples to "
            f"distributions, got {type(table).__name__}"
        )
    default = options.get("default")
    return TabularPolicy(
        _build_space(options["space"]),
        key_features=[str(name) for name in options["key_features"]],
        table={
            tuple(key) if isinstance(key, (list, tuple)) else (key,): _distribution(
                row, f"tabular policy row for key {key!r}"
            )
            for key, row in table.items()
        },
        default=(
            _distribution(default, "tabular policy default")
            if default is not None
            else None
        ),
    )


def _build_epsilon_greedy(options: Dict[str, Any], registry: Registry) -> Policy:
    """``{"kind": "epsilon-greedy", "options": {"base": <spec>,
    "epsilon": e}}`` — *base* is a nested policy spec."""
    _check_keys(
        options, "epsilon-greedy policy options", required=["base", "epsilon"]
    )
    base = resolve_policy_spec(options["base"], registry=registry)
    return EpsilonGreedyPolicy(base, epsilon=float(options["epsilon"]))


def _build_mixture(options: Dict[str, Any], registry: Registry) -> Policy:
    """``{"kind": "mixture", "options": {"components": [<spec>...],
    "weights": [...]}}`` — components are nested policy specs."""
    _check_keys(
        options, "mixture policy options", required=["components", "weights"]
    )
    components = options["components"]
    if not isinstance(components, (list, tuple)):
        raise PolicyError(
            "mixture components must be a list of policy specs, got "
            f"{type(components).__name__}"
        )
    return MixturePolicy(
        [resolve_policy_spec(entry, registry=registry) for entry in components],
        weights=[float(weight) for weight in options["weights"]],
    )


def install_builtin_policies(registry: Registry) -> Registry:
    """Install the built-in policy kinds on *registry* (idempotent)."""
    builders = {
        "uniform": _build_uniform,
        "constant": _build_constant,
        "tabular": _build_tabular,
        "epsilon-greedy": _build_epsilon_greedy,
        "mixture": _build_mixture,
    }
    for kind, builder in builders.items():
        if kind not in registry.policy_kinds():
            registry.register_policy(kind, builder)
    return registry


install_builtin_policies(default_registry)


# -- resolvers ----------------------------------------------------------


def resolve_policy_spec(
    spec: Union[Policy, PolicySpec, Mapping[str, Any]],
    registry: Optional[Registry] = None,
) -> Policy:
    """Resolve a policy spec (or pass a :class:`Policy` through).

    Accepts a :class:`Policy` instance, a :class:`PolicySpec`, or its
    mapping form; mapping options are decoded from the tagged wire
    encoding first, so JSON payloads and native Python options build
    identical policies.
    """
    if isinstance(spec, Policy):
        return spec
    registry = registry if registry is not None else default_registry
    if isinstance(spec, Mapping):
        spec = PolicySpec.from_dict(spec)
    if not isinstance(spec, PolicySpec):
        raise PolicyError(
            "policy spec must be a Policy, a PolicySpec, or a mapping like "
            '{"kind": "uniform", "options": {"space": [...]}}; got '
            f"{type(spec).__name__}"
        )
    return registry.build_policy(spec.kind, spec.options)


def _resolve_model(
    model: Union[RewardModel, str, Mapping[str, Any], None],
    registry: Registry,
    estimator_name: str,
) -> Optional[RewardModel]:
    """Resolve an estimator config's ``model`` option to a reward model."""
    if model is None or isinstance(model, RewardModel):
        return model
    if isinstance(model, str):
        return registry.build_model(model)
    if isinstance(model, Mapping):
        try:
            _check_keys(
                model,
                f"model option for estimator {estimator_name!r}",
                required=["name"],
                optional=["options"],
            )
        except PolicyError as error:
            raise EstimatorError(str(error)) from None
        options = _require_mapping(
            model.get("options", {}),
            f"model options for estimator {estimator_name!r}",
        )
        return registry.build_model(model["name"], **decode_value(dict(options)))
    raise EstimatorError(
        f"model option for estimator {estimator_name!r} must be a reward "
        "model, a registered model name, or a {'name': ..., 'options': ...} "
        f"mapping; got {type(model).__name__}"
    )


class _HistoryEstimatorAdapter:
    """Present the uniform ``estimate()`` signature over a history-
    dependent estimator (``replay-dr``), which lives outside the
    :class:`OffPolicyEstimator` hierarchy and takes no propensity model
    or floor.  The facade promises one calling convention for every
    registered name; this adapter keeps that promise and turns the
    unsupported arguments into actionable errors instead of
    ``TypeError``.
    """

    def __init__(self, inner):
        self._inner = inner

    @property
    def name(self) -> str:
        """The wrapped estimator's report name."""
        return self._inner.name

    @property
    def failure_modes(self):
        """The wrapped estimator's anticipated contract failures."""
        return getattr(self._inner, "failure_modes", ())

    def estimate(
        self,
        policy,
        trace,
        old_policy=None,
        propensity_model=None,
        propensity_floor=None,
    ):
        """Delegate, rejecting the arguments the inner class lacks."""
        if propensity_model is not None:
            raise EstimatorError(
                f"estimator {self.name!r} is history-dependent and takes "
                "no propensity model; pass the logging policy as "
                "propensities= or rely on logged per-record propensities"
            )
        if propensity_floor is not None:
            raise EstimatorError(
                f"estimator {self.name!r} does not support "
                "propensity_floor="
            )
        return self._inner.estimate(policy, trace, old_policy=old_policy)


def _adapt_estimator(built):
    """Wrap non-:class:`OffPolicyEstimator` builds (``replay-dr``) so
    every registered estimator answers the same ``estimate()`` call."""
    if isinstance(built, OffPolicyEstimator):
        return built
    return _HistoryEstimatorAdapter(built)


def resolve_estimator_config(
    config: Union[OffPolicyEstimator, EstimatorConfig, Mapping[str, Any], str],
    registry: Optional[Registry] = None,
) -> OffPolicyEstimator:
    """Resolve an estimator config to a built estimator.

    Accepts a pre-built estimator (passed through), a registry name, an
    :class:`EstimatorConfig`, or its mapping form.  Config options other
    than ``clip``/``model`` are rejected by name — a silently dropped
    option would misreport what was evaluated.
    """
    registry = registry if registry is not None else default_registry
    if isinstance(config, OffPolicyEstimator):
        return config
    if isinstance(config, str):
        return _adapt_estimator(registry.build_estimator(config))
    if isinstance(config, Mapping):
        config = EstimatorConfig.from_dict(config)
    if not isinstance(config, EstimatorConfig):
        known = ", ".join(registry.estimator_names())
        raise EstimatorError(
            "estimator must be a name, an estimator instance, an "
            'EstimatorConfig, or a mapping like {"name": "dr", "options": '
            f'{{"clip": 10.0}}}}; got {type(config).__name__}. '
            f"Registered estimators: {known}"
        )
    options = dict(config.options)
    model = _resolve_model(options.pop("model", None), registry, config.name)
    clip = options.pop("clip", None)
    if options:
        raise EstimatorError(
            f"unknown option(s) {sorted(options)} for estimator "
            f"{config.name!r}; supported options: clip (weight threshold, "
            "for estimators that support clipping), model (reward-model "
            "name or {'name': ..., 'options': ...} mapping, for "
            "model-based estimators)"
        )
    return _adapt_estimator(
        registry.build_estimator(
            config.name,
            model=model,
            clip=float(clip) if clip is not None else None,
        )
    )
