"""REP003 fixture: concrete estimator without an estimation hook (line 6)."""

from repro.core.estimators.base import OffPolicyEstimator


class IncompleteEstimator(OffPolicyEstimator):
    """Concrete subclass that forgot to implement estimate/_estimate."""

    @property
    def name(self):
        """Estimator name."""
        return "incomplete"
