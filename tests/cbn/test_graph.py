"""Tests for Bayesian network structure, sampling, and inference."""

import numpy as np
import pytest

from repro.cbn.graph import BayesianNetwork, ConditionalTable
from repro.errors import SimulationError


def sprinkler_network():
    """The classic rain/sprinkler/wet-grass network."""
    network = BayesianNetwork()
    network.add_variable("rain", ("yes", "no"), rows={(): (0.2, 0.8)})
    network.add_variable(
        "sprinkler",
        ("on", "off"),
        parents=("rain",),
        rows={("yes",): (0.01, 0.99), ("no",): (0.4, 0.6)},
    )
    network.add_variable(
        "wet",
        ("wet", "dry"),
        parents=("sprinkler", "rain"),
        rows={
            ("on", "yes"): (0.99, 0.01),
            ("on", "no"): (0.9, 0.1),
            ("off", "yes"): (0.8, 0.2),
            ("off", "no"): (0.0, 1.0),
        },
    )
    return network


class TestConditionalTable:
    def test_row_normalised(self):
        table = ConditionalTable("v", ("a", "b"), (), {(): (0.3, 0.7)})
        np.testing.assert_allclose(table.row(()), [0.3, 0.7])

    def test_bad_row_sum_rejected(self):
        with pytest.raises(SimulationError):
            ConditionalTable("v", ("a", "b"), (), {(): (0.3, 0.3)})

    def test_negative_probability_rejected(self):
        with pytest.raises(SimulationError):
            ConditionalTable("v", ("a", "b"), (), {(): (-0.1, 1.1)})

    def test_wrong_width_rejected(self):
        with pytest.raises(SimulationError):
            ConditionalTable("v", ("a", "b"), (), {(): (1.0,)})

    def test_probability_lookup(self):
        table = ConditionalTable("v", ("a", "b"), (), {(): (0.3, 0.7)})
        assert table.probability("b", ()) == pytest.approx(0.7)
        with pytest.raises(SimulationError):
            table.probability("z", ())
        with pytest.raises(SimulationError):
            table.row(("unknown",))


class TestNetworkConstruction:
    def test_parents_must_exist(self):
        network = BayesianNetwork()
        with pytest.raises(SimulationError):
            network.add_variable(
                "child", ("a",), parents=("ghost",), rows={("x",): (1.0,)}
            )

    def test_duplicate_variable_rejected(self):
        network = BayesianNetwork()
        network.add_variable("v", ("a", "b"), rows={(): (0.5, 0.5)})
        with pytest.raises(SimulationError):
            network.add_variable("v", ("a", "b"), rows={(): (0.5, 0.5)})

    def test_incomplete_cpt_rejected(self):
        network = BayesianNetwork()
        network.add_variable("p", ("x", "y"), rows={(): (0.5, 0.5)})
        with pytest.raises(SimulationError):
            network.add_variable(
                "c", ("a", "b"), parents=("p",), rows={("x",): (0.5, 0.5)}
            )

    def test_edges(self):
        network = sprinkler_network()
        edges = set(network.edges())
        assert ("rain", "sprinkler") in edges
        assert ("sprinkler", "wet") in edges
        assert ("rain", "wet") in edges


class TestJointAndSampling:
    def test_joint_probability(self):
        network = sprinkler_network()
        probability = network.joint_probability(
            {"rain": "yes", "sprinkler": "off", "wet": "wet"}
        )
        assert probability == pytest.approx(0.2 * 0.99 * 0.8)

    def test_joint_requires_full_assignment(self):
        with pytest.raises(SimulationError):
            sprinkler_network().joint_probability({"rain": "yes"})

    def test_joint_sums_to_one(self):
        network = sprinkler_network()
        total = 0.0
        for rain in ("yes", "no"):
            for sprinkler in ("on", "off"):
                for wet in ("wet", "dry"):
                    total += network.joint_probability(
                        {"rain": rain, "sprinkler": sprinkler, "wet": wet}
                    )
        assert total == pytest.approx(1.0)

    def test_sampling_marginals(self):
        network = sprinkler_network()
        rng = np.random.default_rng(0)
        samples = [network.sample(rng) for _ in range(4000)]
        rain_rate = np.mean([s["rain"] == "yes" for s in samples])
        assert rain_rate == pytest.approx(0.2, abs=0.03)

    def test_sampling_with_evidence_clamps(self):
        network = sprinkler_network()
        rng = np.random.default_rng(0)
        sample = network.sample(rng, evidence={"rain": "yes"})
        assert sample["rain"] == "yes"


class TestInference:
    def test_prior_query(self):
        posterior = sprinkler_network().query("rain")
        assert posterior["yes"] == pytest.approx(0.2)

    def test_evidence_updates_posterior(self):
        network = sprinkler_network()
        prior = network.query("rain")["yes"]
        posterior = network.query("rain", {"wet": "wet"})["yes"]
        assert posterior > prior  # wet grass makes rain more likely

    def test_explaining_away(self):
        network = sprinkler_network()
        rain_given_wet = network.query("rain", {"wet": "wet"})["yes"]
        rain_given_wet_and_sprinkler = network.query(
            "rain", {"wet": "wet", "sprinkler": "on"}
        )["yes"]
        assert rain_given_wet_and_sprinkler < rain_given_wet

    def test_query_of_evidence_variable(self):
        posterior = sprinkler_network().query("rain", {"rain": "no"})
        assert posterior == {"yes": 0.0, "no": 1.0}

    def test_zero_probability_evidence_rejected(self):
        network = BayesianNetwork()
        network.add_variable("a", ("x", "y"), rows={(): (1.0, 0.0)})
        with pytest.raises(SimulationError):
            network.query("a", {"a": "z"})

    def test_expected_value(self):
        network = sprinkler_network()
        value = network.expected_value("rain", {"yes": 1.0, "no": 0.0})
        assert value == pytest.approx(0.2)

    def test_expected_value_missing_mapping(self):
        with pytest.raises(SimulationError):
            sprinkler_network().expected_value("rain", {"yes": 1.0})
