"""Static analysis for OPE correctness — the lint half of the contract layer.

Trace-driven evaluators go *silently* wrong: DM inherits model bias, IPS
explodes on tiny propensities, and DR is only doubly robust when its
inputs obey their contracts.  :mod:`repro.core.contracts` enforces those
contracts at runtime; this package enforces the coding disciplines that
keep them enforceable.  It is a whole-program analysis framework built
on stdlib ``ast`` only (no third-party dependencies): per-file rules run
over one AST at a time, while the dataflow tier reasons over a
project-wide symbol table and call graph (:mod:`repro.analysis.graph`).

Per-file rules (:mod:`repro.analysis.rules`):

========  ==============================================================
REP001    No unseeded ``np.random.default_rng()``, global ``np.random``
          draws, or stdlib ``random`` — every stochastic component takes
          an explicit ``np.random.Generator`` or seed, so every figure
          the harness regenerates is reproducible.  Autofixable.
REP002    No bare ``assert`` in library code — asserts vanish under
          ``python -O``, turning contract violations into silent
          inf/nan estimates; raise :mod:`repro.errors` exceptions.
REP003    Every concrete :class:`OffPolicyEstimator` subclass implements
          the estimation hook, is exported from
          ``core/estimators/__init__.py``, and keeps its ``__init__``
          keywords inside the canonical ``model=``/``clip=`` vocabulary.
REP004    No float-literal equality in estimator/model code — weights
          and propensities carry rounding error, so ``== 0.0`` branches
          are latent bias bugs.
REP005    Public functions/classes in ``repro.core`` carry docstrings —
          the core package is the documented contract surface.
REP006    No silent exception swallowing — handlers whose body only
          discards the error, and bare/over-broad ``except`` clauses
          that neither re-raise nor surface the failure; degradation
          must be reported, never hidden (see :mod:`repro.runtime`).
REP007    No per-record ``policy.propensity(...)`` / ``model.predict(...)``
          calls inside loops in ``core/estimators`` — the batch APIs
          (``propensity_batch``, ``predict_batch``, ``Trace.columns()``)
          evaluate the whole trace in one vectorised pass.
REP008    noqa hygiene (warning severity) — suppression comments must
          name registered rules; unknown ``REP`` codes are reported
          rather than silently suppressing everything.  Autofixable.
REP009    No mutable default arguments — a shared default leaks state
          across estimator runs and forked workers.
========  ==============================================================

Dataflow rules (:mod:`repro.analysis.dataflow`, whole-program):

========  ==============================================================
REP010    RNG taint — no unseeded RNG source reachable from estimator,
          bootstrap, or workload call paths (cross-module REP001).
REP011    Fork safety — no global rebinding or module-state mutation on
          process-pool worker paths, and no unpicklable lambdas handed
          to pool submissions; ``os.getpid()``-guarded re-init is the
          sanctioned idiom.
REP012    Batch/stream parity — a dense ``_estimate`` requires real
          ``_stream_chunk``/``_stream_finalize`` counterparts, and
          per-record ``propensity`` requires a ``propensity_batch``.
REP013    Contract coverage — per-record propensity consumption must sit
          behind a dominating ``check_propensities``/``check_trace``
          style validation on every call path.
========  ==============================================================

Run it via ``repro lint [--rules ...] [--format text|json|sarif]
[--cache [PATH]] [--fix [--dry-run]] [--baseline FILE] PATH`` or
programmatically through :func:`lint_paths`.  CI lints ``src/repro``
itself: the linter must pass on the codebase it ships in.
"""

from repro.analysis.baseline import (
    load_baseline,
    matches_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.dataflow import (
    BatchStreamParity,
    ContractCoverage,
    ForkSafety,
    RngTaint,
)
from repro.analysis.fixers import Fix, apply_fixes, plan_fixes, render_diff
from repro.analysis.graph import (
    ModuleIndex,
    ProjectIndex,
    build_module_index,
)
from repro.analysis.linter import (
    LintReport,
    LintRule,
    ModuleUnit,
    ProjectRule,
    Violation,
    build_rules,
    collect_python_files,
    lint_paths,
    register_rule,
    registered_rule_ids,
)
from repro.analysis.reporting import (
    exit_code_for,
    render,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.rules import (
    EstimatorInterfaceComplete,
    NoBareAssert,
    NoFloatEquality,
    NoMutableDefaultArgs,
    NoPerRecordEvaluationLoops,
    NoqaHygiene,
    NoSilentExceptionSwallowing,
    NoUnseededRandomness,
    PublicDocstrings,
)

__all__ = [
    "DEFAULT_CACHE_PATH",
    "Fix",
    "LintCache",
    "LintReport",
    "LintRule",
    "ModuleIndex",
    "ModuleUnit",
    "ProjectIndex",
    "ProjectRule",
    "Violation",
    "apply_fixes",
    "build_module_index",
    "build_rules",
    "collect_python_files",
    "exit_code_for",
    "lint_paths",
    "load_baseline",
    "matches_baseline",
    "plan_fixes",
    "register_rule",
    "registered_rule_ids",
    "render",
    "render_baseline",
    "render_diff",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
    "NoUnseededRandomness",
    "NoBareAssert",
    "EstimatorInterfaceComplete",
    "NoFloatEquality",
    "PublicDocstrings",
    "NoSilentExceptionSwallowing",
    "NoPerRecordEvaluationLoops",
    "NoqaHygiene",
    "NoMutableDefaultArgs",
    "RngTaint",
    "ForkSafety",
    "BatchStreamParity",
    "ContractCoverage",
]
