"""`repro repair`: manifest excision, source re-derivation, v1 upgrade."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    FORMAT_VERSION,
    ShardedTrace,
    load_manifest,
    repair_store,
    schema_hash,
    shard_filename,
    verify_store,
)
from repro.testing.faults import delete_shard, flip_shard_bit, truncate_shard

from .conftest import build_trace

RECORDS = 90
SHARD_SIZE = 30  # 3 shards


@pytest.fixture
def trace():
    return build_trace(n=RECORDS, with_states=True)


@pytest.fixture
def shard_dir(tmp_path, trace):
    directory = tmp_path / "shards"
    trace.to_shards(directory, shard_size=SHARD_SIZE)
    return directory


@pytest.fixture
def source(tmp_path, trace):
    path = tmp_path / "trace.jsonl"
    trace.to_jsonl(path)
    return path


def _downgrade_to_v1(shard_dir):
    manifest_path = shard_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 1
    manifest["schema_hash"] = schema_hash(manifest["schema"]["features"], version=1)
    del manifest["checksum_algorithm"]
    for entry in manifest["shards"]:
        del entry["sha256"]
        del entry["bytes"]
    manifest_path.write_text(json.dumps(manifest))


class TestExcision:
    def test_corrupt_shard_dropped_without_source(self, shard_dir):
        flip_shard_bit(shard_dir, 1)
        report = repair_store(shard_dir)
        assert report.mode == "repair"
        assert report.kept == [shard_filename(0), shard_filename(2)]
        ((dropped_file, reason),) = report.dropped
        assert dropped_file == shard_filename(1)
        assert "sha256" in reason
        assert report.dropped_records == SHARD_SIZE
        assert "record(s) lost" in report.render()
        assert verify_store(shard_dir).ok
        assert len(ShardedTrace(shard_dir)) == RECORDS - SHARD_SIZE

    def test_repair_refuses_to_drop_every_shard(self, shard_dir):
        for index in range(3):
            truncate_shard(shard_dir, index)
        with pytest.raises(StoreError, match="every shard"):
            repair_store(shard_dir)

    def test_manifest_offsets_stay_contiguous_after_excision(self, shard_dir):
        delete_shard(shard_dir, 0)
        repair_store(shard_dir)
        trace = ShardedTrace(shard_dir)
        # The surviving 60 records are addressable 0..59, no holes.
        assert len(trace) == 60
        assert [record.reward for record in trace] == [
            record.reward
            for record in build_trace(n=RECORDS, with_states=True)[SHARD_SIZE:]
        ]


class TestRederivation:
    def test_corrupt_shard_rebuilt_bit_identically_from_source(
        self, shard_dir, source
    ):
        pristine = (shard_dir / shard_filename(1)).read_bytes()
        flip_shard_bit(shard_dir, 1)
        report = repair_store(shard_dir, source=source)
        assert report.rederived == [shard_filename(1)]
        assert report.dropped == []
        assert (shard_dir / shard_filename(1)).read_bytes() == pristine
        assert verify_store(shard_dir).ok
        assert len(ShardedTrace(shard_dir)) == RECORDS

    def test_multiple_corrupt_shards_rebuilt_in_one_source_pass(
        self, shard_dir, source
    ):
        flip_shard_bit(shard_dir, 0)
        delete_shard(shard_dir, 2)
        report = repair_store(shard_dir, source=source)
        assert sorted(report.rederived) == [shard_filename(0), shard_filename(2)]
        assert verify_store(shard_dir).ok

    def test_short_source_is_a_typed_error(self, shard_dir, tmp_path):
        short = tmp_path / "short.jsonl"
        build_trace(n=RECORDS // 2, with_states=True).to_jsonl(short)
        flip_shard_bit(shard_dir, 2)
        with pytest.raises(StoreError, match="source"):
            repair_store(shard_dir, source=short)


class TestV1Upgrade:
    def test_upgrade_adds_checksums_and_bumps_version(self, shard_dir):
        _downgrade_to_v1(shard_dir)
        report = repair_store(shard_dir)
        assert report.mode == "upgrade"
        assert report.upgraded
        assert report.kept == [shard_filename(i) for i in range(3)]
        manifest = load_manifest(shard_dir)  # no v1 warning any more
        assert manifest["version"] == FORMAT_VERSION
        assert all("sha256" in entry for entry in manifest["shards"])
        after = verify_store(shard_dir)
        assert after.ok and after.checksummed

    def test_upgrade_with_corruption_drops_the_bad_shard(self, shard_dir):
        _downgrade_to_v1(shard_dir)
        truncate_shard(shard_dir, 1)
        report = repair_store(shard_dir)
        assert report.upgraded
        assert [name for name, _ in report.dropped] == [shard_filename(1)]
        assert verify_store(shard_dir).ok


class TestNothingToRepair:
    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StoreError, match="nothing to repair"):
            repair_store(empty)
