"""``repro.serve`` — OPE as a long-lived HTTP service.

The paper's pitch only pays off operationally if a counterfactual query
("what would policy B have done?") is as cheap as a dashboard lookup.
This package serves exactly that: a zero-dependency asyncio HTTP/1.1
server (in the spirit of the stdlib-only :mod:`repro.obs` tier) that
keeps named traces, the estimator registry, and recent results warm in
memory::

    repro serve registry.json --port 8321

    curl -s localhost:8321/v1/evaluate -d '{
      "trace": {"name": "demo"},
      "policy": {"kind": "uniform", "options": {"space": ["a", "b", "c"]}},
      "estimator": {"name": "dr"}
    }'

Layers, bottom up:

* :mod:`repro.serve.http` — minimal HTTP/1.1 request parsing and
  response rendering over asyncio streams;
* :mod:`repro.serve.cache` — the bounded-LRU result cache with TTL and
  per-request bypass;
* :mod:`repro.serve.app` — request validation, spec resolution,
  fingerprinting, in-flight coalescing, and the evaluate/compare
  endpoints (responses are bit-identical to direct :mod:`repro.api`
  calls — pinned by tests);
* :mod:`repro.serve.server` — the asyncio connection loop plus a
  background-thread harness for tests and benchmarks;
* :mod:`repro.serve.client` — a small stdlib client;
* :mod:`repro.serve.validate` — the response-payload schema checker
  (``python -m repro.serve.validate``);
* :mod:`repro.serve.bench` — the ``repro bench --serve`` load harness.

DESIGN.md §13 documents the request model, fingerprinting, and
cache-key derivation.
"""

from repro.serve.app import EvaluationService
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer, run_server

__all__ = [
    "BackgroundServer",
    "CacheStats",
    "EvaluationService",
    "ResultCache",
    "ServeClient",
    "run_server",
]
