"""Render :class:`~repro.analysis.linter.LintReport` as text or JSON."""

from __future__ import annotations

import json

from repro.analysis.linter import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line: RULE message`` per finding."""
    lines = [
        f"{violation.location}: {violation.rule_id} {violation.message}"
        for violation in report.violations
    ]
    if report.ok:
        lines.append(
            f"ok: {report.checked_files} file(s) clean under "
            f"{len(report.rule_ids)} rule(s)"
        )
    else:
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{len({v.path for v in report.violations})} file(s) "
            f"({report.checked_files} checked)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report; round-trips through ``json.loads``."""
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
