"""Tests for history-dependent policies."""

import numpy as np
import pytest

from repro.core.history import (
    FunctionHistoryPolicy,
    History,
    HistoryEntry,
    RecentRewardThresholdPolicy,
    StationaryAdapter,
)
from repro.core.policy import UniformRandomPolicy
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext
from repro.errors import PolicyError

SPACE = DecisionSpace(["low", "high"])
CONTEXT = ClientContext(x=0.0)


class TestHistory:
    def test_append_and_len(self):
        history = History()
        history.append(CONTEXT, "low", 1.0)
        history.append(CONTEXT, "high", 2.0)
        assert len(history) == 2
        assert history[0] == HistoryEntry(CONTEXT, "low", 1.0)

    def test_recent(self):
        history = History()
        for i in range(5):
            history.append(CONTEXT, "low", float(i))
        assert history.recent_rewards(3) == [2.0, 3.0, 4.0]
        assert history.recent_rewards(99) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert history.recent(0) == []

    def test_copy_independent(self):
        history = History()
        history.append(CONTEXT, "low", 1.0)
        clone = history.copy()
        clone.append(CONTEXT, "high", 2.0)
        assert len(history) == 1
        assert len(clone) == 2


class TestStationaryAdapter:
    def test_ignores_history(self):
        adapter = StationaryAdapter(UniformRandomPolicy(SPACE))
        empty = History()
        full = History()
        full.append(CONTEXT, "low", 5.0)
        assert adapter.probabilities(CONTEXT, empty) == adapter.probabilities(
            CONTEXT, full
        )

    def test_propensity(self):
        adapter = StationaryAdapter(UniformRandomPolicy(SPACE))
        assert adapter.propensity("low", CONTEXT, History()) == pytest.approx(0.5)

    def test_wrapped_accessor(self):
        base = UniformRandomPolicy(SPACE)
        assert StationaryAdapter(base).wrapped is base


class TestFunctionHistoryPolicy:
    def test_history_conditioning(self):
        def function(context, history):
            if len(history) > 0:
                return {"high": 1.0}
            return {"low": 1.0}

        policy = FunctionHistoryPolicy(SPACE, function)
        empty = History()
        assert policy.probabilities(CONTEXT, empty) == {"low": 1.0}
        seen = History()
        seen.append(CONTEXT, "low", 1.0)
        assert policy.probabilities(CONTEXT, seen) == {"high": 1.0}

    def test_invalid_distribution_rejected(self):
        policy = FunctionHistoryPolicy(SPACE, lambda c, h: {"low": 0.4})
        with pytest.raises(PolicyError):
            policy.probabilities(CONTEXT, History())


class TestRecentRewardThresholdPolicy:
    def _policy(self, **kwargs):
        defaults = dict(
            space=SPACE,
            aggressive="high",
            conservative="low",
            threshold=1.0,
            window=2,
            exploration=0.0,
        )
        defaults.update(kwargs)
        return RecentRewardThresholdPolicy(**defaults)

    def test_cold_start_conservative(self):
        policy = self._policy()
        assert policy.probabilities(CONTEXT, History()) == pytest.approx(
            {"low": 1.0, "high": 0.0}
        )

    def test_switches_on_high_rewards(self):
        policy = self._policy()
        history = History()
        history.append(CONTEXT, "low", 5.0)
        history.append(CONTEXT, "low", 5.0)
        distribution = policy.probabilities(CONTEXT, history)
        assert distribution["high"] == pytest.approx(1.0)

    def test_windowing(self):
        policy = self._policy(window=1)
        history = History()
        history.append(CONTEXT, "low", 5.0)
        history.append(CONTEXT, "low", 0.0)  # only this one is in the window
        assert policy.probabilities(CONTEXT, history)["low"] == pytest.approx(1.0)

    def test_exploration_floor(self):
        policy = self._policy(exploration=0.2)
        distribution = policy.probabilities(CONTEXT, History())
        assert distribution["high"] == pytest.approx(0.1)
        assert distribution["low"] == pytest.approx(0.9)

    def test_parameter_validation(self):
        with pytest.raises(PolicyError):
            self._policy(window=0)
        with pytest.raises(PolicyError):
            self._policy(exploration=1.0)
        with pytest.raises(PolicyError):
            RecentRewardThresholdPolicy(SPACE, "nope", "low", 1.0)

    def test_sample(self):
        policy = self._policy()
        rng = np.random.default_rng(0)
        assert policy.sample(CONTEXT, History(), rng) == "low"
