"""WISE-style reward modelling: a CBN learned from the trace.

WISE (Tariq et al., the paper's [38]) answers what-if CDN deployment
questions by learning a Causal Bayesian Network from traces and running
inference on it.  The paper classifies this as a Direct Method whose
reward model is the CBN (§3).  :class:`WiseRewardModel` packages that
pipeline as a :class:`~repro.core.models.RewardModel`:

1. bin the continuous reward (response time) into quantile bins,
2. learn a CBN over context features + decision factors + reward bin
   (BIC hill-climbing — on small traces the learned structure is
   *incomplete*, the Fig 4 failure mode),
3. predict r̂(c, d) as the expected bin mean given the evidence.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cbn.graph import BayesianNetwork
from repro.cbn.learning import StructureLearner
from repro.core.models.base import RewardModel
from repro.core.types import ClientContext, Decision, Trace
from repro.errors import ModelError

REWARD_VARIABLE = "__reward__"


class WiseRewardModel(RewardModel):
    """CBN-based reward model (the WISE evaluator's core).

    Parameters
    ----------
    decision_factors:
        Names for the components of the decision.  A scalar decision gets
        one name; a tuple decision (e.g. ``(fe, be)``) gets one name per
        element.
    reward_bins:
        Number of quantile bins for the reward variable.
    learner:
        Structure learner; default BIC hill-climbing with ≤3 parents.
    """

    def __init__(
        self,
        decision_factors: Sequence[str],
        reward_bins: int = 2,
        learner: Optional[StructureLearner] = None,
    ):
        super().__init__()
        if not decision_factors:
            raise ModelError("at least one decision factor name is required")
        if reward_bins < 2:
            raise ModelError(f"reward_bins must be >= 2, got {reward_bins}")
        self._decision_factors = tuple(decision_factors)
        self._reward_bins = reward_bins
        self._learner = learner or StructureLearner(max_parents=3)
        self._network: Optional[BayesianNetwork] = None
        self._bin_means: Dict[int, float] = {}
        self._bin_edges: Optional[np.ndarray] = None
        self._feature_names: Tuple[str, ...] = ()
        self._prediction_cache: Dict[Tuple[ClientContext, Decision], float] = {}

    @property
    def network(self) -> BayesianNetwork:
        """The learned CBN (inspectable: edges show what WISE inferred)."""
        if self._network is None:
            raise ModelError("model must be fit before reading the network")
        return self._network

    def _decision_values(self, decision: Decision) -> Tuple[Hashable, ...]:
        if len(self._decision_factors) == 1:
            return (decision,)
        if not isinstance(decision, tuple) or len(decision) != len(self._decision_factors):
            raise ModelError(
                f"decision {decision!r} does not match factors {self._decision_factors}"
            )
        return decision

    def _bin_of(self, reward: float) -> int:
        index = int(np.searchsorted(self._bin_edges, reward, side="right")) - 1
        return max(0, min(index, len(self._bin_means) - 1))

    def _fit(self, trace: Trace) -> None:
        self._prediction_cache.clear()
        self._feature_names = trace.feature_names()
        overlap = set(self._feature_names) & set(self._decision_factors)
        if overlap:
            raise ModelError(
                f"decision factor names {sorted(overlap)} collide with context features"
            )
        rewards = trace.rewards()
        quantiles = np.linspace(0.0, 1.0, self._reward_bins + 1)
        edges = np.quantile(rewards, quantiles)
        edges = np.unique(edges)
        if len(edges) < 2:
            raise ModelError("rewards are constant; cannot bin for a CBN model")
        self._bin_edges = edges[:-1]  # searchsorted uses left edges
        bin_count = len(edges) - 1
        assignments = np.clip(
            np.searchsorted(self._bin_edges, rewards, side="right") - 1,
            0,
            bin_count - 1,
        )
        self._bin_means = {
            b: float(rewards[assignments == b].mean())
            for b in range(bin_count)
            if np.any(assignments == b)
        }
        rows: List[Dict[str, Hashable]] = []
        for record, bin_index in zip(trace, assignments):
            row: Dict[str, Hashable] = {
                name: record.context[name] for name in self._feature_names
            }
            for name, value in zip(
                self._decision_factors, self._decision_values(record.decision)
            ):
                row[name] = value
            row[REWARD_VARIABLE] = int(bin_index)
            rows.append(row)
        variables = list(self._feature_names) + list(self._decision_factors)
        variables.append(REWARD_VARIABLE)
        self._network = self._learner.learn(rows, variables)

    def reward_parents(self) -> Tuple[str, ...]:
        """Parents of the reward node in the learned CBN.

        An *incomplete* structure (missing a true dependency, as in
        Fig 4) shows up here — and tests assert on it.
        """
        return self.network.parents(REWARD_VARIABLE)

    def _predict(self, context: ClientContext, decision: Decision) -> float:
        # Exact inference repeats for every (context, decision) pair the
        # estimators ask about; contexts are categorical so the pairs
        # collapse to a few dozen distinct queries per trace.
        key = (context, decision)
        cached = self._prediction_cache.get(key)
        if cached is not None:
            return cached
        evidence: Dict[str, Hashable] = {
            name: context[name] for name in self._feature_names
        }
        for name, value in zip(
            self._decision_factors, self._decision_values(decision)
        ):
            evidence[name] = value
        # Drop evidence values outside the learned domains (unseen
        # categories): the CBN cannot condition on them.
        usable = {
            name: value
            for name, value in evidence.items()
            if value in self._network.domain(name)
        }
        posterior = self._network.query(REWARD_VARIABLE, usable)
        value = float(
            sum(
                probability * self._bin_means[bin_index]
                for bin_index, probability in posterior.items()
            )
        )
        self._prediction_cache[key] = value
        return value
