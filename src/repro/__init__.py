"""repro — Doubly Robust trace-driven evaluation for data-driven networking.

A from-scratch reproduction of *"Biases in Data-Driven Networking, and
What to Do About Them"* (Bartulovic, Jiang, Balakrishnan, Sekar, Sinopoli
— HotNets 2017): off-policy estimators (Direct Method, IPS, Doubly
Robust and variants), the networking scenario substrates the paper draws
its examples from (ABR video streaming, WISE-style CDN configuration
with causal Bayesian networks, CFA-style QoE prediction, VIA-style relay
selection), and the experiment harness that regenerates every figure.

Quick start::

    from repro import api
    # build/load a trace, define old and new policies, then:
    report = api.evaluate(trace, new_policy, estimator="dr",
                          propensities=old_policy)
    print(report.value)
    print(api.compare(trace, new_policy, propensities=old_policy).render())

Subpackages
-----------
``repro.api``
    The evaluation facade: ``evaluate``/``compare`` plus the estimator
    registry.  Start here.
``repro.core``
    Estimators, policies, reward models, diagnostics (the contribution).
``repro.obs``
    Structured observability: spans, metrics, telemetry sinks.
``repro.netsim``
    Shared network-simulation substrate (servers, load curves, diurnal state).
``repro.abr``, ``repro.cbn``, ``repro.cfa``, ``repro.relay``
    One substrate per scenario in the paper (Figs 2-5, 7).
``repro.stateaware``
    §4 extensions: change-point detection, state-aware DR.
``repro.workloads``
    Synthetic workload/trace generators.
``repro.experiments``
    Drivers that regenerate the paper's figures and the ablations.
"""

from repro import api, core, obs
from repro.api import compare, evaluate
from repro.errors import (
    EstimatorError,
    ModelError,
    PolicyError,
    PropensityError,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "compare",
    "core",
    "evaluate",
    "obs",
    "ReproError",
    "TraceError",
    "PolicyError",
    "PropensityError",
    "EstimatorError",
    "ModelError",
    "SimulationError",
    "__version__",
]
