"""Tests for the whole-program symbol table and call graph (repro.analysis.graph)."""

from __future__ import annotations

import ast

from repro.analysis.graph import (
    ModuleIndex,
    ProjectIndex,
    build_module_index,
    module_name_for,
)


def index_of(source: str, display: str = "pkg/mod.py") -> ModuleIndex:
    parts = tuple(display.split("/"))
    return build_module_index(ast.parse(source), display, parts)


def project_of(**modules: str) -> ProjectIndex:
    return ProjectIndex(
        [index_of(source, display) for display, source in modules.items()]
    )


class TestModuleIndex:
    def test_functions_methods_and_classes_indexed(self):
        index = index_of(
            "def top():\n"
            "    helper()\n"
            "def helper():\n"
            "    pass\n"
            "class C:\n"
            "    def method(self):\n"
            "        return self.other()\n"
        )
        assert set(index.functions) == {"top", "helper", "C.method"}
        assert set(index.classes) == {"C"}
        assert index.functions["C.method"].owner_class == "C"
        assert index.functions["C.method"].is_method

    def test_imports_map_aliases_to_targets(self):
        index = index_of(
            "import numpy as np\n"
            "from pkg.other import thing\n"
        )
        assert index.imports["np"] == "numpy"
        assert index.imports["thing"] == "pkg.other.thing"

    def test_relative_import_anchored_at_package(self):
        index = index_of("from .sibling import helper\n", "pkg/mod.py")
        assert index.imports["helper"].endswith("sibling.helper")

    def test_rng_sources_recorded_with_lines(self):
        index = index_of(
            "import numpy as np\n"
            "def noisy():\n"
            "    return np.random.normal()\n"
            "def seeded(rng):\n"
            "    return rng.normal()\n"
        )
        assert index.functions["noisy"].rng_sources == (
            (3, "np.random.normal(...) global-state draw"),
        )
        assert index.functions["seeded"].rng_sources == ()

    def test_module_state_and_mutations(self):
        index = index_of(
            "_CACHE = {}\n"
            "def fill(key):\n"
            "    _CACHE[key] = key\n"
            "def rebind():\n"
            "    global _COUNT\n"
            "    _COUNT = 1\n"
        )
        assert "_CACHE" in index.module_state
        assert index.functions["fill"].module_mutations == ((3, "_CACHE"),)
        assert index.functions["rebind"].global_writes == ((6, "_COUNT"),)

    def test_pid_guard_and_propensity_reads(self):
        index = index_of(
            "import os\n"
            "def guarded(trace):\n"
            "    os.getpid()\n"
            "    return trace.propensities\n"
        )
        info = index.functions["guarded"]
        assert info.pid_guarded
        assert info.propensity_reads == (4,)

    def test_json_round_trip(self):
        index = index_of(
            "import numpy as np\n"
            "__all__ = ['top']\n"
            "def top():\n"
            "    return np.random.default_rng()\n"
        )
        restored = ModuleIndex.from_json(index.to_json())
        assert restored.display == index.display
        assert set(restored.functions) == set(index.functions)
        assert restored.exports == ["top"]
        assert (
            restored.functions["top"].rng_sources
            == index.functions["top"].rng_sources
        )


class TestModuleNameFor:
    def test_anchored_at_repro_package(self):
        assert (
            module_name_for(("src", "repro", "core", "ips.py"))
            == "repro.core.ips"
        )

    def test_init_keeps_package_name(self):
        assert (
            module_name_for(("src", "repro", "core", "__init__.py"))
            == "repro.core"
        )

    def test_fallback_outside_known_anchors(self):
        assert (
            module_name_for(("a", "b", "fixtures", "dataflow", "x.py"))
            == "fixtures.dataflow.x"
        )


class TestCallGraph:
    def test_local_call_edge(self):
        project = project_of(
            **{"pkg/a.py": "def f():\n    g()\ndef g():\n    pass\n"}
        )
        edges = project.edges()
        assert edges["pkg/a.py::f"] == {"pkg/a.py::g"}

    def test_cross_module_from_import(self):
        project = project_of(
            **{
                "pkg/a.py": "from pkg.b import helper\ndef f():\n    helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
            }
        )
        assert project.edges()["pkg/a.py::f"] == {"pkg/b.py::helper"}

    def test_module_attribute_call_through_alias(self):
        project = project_of(
            **{
                "pkg/a.py": "import pkg.b as b\ndef f():\n    b.helper()\n",
                "pkg/b.py": "def helper():\n    pass\n",
            }
        )
        assert project.edges()["pkg/a.py::f"] == {"pkg/b.py::helper"}

    def test_self_dispatch_includes_subclass_overrides(self):
        project = project_of(
            **{
                "pkg/base.py": (
                    "class Base:\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                    "    def step(self):\n"
                    "        pass\n"
                ),
                "pkg/sub.py": (
                    "from pkg.base import Base\n"
                    "class Sub(Base):\n"
                    "    def step(self):\n"
                    "        pass\n"
                ),
            }
        )
        targets = project.edges()["pkg/base.py::Base.run"]
        assert "pkg/base.py::Base.step" in targets
        assert "pkg/sub.py::Sub.step" in targets  # virtual dispatch

    def test_reachability_and_reverse_markers(self):
        project = project_of(
            **{
                "pkg/a.py": (
                    "def entry():\n"
                    "    mid()\n"
                    "def mid():\n"
                    "    sink()\n"
                    "def sink():\n"
                    "    pass\n"
                    "def lonely():\n"
                    "    pass\n"
                )
            }
        )
        reachable = project.reachable_from({"pkg/a.py::entry"})
        assert "pkg/a.py::sink" in reachable
        assert "pkg/a.py::lonely" not in reachable
        carriers = project.transitive_markers({"pkg/a.py::sink"})
        assert carriers == {
            "pkg/a.py::sink",
            "pkg/a.py::mid",
            "pkg/a.py::entry",
        }

    def test_entry_points_are_uncalled_nodes(self):
        project = project_of(
            **{"pkg/a.py": "def entry():\n    inner()\ndef inner():\n    pass\n"}
        )
        assert project.entry_points() == {"pkg/a.py::entry"}

    def test_descends_from_matches_unindexed_base_by_name(self):
        project = project_of(
            **{
                "pkg/est.py": (
                    "from repro.core.estimators.base import OffPolicyEstimator\n"
                    "class Mine(OffPolicyEstimator):\n"
                    "    def _estimate(self, policy, trace, source):\n"
                    "        return 0.0\n"
                )
            }
        )
        assert project.descends_from("Mine", "OffPolicyEstimator")
        assert not project.descends_from("Mine", "SomethingElse")
