"""Throughput predictors used by rate-based and MPC controllers.

All predictors consume the history of *observed* throughputs — which, per
Fig 2, already bakes in the bitrate-dependence bias: they estimate future
observed throughput, implicitly assuming it is independent of the next
chunk's bitrate.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import SimulationError


class ThroughputPredictor(abc.ABC):
    """Predicts the next chunk's throughput from past observations."""

    @abc.abstractmethod
    def predict(self, observed_mbps: Sequence[float]) -> float:
        """Prediction given past observed throughputs (oldest first).

        Implementations must raise :class:`SimulationError` on an empty
        history — the caller decides the cold-start behaviour.
        """

    def _require_history(self, observed_mbps: Sequence[float]) -> None:
        if not observed_mbps:
            raise SimulationError("throughput prediction needs at least one sample")


class LastSamplePredictor(ThroughputPredictor):
    """Next throughput = most recent observation."""

    def predict(self, observed_mbps: Sequence[float]) -> float:
        self._require_history(observed_mbps)
        return float(observed_mbps[-1])


class HarmonicMeanPredictor(ThroughputPredictor):
    """Harmonic mean of the last *window* samples (MPC's robust default).

    The harmonic mean damps the effect of transient spikes, since
    download time is inversely proportional to throughput.
    """

    def __init__(self, window: int = 5):
        if window <= 0:
            raise SimulationError(f"window must be positive, got {window}")
        self._window = window

    def predict(self, observed_mbps: Sequence[float]) -> float:
        self._require_history(observed_mbps)
        recent = np.asarray(observed_mbps[-self._window:], dtype=float)
        if np.any(recent <= 0):
            raise SimulationError("observed throughputs must be positive")
        return float(len(recent) / np.sum(1.0 / recent))


class EWMAPredictor(ThroughputPredictor):
    """Exponentially weighted moving average (FESTIVE-style smoothing)."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise SimulationError(f"alpha must lie in (0, 1], got {alpha}")
        self._alpha = alpha

    def predict(self, observed_mbps: Sequence[float]) -> float:
        self._require_history(observed_mbps)
        estimate = float(observed_mbps[0])
        for sample in observed_mbps[1:]:
            estimate = self._alpha * float(sample) + (1.0 - self._alpha) * estimate
        return estimate
