"""Tests for the structured run records (repro.runtime.records)."""

from __future__ import annotations

import json

import pytest

from repro.errors import LedgerError
from repro.runtime import (
    STATUS_FAILED,
    STATUS_OK,
    RunOutcome,
    RunRecord,
    coerce_outcome,
)


class TestRunOutcome:
    def test_coerce_plain_mapping(self):
        outcome = coerce_outcome({"dm": 0.25, "dr": 0.1})
        assert isinstance(outcome, RunOutcome)
        assert outcome.errors == {"dm": 0.25, "dr": 0.1}
        assert outcome.degradations == {}
        assert outcome.quarantined == {}

    def test_coerce_passes_through_outcome(self):
        outcome = RunOutcome(
            errors={"dr": 0.1},
            degradations={"dr": "dm"},
            quarantined={"bad-propensity": 3},
        )
        assert coerce_outcome(outcome) is outcome


class TestRunRecord:
    def test_ok_round_trips_through_json_exactly(self):
        record = RunRecord(
            index=3,
            seed=123456789,
            status=STATUS_OK,
            attempts=2,
            duration=0.125,
            errors={"dm": 0.1234567890123456789, "dr": 1 / 3},
            degradations={"dr": "snips"},
            quarantined={"non-finite-reward": 2},
        )
        # json floats serialise via repr (shortest exact round-trip), so
        # the replayed record is bit-identical — the property resume
        # relies on.
        replayed = RunRecord.from_json(
            json.loads(json.dumps(record.to_json())), "test"
        )
        assert replayed == record
        assert replayed.errors["dr"] == record.errors["dr"]

    def test_failed_record_round_trips(self):
        record = RunRecord(
            index=0,
            seed=7,
            status=STATUS_FAILED,
            attempts=3,
            duration=0.5,
            error_type="EstimatorError",
            error_message="no overlap",
        )
        replayed = RunRecord.from_json(record.to_json(), "test")
        assert replayed == record
        assert not replayed.ok

    def test_ok_property(self):
        ok = RunRecord(index=0, seed=1, status=STATUS_OK, attempts=1, duration=0.0)
        failed = RunRecord(
            index=0, seed=1, status=STATUS_FAILED, attempts=1, duration=0.0
        )
        assert ok.ok and not failed.ok

    def test_to_json_omits_empty_optionals(self):
        payload = RunRecord(
            index=0, seed=1, status=STATUS_OK, attempts=1, duration=0.0
        ).to_json()
        assert "error_type" not in payload
        assert "degradations" not in payload
        assert "quarantined" not in payload

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"index": 0},
            {"index": "x", "seed": 1, "status": "ok", "attempts": 1, "duration": 0.0},
            {"index": 0, "seed": 1, "status": "bogus", "attempts": 1, "duration": 0.0},
        ],
    )
    def test_malformed_payload_raises_ledger_error(self, payload):
        with pytest.raises(LedgerError):
            RunRecord.from_json(payload, "test")
