"""Tests for the VIA relay-selection scenario (Fig 3)."""

import numpy as np
import pytest

from repro import core
from repro.core.types import ClientContext
from repro.errors import SimulationError
from repro.relay.scenario import RelayScenario


@pytest.fixture
def scenario():
    return RelayScenario(n_calls=1200)


class TestGroundTruth:
    def test_nat_penalty_applied(self, scenario):
        nat = ClientContext(as_pair="as-pair-0", nat="nat")
        public = ClientContext(as_pair="as-pair-0", nat="public")
        assert scenario.true_mean_quality(public, "direct") - scenario.true_mean_quality(
            nat, "direct"
        ) == pytest.approx(scenario.nat_penalty)

    def test_effects_deterministic(self):
        a = RelayScenario(effect_seed=1)
        b = RelayScenario(effect_seed=1)
        context = ClientContext(as_pair="as-pair-0", nat="public")
        assert a.true_mean_quality(context, "relay-0") == b.true_mean_quality(
            context, "relay-0"
        )

    def test_unknown_path_rejected(self, scenario):
        with pytest.raises(SimulationError):
            scenario.true_mean_quality(
                ClientContext(as_pair="as-pair-0", nat="nat"), "ghost-path"
            )


class TestPolicies:
    def test_old_policy_relays_nat_more(self, scenario):
        old = scenario.old_policy()
        nat = ClientContext(as_pair="as-pair-0", nat="nat")
        public = ClientContext(as_pair="as-pair-0", nat="public")
        nat_relay = 1.0 - old.probabilities(nat)["direct"]
        public_relay = 1.0 - old.probabilities(public)["direct"]
        assert nat_relay == pytest.approx(0.9)
        assert public_relay == pytest.approx(0.05)

    def test_new_policy_nat_blind(self, scenario):
        new = scenario.new_policy()
        nat = ClientContext(as_pair="as-pair-0", nat="nat")
        public = ClientContext(as_pair="as-pair-0", nat="public")
        assert new.probabilities(nat) == new.probabilities(public)

    def test_new_policy_probability_validation(self, scenario):
        with pytest.raises(SimulationError):
            scenario.new_policy(relay_probability=0.0)


class TestTrace:
    def test_selection_bias_present(self, scenario, rng):
        """Relayed calls should be predominantly NAT-ed in the log."""
        trace = scenario.generate_trace(rng)
        relayed = trace.filter(lambda r: r.decision != "direct")
        nat_share = np.mean([r.context["nat"] == "nat" for r in relayed])
        assert nat_share > 0.85

    def test_propensities_logged(self, scenario, rng):
        trace = scenario.generate_trace(rng)
        assert trace.has_propensities()

    def test_via_model_is_nat_blind(self, scenario, rng):
        trace = scenario.generate_trace(rng)
        model = scenario.via_model().fit(trace)
        assert model.key_features == ("as_pair",)
        nat = ClientContext(as_pair="as-pair-0", nat="nat")
        public = ClientContext(as_pair="as-pair-0", nat="public")
        assert model.predict(nat, "relay-0") == model.predict(public, "relay-0")

    def test_full_model_separates_nat(self, scenario, rng):
        trace = scenario.generate_trace(rng)
        model = scenario.full_model().fit(trace)
        nat = ClientContext(as_pair="as-pair-0", nat="nat")
        public = ClientContext(as_pair="as-pair-0", nat="public")
        assert model.predict(public, "direct") > model.predict(nat, "direct")


class TestFig3Mechanism:
    def test_via_underestimates_dr_corrects(self, scenario, rng):
        """The paper's Fig 3 bias: per-pair relay averages are dragged
        down by NAT-ed calls; DR recovers the true value."""
        trace = scenario.generate_trace(rng)
        old, new = scenario.old_policy(), scenario.new_policy()
        truth = scenario.ground_truth_value(new, trace)
        via = core.DirectMethod(scenario.via_model()).estimate(new, trace)
        dr = core.DoublyRobust(scenario.via_model()).estimate(
            new, trace, old_policy=old
        )
        assert via.value < truth  # biased downward by NAT selection
        assert abs(dr.value - truth) < abs(via.value - truth)

    def test_validation(self):
        with pytest.raises(SimulationError):
            RelayScenario(n_calls=0)
        with pytest.raises(SimulationError):
            RelayScenario(nat_fraction=1.0)
        with pytest.raises(SimulationError):
            RelayScenario(relay_probability_nat=0.0)
