"""Diurnal (time-of-day) system-state modelling.

Paper §4.1, "System state of the world": a trace collected during early
morning hours does not predict peak-hour performance.  This module
provides load profiles over a 24-hour cycle and the state labelling used
by the state-aware estimators in :mod:`repro.stateaware`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class DiurnalProfile:
    """Piecewise-constant load multiplier over the 24-hour day.

    ``boundaries`` are hour marks (ascending, within [0, 24)); segment i
    spans ``[boundaries[i], boundaries[i+1])`` (wrapping at midnight) and
    carries ``multipliers[i]``.  A multiplier of 1.0 is the baseline; the
    default profile makes evening peak hours carry twice the morning load.
    """

    boundaries: Tuple[float, ...] = (0.0, 7.0, 17.0, 23.0)
    multipliers: Tuple[float, ...] = (0.6, 1.0, 2.0, 0.8)

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.multipliers):
            raise SimulationError(
                f"{len(self.boundaries)} boundaries but "
                f"{len(self.multipliers)} multipliers"
            )
        if not self.boundaries:
            raise SimulationError("profile needs at least one segment")
        if any(not 0.0 <= b < 24.0 for b in self.boundaries):
            raise SimulationError("boundaries must lie in [0, 24)")
        if list(self.boundaries) != sorted(self.boundaries):
            raise SimulationError("boundaries must be ascending")
        if any(m <= 0 for m in self.multipliers):
            raise SimulationError("multipliers must be positive")

    def multiplier(self, hour: float) -> float:
        """Load multiplier at *hour* (wrapped into [0, 24))."""
        wrapped = hour % 24.0
        chosen = self.multipliers[-1]  # wrap-around segment before boundaries[0]
        for boundary, multiplier in zip(self.boundaries, self.multipliers):
            if wrapped >= boundary:
                chosen = multiplier
            else:
                break
        return chosen

    def segment_label(self, hour: float) -> str:
        """A coarse human label for *hour*'s segment."""
        multiplier = self.multiplier(hour)
        sorted_multipliers = sorted(set(self.multipliers))
        if multiplier == sorted_multipliers[-1]:
            return "peak"
        if multiplier == sorted_multipliers[0]:
            return "off-peak"
        return "normal"


def peak_over_morning_ratio(profile: DiurnalProfile) -> float:
    """Ratio of the maximum to minimum load multiplier.

    This is the "transition function" scale of §4.3 ("peak-hour
    performance is on average 20% worse than morning-hour performance")
    expressed as a load ratio.
    """
    return max(profile.multipliers) / min(profile.multipliers)


class DiurnalSampler:
    """Samples arrival hours with density proportional to the profile.

    Used by workload generators so that traces collected "all day" have
    more records from high-load hours, while a morning-only trace is a
    simple filter on the sampled hour.
    """

    def __init__(self, profile: DiurnalProfile, resolution: int = 96):
        if resolution < len(profile.boundaries):
            raise SimulationError(
                "resolution must be at least the number of profile segments"
            )
        self._profile = profile
        hours = np.linspace(0.0, 24.0, resolution, endpoint=False)
        densities = np.asarray([profile.multiplier(h) for h in hours])
        self._hours = hours
        self._probabilities = densities / densities.sum()
        self._step = 24.0 / resolution

    @property
    def profile(self) -> DiurnalProfile:
        """The underlying load profile."""
        return self._profile

    def sample_hour(self, rng: np.random.Generator) -> float:
        """One arrival hour, uniform within its resolution bucket."""
        index = int(rng.choice(len(self._hours), p=self._probabilities))
        return float(self._hours[index] + rng.uniform(0.0, self._step))

    def sample_hours(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """*count* arrival hours."""
        return np.asarray([self.sample_hour(rng) for _ in range(count)])
