"""Tests for the command-line interface."""

import pytest

from repro.cli import DEFAULT_RUNS, EXPERIMENTS, main


class TestCli:
    def test_every_experiment_has_default_runs(self):
        assert set(EXPERIMENTS) == set(DEFAULT_RUNS)

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig7a", "fig7b", "fig7c", "abl-rand", "state"):
            assert name in output

    def test_run_command(self, capsys):
        assert main(["run", "fig7c", "--runs", "2", "--seed", "9"]) == 0
        output = capsys.readouterr().out
        assert "fig7c-variance" in output
        assert "dr" in output

    def test_run_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
