"""Offline policy optimization on top of DR evaluation.

The paper's reference [9] (Dudík, Langford, Li) pairs doubly robust
*evaluation* with policy *optimization*: use the per-record DR scores as
unbiased per-decision reward estimates and train/select a policy on
them.  This module provides the tabular version appropriate for the
small discrete decision spaces of networking scenarios:

* :func:`dr_decision_scores` — per-(context-bucket, decision) DR reward
  estimates from a trace.
* :class:`DRPolicyLearner` — learns a greedy tabular policy from those
  scores, with optional exploration mixed in so the *next* trace stays
  evaluable (closing the loop the paper's Fig 1 depicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.core.models.base import RewardModel
from repro.core.policy import EpsilonGreedyPolicy, Policy, TabularPolicy
from repro.core.propensity import PropensityModel, resolve_propensity_source
from repro.core.spaces import DecisionSpace
from repro.core.types import Decision, Trace
from repro.errors import EstimatorError

BucketKey = Tuple[Hashable, ...]


def dr_decision_scores(
    trace: Trace,
    space: DecisionSpace,
    model: RewardModel,
    key_features: Sequence[str],
    old_policy: Optional[Policy] = None,
    propensity_model: Optional[PropensityModel] = None,
) -> Dict[BucketKey, Dict[Decision, float]]:
    """Per-bucket, per-decision DR reward estimates.

    For each context bucket ``b`` (defined by *key_features*) and
    decision ``d``, computes the DR estimate of ``E[r | b, do(d)]``:

        score(b, d) = mean over bucket records of
            r̂(c_k, d) + 1[d_k == d] / mu_old(d_k|c_k) · (r_k − r̂(c_k, d_k))

    i.e. the DR value of the *deterministic* policy "always d", restricted
    to the bucket.  The model is fit on the trace if not already fitted.
    """
    if len(trace) == 0:
        raise EstimatorError("cannot score decisions from an empty trace")
    if not model.fitted:
        model.fit(trace)
    source = resolve_propensity_source(trace, old_policy, propensity_model)

    sums: Dict[BucketKey, Dict[Decision, float]] = {}
    counts: Dict[BucketKey, int] = {}
    for index, record in enumerate(trace):
        bucket = record.context.values_for(key_features)
        if bucket not in sums:
            sums[bucket] = {decision: 0.0 for decision in space}
            counts[bucket] = 0
        counts[bucket] += 1
        propensity = source.propensity(record, index)
        residual = record.reward - model.predict(record.context, record.decision)
        for decision in space:
            term = model.predict(record.context, decision)
            if record.decision == decision:
                term += residual / propensity
            sums[bucket][decision] += term
    return {
        bucket: {
            decision: total / counts[bucket]
            for decision, total in decision_sums.items()
        }
        for bucket, decision_sums in sums.items()
    }


@dataclass(frozen=True)
class LearnedPolicy:
    """Outcome of one policy-learning run."""

    policy: Policy
    greedy_table: Dict[BucketKey, Decision]
    scores: Dict[BucketKey, Dict[Decision, float]]

    def decision_for(self, bucket: BucketKey) -> Decision:
        """The learned greedy decision for *bucket*."""
        try:
            return self.greedy_table[bucket]
        except KeyError:
            raise EstimatorError(f"no learned decision for bucket {bucket!r}") from None


class DRPolicyLearner:
    """Learns a tabular policy by maximising per-bucket DR scores.

    Parameters
    ----------
    space:
        The decision space.
    model:
        Reward model for the DR scores' DM half (fresh/unfitted is fine).
    key_features:
        Context features defining the policy's buckets.  Coarser buckets
        mean more data per score but a less personalised policy.
    exploration:
        Epsilon mixed into the learned policy (see §4.1: operators should
        keep logging randomness so the next round of evaluation works).
    """

    def __init__(
        self,
        space: DecisionSpace,
        model: RewardModel,
        key_features: Sequence[str],
        exploration: float = 0.05,
    ):
        if not 0.0 <= exploration <= 1.0:
            raise EstimatorError(
                f"exploration must lie in [0, 1], got {exploration}"
            )
        self._space = space
        self._model = model
        self._key_features = tuple(key_features)
        self._exploration = exploration

    def learn(
        self,
        trace: Trace,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
    ) -> LearnedPolicy:
        """Learn a policy from *trace*.

        Unseen buckets at decision time fall back to the globally-best
        decision (highest trace-wide DR score).
        """
        scores = dr_decision_scores(
            trace,
            self._space,
            self._model,
            self._key_features,
            old_policy=old_policy,
            propensity_model=propensity_model,
        )
        greedy: Dict[BucketKey, Decision] = {}
        global_totals: Dict[Decision, float] = {d: 0.0 for d in self._space}
        for bucket, decision_scores in scores.items():
            greedy[bucket] = max(decision_scores, key=decision_scores.get)
            for decision, score in decision_scores.items():
                global_totals[decision] += score
        global_best = max(global_totals, key=global_totals.get)

        table = {
            bucket: {decision: 1.0} for bucket, decision in greedy.items()
        }
        base = TabularPolicy(
            self._space,
            key_features=self._key_features,
            table=table,
            default={global_best: 1.0},
        )
        policy: Policy = base
        if self._exploration > 0.0:
            policy = EpsilonGreedyPolicy(base, self._exploration)
        return LearnedPolicy(policy=policy, greedy_table=greedy, scores=scores)
