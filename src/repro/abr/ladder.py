"""Bitrate ladders and chunked video manifests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class BitrateLadder:
    """An ascending ladder of encoded bitrates (Mbps) for one video.

    The paper's Fig 7b experiment uses "five bitrate levels"; the default
    ladder mirrors a typical HLS/DASH encoding (360p..1080p-ish).
    """

    bitrates_mbps: Tuple[float, ...] = (0.35, 0.75, 1.5, 3.0, 5.0)

    def __post_init__(self) -> None:
        if len(self.bitrates_mbps) < 2:
            raise SimulationError("a ladder needs at least two bitrates")
        if any(b <= 0 for b in self.bitrates_mbps):
            raise SimulationError("bitrates must be positive")
        if list(self.bitrates_mbps) != sorted(self.bitrates_mbps):
            raise SimulationError("bitrates must be ascending")
        if len(set(self.bitrates_mbps)) != len(self.bitrates_mbps):
            raise SimulationError("bitrates must be distinct")

    def __len__(self) -> int:
        return len(self.bitrates_mbps)

    def __iter__(self):
        return iter(self.bitrates_mbps)

    @property
    def lowest(self) -> float:
        """The minimum bitrate."""
        return self.bitrates_mbps[0]

    @property
    def highest(self) -> float:
        """The maximum bitrate."""
        return self.bitrates_mbps[-1]

    def index_of(self, bitrate: float) -> int:
        """Position of *bitrate* in the ladder."""
        try:
            return self.bitrates_mbps.index(bitrate)
        except ValueError:
            raise SimulationError(f"bitrate {bitrate} not on the ladder") from None

    def clamp(self, index: int) -> int:
        """Clamp a ladder index into range."""
        return max(0, min(index, len(self.bitrates_mbps) - 1))

    def highest_below(self, throughput_mbps: float) -> float:
        """The highest bitrate not exceeding *throughput_mbps*.

        Falls back to the lowest rung when even that exceeds the
        throughput (the player must pick something).
        """
        candidate = self.bitrates_mbps[0]
        for bitrate in self.bitrates_mbps:
            if bitrate <= throughput_mbps:
                candidate = bitrate
        return candidate


@dataclass(frozen=True)
class VideoManifest:
    """A chunked video: ladder + chunk duration + chunk count.

    Fig 7b: "a video session with 100 chunks and five bitrate levels".
    """

    ladder: BitrateLadder = BitrateLadder()
    chunk_seconds: float = 4.0
    chunk_count: int = 100

    def __post_init__(self) -> None:
        if self.chunk_seconds <= 0:
            raise SimulationError(
                f"chunk_seconds must be positive, got {self.chunk_seconds}"
            )
        if self.chunk_count <= 0:
            raise SimulationError(
                f"chunk_count must be positive, got {self.chunk_count}"
            )

    def chunk_megabits(self, bitrate_mbps: float) -> float:
        """Size of one chunk encoded at *bitrate_mbps*, in megabits."""
        return bitrate_mbps * self.chunk_seconds
