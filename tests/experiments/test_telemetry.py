"""Telemetry determinism: the side-channel never disturbs — or varies.

Two contracts are pinned here.  First, telemetry is a pure side-channel:
enabling ``telemetry_path`` changes neither the ledger bytes nor the
aggregated result.  Second, the telemetry itself is deterministic:
sequential, worker-pool, and crash/resume sweeps emit byte-identical
telemetry files, because spans are counted (not timed) in the
deterministic payload and timing metrics are stripped.
"""

from __future__ import annotations

import json

import pytest

from repro import api, core
from repro.experiments.harness import _fork_available, run_repeated
from repro.obs.metrics import is_timing_metric
from repro.obs.validate import validate_telemetry_file
from repro.runtime import EstimatorFallbackChain
from repro.core.types import Trace, TraceRecord

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable on this platform"
)

RUNS = 6
SEED = 2017

_SPACE = core.DecisionSpace(["a", "b", "c"])


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision]


def _make_trace(rng, n=60, keep_propensity=True):
    old = core.UniformRandomPolicy(_SPACE)
    records = []
    for _ in range(n):
        context = core.ClientContext(x=float(rng.integers(0, 5)))
        decision = old.sample(context, rng)
        reward = _truth(context, decision) + rng.normal(0.0, 0.2)
        records.append(
            TraceRecord(
                context=context,
                decision=decision,
                reward=float(reward),
                propensity=old.propensity(decision, context)
                if keep_propensity
                else None,
            )
        )
    return Trace(records)


def ope_run(rng):
    """One seed of a realistic OPE workload: weights metrics + spans."""
    trace = _make_trace(rng)
    policy = core.DeterministicPolicy(_SPACE, lambda c: "c")
    dr = api.evaluate(trace, policy, estimator="dr", diagnostics=False)
    snips = api.evaluate(trace, policy, estimator="snips", diagnostics=False)
    return {"dr": abs(dr.value - 3.0), "snips": abs(snips.value - 3.0)}


def degrading_run(rng):
    """A propensity-free trace forces the chain to degrade dr>snips>dm."""
    trace = _make_trace(rng, keep_propensity=False)
    policy = core.DeterministicPolicy(_SPACE, lambda c: "c")
    chain = EstimatorFallbackChain(
        [
            core.DoublyRobust(core.TabularMeanModel()),
            core.SelfNormalizedIPS(),
            core.DirectMethod(core.TabularMeanModel()),
        ]
    )
    result = chain.estimate(policy, trace)
    return {"chain": abs(result.value - 3.0)}


def sweep(workers, tmp_path, tag, resume=False, run=ope_run):
    return run_repeated(
        "telemetry-equivalence",
        run,
        runs=RUNS,
        seed=SEED,
        ledger_path=tmp_path / f"{tag}.ledger.jsonl",
        telemetry_path=tmp_path / f"{tag}.telemetry.jsonl",
        resume=resume,
        workers=workers,
    )


class TestTelemetryIsASideChannel:
    def test_ledger_bytes_unchanged_by_telemetry(self, tmp_path):
        bare = tmp_path / "bare.jsonl"
        run_repeated(
            "telemetry-equivalence",
            ope_run,
            runs=RUNS,
            seed=SEED,
            ledger_path=bare,
        )
        sweep(workers=1, tmp_path=tmp_path, tag="instrumented")
        instrumented = tmp_path / "instrumented.ledger.jsonl"
        assert instrumented.read_bytes() == bare.read_bytes()

    def test_payload_has_metrics_and_spans_but_no_timings(self, tmp_path):
        result = sweep(workers=1, tmp_path=tmp_path, tag="payload")
        assert result.telemetry is not None
        histograms = result.telemetry["metrics"]["histograms"]
        assert histograms["ope.weights.ess"]["count"] > 0
        assert any("api.evaluate" in key for key in result.telemetry["spans"])
        assert "harness.run" in result.telemetry["spans"]
        names = list(histograms) + list(
            result.telemetry["metrics"].get("counters", {})
        )
        assert not any(is_timing_metric(name) for name in names)

    def test_emitted_file_validates(self, tmp_path):
        sweep(workers=1, tmp_path=tmp_path, tag="valid")
        header = validate_telemetry_file(tmp_path / "valid.telemetry.jsonl")
        assert header["experiment"] == "telemetry-equivalence"
        assert header["runs"] == RUNS


@needs_fork
class TestCrossModeByteIdentity:
    def test_parallel_matches_sequential(self, tmp_path):
        sequential = sweep(workers=1, tmp_path=tmp_path, tag="sequential")
        parallel = sweep(workers=2, tmp_path=tmp_path, tag="parallel")
        assert parallel.telemetry == sequential.telemetry
        assert parallel.render() == sequential.render()
        assert (tmp_path / "parallel.telemetry.jsonl").read_bytes() == (
            tmp_path / "sequential.telemetry.jsonl"
        ).read_bytes()
        assert (tmp_path / "parallel.ledger.jsonl").read_bytes() == (
            tmp_path / "sequential.ledger.jsonl"
        ).read_bytes()

    def test_resume_matches_uninterrupted(self, tmp_path):
        reference = sweep(workers=1, tmp_path=tmp_path, tag="reference")
        sweep(workers=2, tmp_path=tmp_path, tag="crashed")
        ledger = tmp_path / "crashed.ledger.jsonl"
        lines = ledger.read_text().splitlines(keepends=True)
        ledger.write_text("".join(lines[:4]))  # header + 3 journaled seeds
        resumed = sweep(workers=2, tmp_path=tmp_path, tag="crashed", resume=True)
        assert resumed.telemetry == reference.telemetry
        assert resumed.render() == reference.render()
        assert (tmp_path / "crashed.telemetry.jsonl").read_bytes() == (
            tmp_path / "reference.telemetry.jsonl"
        ).read_bytes()
        assert ledger.read_bytes() == (
            tmp_path / "reference.ledger.jsonl"
        ).read_bytes()


class TestFallbackHopsSurfaced:
    def test_hops_counted_per_seed_and_in_summary(self, tmp_path):
        result = sweep(workers=1, tmp_path=tmp_path, tag="hops", run=degrading_run)
        for record in result.records:
            counters = record.telemetry["metrics"]["counters"]
            assert counters["ope.fallback.hops"] == 2  # dr and snips both hop
            assert counters["ope.fallback.hops.dr"] == 1
            assert counters["ope.fallback.hops.snips"] == 1
        summary = result.telemetry["metrics"]["counters"]
        assert summary["ope.fallback.hops"] == 2 * RUNS

    def test_hops_survive_in_ledger_and_telemetry_file(self, tmp_path):
        sweep(workers=1, tmp_path=tmp_path, tag="hopfile", run=degrading_run)
        lines = [
            json.loads(line)
            for line in (tmp_path / "hopfile.telemetry.jsonl").read_text().splitlines()
        ]
        run_lines = [line for line in lines if line.get("kind") == "run"]
        assert len(run_lines) == RUNS
        for line in run_lines:
            counters = line["telemetry"]["metrics"]["counters"]
            assert counters["ope.fallback.hops"] == 2
