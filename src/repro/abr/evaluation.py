"""Trace-driven evaluation of ABR policies — the Fig 2 / Fig 7b pipeline.

The paper casts FastMPC's evaluation methodology as a Direct Method whose
reward model assumes *observed throughput is independent of the chunk's
bitrate* (§2.2.1, §3).  This module provides:

* :class:`IndependentThroughputModel` — that biased reward model, usable
  directly inside :class:`~repro.core.estimators.DirectMethod` (the
  FastMPC baseline) and :class:`~repro.core.estimators.DoublyRobust`
  (the paper's fix).
* :class:`ChunkRewardOracle` — the ground-truth per-chunk QoE under the
  real bitrate-dependent channel, for computing V and evaluation errors.
* :func:`abr_core_policy` — adapter exposing any :class:`ABRPolicy` as a
  stationary :class:`~repro.core.policy.Policy` over the trace's chunk
  contexts.
* :class:`SessionReplayEvaluator` — the session-level replay evaluator
  (replay the new controller over the logged observed-throughput trace),
  used by the Fig 2 demonstration.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.abr.ladder import VideoManifest
from repro.abr.policies import ABRPolicy, PlayerState
from repro.abr.qoe import QoEModel
from repro.abr.simulator import SessionResult
from repro.abr.throughput import ObservedThroughputModel
from repro.core.models.base import RewardModel
from repro.core.policy import FunctionPolicy, Policy
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Decision, Trace
from repro.errors import SimulationError


def _player_state(context: ClientContext) -> PlayerState:
    """Rebuild the per-chunk player state from an OPE context.

    The context schema is the one produced by
    :meth:`repro.abr.simulator.SessionResult.to_trace`.
    """
    previous_observed = float(context["previous_observed_mbps"])
    previous_bitrate = float(context["previous_bitrate_mbps"])
    return PlayerState(
        chunk_index=int(context["chunk_index"]),
        buffer_seconds=float(context["buffer_seconds"]),
        previous_bitrate_mbps=previous_bitrate if previous_bitrate > 0 else None,
        observed_throughputs_mbps=(
            (previous_observed,) if previous_observed > 0 else ()
        ),
    )


def ladder_space(manifest: VideoManifest) -> DecisionSpace:
    """The decision space of a manifest's bitrate ladder."""
    return DecisionSpace(manifest.ladder.bitrates_mbps)


def abr_core_policy(policy: ABRPolicy, manifest: VideoManifest) -> Policy:
    """Expose an ABR controller as a stationary core policy over chunk
    contexts, so the generic estimators can evaluate it."""

    def distribution(context: ClientContext) -> Dict[Decision, float]:
        return dict(policy.probabilities(_player_state(context)))

    return FunctionPolicy(ladder_space(manifest), distribution)


class IndependentThroughputModel(RewardModel):
    """The biased FastMPC-style reward model of Fig 2.

    Predicts the QoE of streaming bitrate *d* on a chunk by assuming the
    achievable throughput equals the throughput *observed on the previous
    chunk* — regardless of d.  When the logging policy streamed a low
    bitrate, the observed throughput understates the available bandwidth
    (b·p(r) < b), so this model overestimates download times — and hence
    rebuffering — for high-bitrate counterfactuals.

    Needs no fitting: it is a pure replay formula over the trace context
    (the "idealized reward model" of §3).
    """

    def __init__(self, manifest: VideoManifest, qoe: Optional[QoEModel] = None):
        super().__init__()
        self._manifest = manifest
        self._qoe = qoe or QoEModel()
        self._fitted = True  # nothing to learn

    def fit(self, trace: Trace) -> "IndependentThroughputModel":
        """No-op: the model is a deterministic replay formula."""
        return self

    def _fit(self, trace: Trace) -> None:  # pragma: no cover - never called
        pass

    def _predict(self, context: ClientContext, decision: Decision) -> float:
        state = _player_state(context)
        bitrate = float(decision)
        if state.observed_throughputs_mbps:
            assumed_throughput = state.observed_throughputs_mbps[-1]
        else:
            # Cold start: no observation yet; assume the chunk downloads
            # at its own encoded rate (neutral — no rebuffer signal).
            assumed_throughput = bitrate
        download = self._manifest.chunk_megabits(bitrate) / assumed_throughput
        rebuffer = max(0.0, download - state.buffer_seconds)
        return self._qoe.chunk_qoe(bitrate, rebuffer, state.previous_bitrate_mbps)


class ChunkRewardOracle:
    """Ground-truth per-chunk QoE under the true channel.

    Knows the true available bandwidth and the true bitrate-dependent
    throughput model, so it can score any (chunk context, bitrate) pair —
    the quantity only a real deployment could measure.
    """

    def __init__(
        self,
        manifest: VideoManifest,
        throughput: ObservedThroughputModel,
        bandwidth_mbps: float,
        qoe: Optional[QoEModel] = None,
    ):
        if bandwidth_mbps <= 0:
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth_mbps}"
            )
        self._manifest = manifest
        self._throughput = throughput
        self._bandwidth = float(bandwidth_mbps)
        self._qoe = qoe or QoEModel()

    def reward(self, context: ClientContext, decision: Decision) -> float:
        """True expected QoE of streaming *decision* on this chunk."""
        state = _player_state(context)
        bitrate = float(decision)
        throughput = self._throughput.expected(self._bandwidth, bitrate)
        download = self._manifest.chunk_megabits(bitrate) / throughput
        rebuffer = max(0.0, download - state.buffer_seconds)
        return self._qoe.chunk_qoe(bitrate, rebuffer, state.previous_bitrate_mbps)

    def policy_value(self, policy: Policy, trace: Trace) -> float:
        """Ground truth V(mu_new, T): the paper's target quantity —
        expected reward had the new policy decided for the same chunks."""
        total = 0.0
        for record in trace:
            for decision, probability in policy.probabilities(record.context).items():
                if probability > 0:
                    total += probability * self.reward(record.context, decision)
        return total / len(trace)


class SessionReplayEvaluator:
    """Session-level replay: run a new controller over the logged
    observed-throughput trace as if it were the available bandwidth.

    This is the trace-replay workflow of prior ABR studies (§2.1, "use
    traces of throughput observed by real clients to predict the quality
    if a new ABR algorithm were to run on the same clients") and the
    setting of Fig 2.  The estimate is biased exactly when observed
    throughput depends on the logged bitrates.
    """

    def __init__(self, manifest: VideoManifest, qoe: Optional[QoEModel] = None,
                 initial_buffer_seconds: float = 8.0):
        if initial_buffer_seconds < 0:
            raise SimulationError(
                f"initial_buffer_seconds must be non-negative, got {initial_buffer_seconds}"
            )
        self._manifest = manifest
        self._qoe = qoe or QoEModel()
        self._initial_buffer = initial_buffer_seconds

    def estimate_session_qoe(
        self, policy: ABRPolicy, logged: SessionResult, rng
    ) -> float:
        """Replay *policy* over the logged throughput trace.

        The replayed controller sees the logged observed throughputs as
        its throughput history (the independence assumption) and its own
        simulated buffer.
        """
        throughputs = logged.observed_throughputs()
        if len(throughputs) != self._manifest.chunk_count:
            raise SimulationError(
                f"logged session has {len(throughputs)} chunks but manifest "
                f"expects {self._manifest.chunk_count}"
            )
        buffer_level = self._initial_buffer
        previous: Optional[float] = None
        qoes = []
        for index in range(self._manifest.chunk_count):
            history = tuple(throughputs[:index])
            state = PlayerState(
                chunk_index=index,
                buffer_seconds=buffer_level,
                previous_bitrate_mbps=previous,
                observed_throughputs_mbps=history,
            )
            bitrate = policy.sample(state, rng)
            # Assumed download time: logged observed throughput of *this*
            # chunk, independent of the replayed bitrate.
            assumed = throughputs[index]
            download = self._manifest.chunk_megabits(bitrate) / assumed
            rebuffer = max(0.0, download - buffer_level)
            buffer_level = max(0.0, buffer_level - download) + self._manifest.chunk_seconds
            qoes.append(self._qoe.chunk_qoe(bitrate, rebuffer, previous))
            previous = bitrate
        return float(np.mean(qoes))
