"""Tests for reward models (base, tabular, knn, linear, tree, kernel,
ensemble) and the feature encoders."""

import numpy as np
import pytest

from repro import core
from repro.core.models import (
    ConstantRewardModel,
    CrossFitModel,
    DecisionTreeRewardModel,
    EnsembleRewardModel,
    KernelRewardModel,
    KNNRewardModel,
    OneHotEncoder,
    OracleRewardModel,
    RidgeRewardModel,
    Standardizer,
    TabularMeanModel,
)
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import ModelError

from tests.conftest import make_uniform_trace


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision] + 0.1 * float(context["x"])


@pytest.fixture
def trace(rng, abc_space):
    return make_uniform_trace(abc_space, _truth, rng, n=600, noise=0.1)


class TestLifecycle:
    @pytest.mark.parametrize(
        "model_factory",
        [
            TabularMeanModel,
            lambda: KNNRewardModel(k=3),
            RidgeRewardModel,
            lambda: DecisionTreeRewardModel(max_depth=3),
            KernelRewardModel,
            ConstantRewardModel,
        ],
    )
    def test_predict_before_fit_raises(self, model_factory):
        with pytest.raises(ModelError):
            model_factory().predict(ClientContext(x=1.0, isp="isp-0"), "a")

    @pytest.mark.parametrize(
        "model_factory",
        [
            TabularMeanModel,
            lambda: KNNRewardModel(k=3),
            RidgeRewardModel,
            lambda: DecisionTreeRewardModel(max_depth=3),
            KernelRewardModel,
        ],
    )
    def test_fit_empty_trace_raises(self, model_factory):
        with pytest.raises(ModelError):
            model_factory().fit(Trace())

    @pytest.mark.parametrize(
        "model_factory",
        [
            TabularMeanModel,
            lambda: KNNRewardModel(k=5),
            RidgeRewardModel,
            lambda: DecisionTreeRewardModel(max_depth=5),
            lambda: KernelRewardModel(bandwidth=0.5),
        ],
    )
    def test_learns_decision_ordering(self, model_factory, trace):
        """Every model should learn that c > b > a on this surface."""
        model = model_factory().fit(trace)
        context = ClientContext(x=2.0, isp="isp-0")
        predictions = {d: model.predict(context, d) for d in ("a", "b", "c")}
        assert predictions["c"] > predictions["b"] > predictions["a"]


class TestOracle:
    def test_exact(self):
        model = OracleRewardModel(_truth)
        context = ClientContext(x=3.0, isp="isp-1")
        assert model.predict(context, "b") == pytest.approx(_truth(context, "b"))

    def test_bias_knob(self):
        model = OracleRewardModel(_truth, bias=0.5)
        context = ClientContext(x=0.0, isp="isp-1")
        assert model.predict(context, "a") == pytest.approx(1.5)

    def test_fit_is_noop(self):
        model = OracleRewardModel(_truth)
        assert model.fit(Trace()) is model


class TestConstant:
    def test_predicts_global_mean(self, trace):
        model = ConstantRewardModel().fit(trace)
        expected = trace.mean_reward()
        context = ClientContext(x=0.0, isp="isp-0")
        assert model.predict(context, "a") == pytest.approx(expected)
        assert model.predict(context, "c") == pytest.approx(expected)


class TestTabular:
    def test_bucket_means(self):
        records = [
            TraceRecord(ClientContext(g="u"), "a", 1.0, 0.5),
            TraceRecord(ClientContext(g="u"), "a", 3.0, 0.5),
            TraceRecord(ClientContext(g="v"), "a", 10.0, 0.5),
            TraceRecord(ClientContext(g="v"), "b", 20.0, 0.5),
        ]
        model = TabularMeanModel().fit(Trace(records))
        assert model.predict(ClientContext(g="u"), "a") == pytest.approx(2.0)
        assert model.predict(ClientContext(g="v"), "b") == pytest.approx(20.0)
        assert model.bucket_count() == 3
        assert model.support(ClientContext(g="u"), "a")
        assert not model.support(ClientContext(g="u"), "b")

    def test_fallback_decision_mean(self):
        records = [
            TraceRecord(ClientContext(g="u"), "a", 2.0, 0.5),
            TraceRecord(ClientContext(g="v"), "a", 4.0, 0.5),
            TraceRecord(ClientContext(g="v"), "b", 9.0, 0.5),
        ]
        model = TabularMeanModel(fallback="decision").fit(Trace(records))
        # unseen bucket (u, b) -> decision-b mean = 9
        assert model.predict(ClientContext(g="u"), "b") == pytest.approx(9.0)

    def test_fallback_global(self):
        records = [
            TraceRecord(ClientContext(g="u"), "a", 2.0, 0.5),
            TraceRecord(ClientContext(g="v"), "b", 4.0, 0.5),
        ]
        model = TabularMeanModel(fallback="global").fit(Trace(records))
        assert model.predict(ClientContext(g="u"), "zzz") == pytest.approx(3.0)

    def test_fallback_error(self):
        records = [TraceRecord(ClientContext(g="u"), "a", 2.0, 0.5)]
        model = TabularMeanModel(fallback="error").fit(Trace(records))
        with pytest.raises(ModelError):
            model.predict(ClientContext(g="u"), "b")

    def test_key_feature_subset_creates_misspecification(self):
        """Dropping a relevant feature merges buckets — the VIA failure."""
        records = [
            TraceRecord(ClientContext(pair="p", nat="nat"), "relay", 1.0, 0.5),
            TraceRecord(ClientContext(pair="p", nat="public"), "relay", 3.0, 0.5),
        ]
        blind = TabularMeanModel(key_features=("pair",)).fit(Trace(records))
        aware = TabularMeanModel(key_features=("pair", "nat")).fit(Trace(records))
        context = ClientContext(pair="p", nat="public")
        assert blind.predict(context, "relay") == pytest.approx(2.0)
        assert aware.predict(context, "relay") == pytest.approx(3.0)

    def test_invalid_fallback_name(self):
        with pytest.raises(ModelError):
            TabularMeanModel(fallback="nope")


class TestKNN:
    def test_k_validation(self):
        with pytest.raises(ModelError):
            KNNRewardModel(k=0)

    def test_same_decision_restriction(self):
        # Rewards differ sharply by decision; the same-decision KNN must
        # not blend decisions.
        records = []
        for i in range(20):
            records.append(
                TraceRecord(ClientContext(x=float(i % 5)), "lo", 0.0, 0.5)
            )
            records.append(
                TraceRecord(ClientContext(x=float(i % 5)), "hi", 10.0, 0.5)
            )
        model = KNNRewardModel(k=3, same_decision_only=True).fit(Trace(records))
        assert model.predict(ClientContext(x=2.0), "hi") == pytest.approx(10.0)
        assert model.predict(ClientContext(x=2.0), "lo") == pytest.approx(0.0)

    def test_unseen_decision_falls_back(self):
        records = [
            TraceRecord(ClientContext(x=0.0), "lo", 1.0, 0.5),
            TraceRecord(ClientContext(x=1.0), "lo", 3.0, 0.5),
        ]
        model = KNNRewardModel(k=2, same_decision_only=True).fit(Trace(records))
        # 'hi' never observed: falls back to unrestricted neighbourhood.
        assert model.predict(ClientContext(x=0.5), "hi") == pytest.approx(2.0)

    def test_weighted_prefers_close_neighbours(self):
        records = [
            TraceRecord(ClientContext(x=0.0), "d", 0.0, 0.5),
            TraceRecord(ClientContext(x=10.0), "d", 10.0, 0.5),
        ]
        uniform = KNNRewardModel(k=2, same_decision_only=False).fit(Trace(records))
        weighted = KNNRewardModel(k=2, same_decision_only=False, weighted=True).fit(
            Trace(records)
        )
        near_zero = ClientContext(x=1.0)
        assert weighted.predict(near_zero, "d") < uniform.predict(near_zero, "d")


class TestRidge:
    def test_recovers_additive_structure(self, trace):
        model = RidgeRewardModel(alpha=0.1).fit(trace)
        context = ClientContext(x=2.0, isp="isp-0")
        # The surface is additive, so ridge should be quite accurate.
        assert model.predict(context, "c") == pytest.approx(
            _truth(context, "c"), abs=0.15
        )

    def test_alpha_validation(self):
        with pytest.raises(ModelError):
            RidgeRewardModel(alpha=-1.0)

    def test_misses_interactions(self):
        """An XOR-style surface defeats the additive model."""
        records = []
        for x in (0.0, 1.0):
            for d in ("a", "b"):
                reward = 1.0 if (x == 1.0) != (d == "b") else 0.0
                for _ in range(10):
                    records.append(TraceRecord(ClientContext(x=x), d, reward, 0.5))
        model = RidgeRewardModel(alpha=0.01).fit(Trace(records))
        predictions = [
            model.predict(ClientContext(x=x), d)
            for x in (0.0, 1.0)
            for d in ("a", "b")
        ]
        # Additive model must predict ~0.5 everywhere on XOR.
        assert all(abs(p - 0.5) < 0.1 for p in predictions)


class TestTree:
    def test_captures_interactions(self):
        records = []
        for x in (0.0, 1.0):
            for d in ("a", "b"):
                reward = 1.0 if (x == 1.0) != (d == "b") else 0.0
                for _ in range(10):
                    records.append(TraceRecord(ClientContext(x=x), d, reward, 0.5))
        model = DecisionTreeRewardModel(max_depth=3, min_samples_leaf=1).fit(
            Trace(records)
        )
        assert model.predict(ClientContext(x=1.0), "a") == pytest.approx(1.0, abs=0.01)
        assert model.predict(ClientContext(x=1.0), "b") == pytest.approx(0.0, abs=0.01)

    def test_depth_zero_is_global_mean(self, trace):
        model = DecisionTreeRewardModel(max_depth=0).fit(trace)
        assert model.depth() == 0
        assert model.predict(
            ClientContext(x=0.0, isp="isp-0"), "a"
        ) == pytest.approx(trace.mean_reward())

    def test_depth_bounded(self, trace):
        model = DecisionTreeRewardModel(max_depth=2).fit(trace)
        assert model.depth() <= 2

    def test_constant_target_no_split(self):
        records = [
            TraceRecord(ClientContext(x=float(i)), "d", 5.0, 0.5) for i in range(10)
        ]
        model = DecisionTreeRewardModel().fit(Trace(records))
        assert model.depth() == 0

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            DecisionTreeRewardModel(max_depth=-1)
        with pytest.raises(ModelError):
            DecisionTreeRewardModel(min_samples_leaf=0)


class TestKernel:
    def test_bandwidth_validation(self):
        with pytest.raises(ModelError):
            KernelRewardModel(bandwidth=0.0)

    def test_large_bandwidth_flattens(self, trace):
        smooth = KernelRewardModel(bandwidth=100.0).fit(trace)
        context = ClientContext(x=0.0, isp="isp-0")
        assert smooth.predict(context, "a") == pytest.approx(
            trace.mean_reward(), abs=0.05
        )


class TestEnsemble:
    def test_average(self):
        flat = OracleRewardModel(lambda c, d: 2.0)
        steep = OracleRewardModel(lambda c, d: 4.0)
        ensemble = EnsembleRewardModel([flat, steep])
        ensemble.fit(Trace([TraceRecord(ClientContext(x=0.0), "a", 1.0, 0.5)]))
        assert ensemble.predict(ClientContext(x=0.0), "a") == pytest.approx(3.0)

    def test_weights(self):
        flat = OracleRewardModel(lambda c, d: 0.0)
        steep = OracleRewardModel(lambda c, d: 10.0)
        ensemble = EnsembleRewardModel([flat, steep], weights=[3.0, 1.0])
        ensemble.fit(Trace([TraceRecord(ClientContext(x=0.0), "a", 1.0, 0.5)]))
        assert ensemble.predict(ClientContext(x=0.0), "a") == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ModelError):
            EnsembleRewardModel([])
        with pytest.raises(ModelError):
            EnsembleRewardModel([ConstantRewardModel()], weights=[1.0, 2.0])


class TestCrossFit:
    def test_out_of_fold_prediction(self, trace):
        model = CrossFitModel(lambda: TabularMeanModel(key_features=("isp",)), folds=2)
        model.fit(trace)
        record = trace[0]
        value = model.predict_for_index(0, record.context, record.decision)
        assert np.isfinite(value)

    def test_fold_assignment_contiguous(self, trace):
        model = CrossFitModel(lambda: ConstantRewardModel(), folds=3)
        model.fit(trace)
        folds = model._fold_of_index
        assert sorted(set(folds)) == [0, 1, 2]
        assert folds == sorted(folds)

    def test_index_out_of_range(self, trace):
        model = CrossFitModel(lambda: ConstantRewardModel(), folds=2).fit(trace)
        with pytest.raises(ModelError):
            model.predict_for_index(len(trace), trace[0].context, "a")

    def test_too_few_folds(self):
        with pytest.raises(ModelError):
            CrossFitModel(lambda: ConstantRewardModel(), folds=1)


class TestOneHotEncoder:
    def _trace(self):
        return Trace(
            [
                TraceRecord(ClientContext(isp="a", x=1.0), "d1", 1.0, 0.5),
                TraceRecord(ClientContext(isp="b", x=2.0), "d2", 2.0, 0.5),
            ]
        )

    def test_dimension(self):
        encoder = OneHotEncoder().fit(self._trace())
        # 1 numeric + 2 isp categories + 2 decisions
        assert encoder.dimension == 5

    def test_encoding_onehot(self):
        encoder = OneHotEncoder().fit(self._trace())
        vector = encoder.encode(ClientContext(isp="a", x=1.0), "d1")
        assert vector.shape == (5,)
        assert vector[0] == 1.0  # numeric x
        assert vector.sum() == pytest.approx(3.0)  # x + isp onehot + decision onehot

    def test_unseen_category_zero_block(self):
        encoder = OneHotEncoder().fit(self._trace())
        vector = encoder.encode(ClientContext(isp="zzz", x=0.0), "d1")
        # isp block all zeros
        assert vector[1:3].sum() == 0.0

    def test_register_decisions(self):
        encoder = OneHotEncoder().fit(self._trace())
        encoder.register_decisions(["d3"])
        assert encoder.dimension == 6
        vector = encoder.encode(ClientContext(isp="a", x=0.0), "d3")
        assert vector.sum() == pytest.approx(2.0)

    def test_encode_before_fit_raises(self):
        with pytest.raises(ModelError):
            OneHotEncoder().encode(ClientContext(x=1.0), "d")


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        matrix = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        scaler = Standardizer().fit(matrix)
        transformed = scaler.transform(matrix)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-12)

    def test_constant_column_safe(self):
        matrix = np.array([[1.0, 7.0], [2.0, 7.0]])
        scaler = Standardizer().fit(matrix)
        transformed = scaler.transform(matrix)
        assert np.all(np.isfinite(transformed))

    def test_transform_before_fit_raises(self):
        with pytest.raises(ModelError):
            Standardizer().transform(np.zeros((2, 2)))
