"""REP011 negative fixture: picklable workers, pid-guarded re-init."""

import os
from concurrent.futures import ProcessPoolExecutor

_STATE = {}


def _reinit(record):
    """Worker: per-process re-initialisation under the pid-guard idiom."""
    _STATE[os.getpid()] = record
    return record


def run_pool(records):
    """Submit a module-level, pid-guarded worker."""
    with ProcessPoolExecutor() as executor:
        futures = [executor.submit(_reinit, record) for record in records]
    return [future.result() for future in futures]
