"""Schema checker for served response payloads.

``python -m repro.serve.validate PAYLOAD.json [...]`` exits 0 when each
file holds a valid ``/v1/evaluate`` / ``/v1/compare`` response (or a
valid error body), 1 with a message otherwise — the serving analogue of
``python -m repro.obs.validate``.  The importable forms are
:func:`validate_response_payload` (full envelope) and
:func:`validate_report_payload` (just the ``report`` section), both
raising :class:`~repro.errors.ServeError` naming the offending field.

"Valid" is checked structurally *and* semantically where cheap: the
``report`` section must round-trip through
:meth:`~repro.core.reporting.EvaluationReport.from_json_dict` — the
strongest schema check available, since it rebuilds every dataclass.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.reporting import EvaluationReport
from repro.errors import ServeError, TraceError
from repro.serve.app import RESPONSE_KIND, RESPONSE_VERSION

_ENVELOPE_KEYS = {
    "kind",
    "version",
    "endpoint",
    "trace",
    "fingerprints",
    "report",
    "cache",
}
_TRACE_KEYS = {"name", "kind", "schema_hash", "records"}
_CACHE_KEYS = {"hit", "coalesced", "bypass", "key"}
_ERROR_KEYS = {"kind", "status", "error"}

_SHA256_HEX = set("0123456789abcdef")


def _fail(where: str, message: str) -> None:
    raise ServeError(f"{where}: {message}")


def _check_fingerprint(where: str, what: str, value: Any) -> None:
    if (
        not isinstance(value, str)
        or len(value) != 64
        or not set(value) <= _SHA256_HEX
    ):
        _fail(where, f"{what} must be a 64-char sha256 hex digest, got {value!r}")


def validate_report_payload(
    payload: Any, where: str = "report"
) -> EvaluationReport:
    """Validate a serialised :class:`EvaluationReport`; returns it rebuilt.

    Delegates to :meth:`EvaluationReport.from_json_dict`, which enforces
    kind/version and reconstructs every section — structural problems
    surface as :class:`~repro.errors.ServeError`.
    """
    try:
        return EvaluationReport.from_json_dict(payload)
    except TraceError as error:
        raise ServeError(f"{where}: {error}") from None


def validate_response_payload(payload: Any, where: str = "response") -> None:
    """Validate one full response envelope (or error body).

    Raises :class:`~repro.errors.ServeError` naming the first offending
    field; returns ``None`` on success.
    """
    if not isinstance(payload, Mapping):
        _fail(where, f"payload must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind == "repro.serve.error":
        unknown = set(payload) - _ERROR_KEYS
        if unknown:
            _fail(where, f"error payload has unknown key(s) {sorted(unknown)}")
        status = payload.get("status")
        if not isinstance(status, int) or isinstance(status, bool) or not (
            400 <= status <= 599
        ):
            _fail(where, f"error status must be a 4xx/5xx integer, got {status!r}")
        if not isinstance(payload.get("error"), str) or not payload["error"]:
            _fail(where, "error payload must carry a non-empty 'error' string")
        return
    if kind != RESPONSE_KIND:
        _fail(
            where,
            f"kind {kind!r} is neither {RESPONSE_KIND!r} nor "
            "'repro.serve.error'",
        )
    if payload.get("version") != RESPONSE_VERSION:
        _fail(
            where,
            f"unsupported response version {payload.get('version')!r} "
            f"(this build reads version {RESPONSE_VERSION})",
        )
    missing = sorted(_ENVELOPE_KEYS - set(payload))
    unknown = sorted(set(payload) - _ENVELOPE_KEYS)
    if missing:
        _fail(where, f"missing key(s) {missing}")
    if unknown:
        _fail(where, f"unknown key(s) {unknown}")
    endpoint = payload["endpoint"]
    if endpoint not in ("evaluate", "compare"):
        _fail(where, f"endpoint must be 'evaluate' or 'compare', got {endpoint!r}")

    trace = payload["trace"]
    if not isinstance(trace, Mapping) or set(trace) != _TRACE_KEYS:
        _fail(
            where,
            f"trace section must have exactly keys {sorted(_TRACE_KEYS)}",
        )
    if not isinstance(trace["name"], str) or not trace["name"]:
        _fail(where, "trace name must be a non-empty string")
    if trace["kind"] not in ("sharded", "jsonl"):
        _fail(where, f"trace kind must be 'sharded' or 'jsonl', got {trace['kind']!r}")
    if not isinstance(trace["schema_hash"], str) or not trace["schema_hash"]:
        _fail(where, "trace schema_hash must be a non-empty string")
    records = trace["records"]
    if not isinstance(records, int) or isinstance(records, bool) or records < 0:
        _fail(where, f"trace records must be a non-negative integer, got {records!r}")

    fingerprints = payload["fingerprints"]
    if not isinstance(fingerprints, Mapping):
        _fail(where, "fingerprints section must be an object")
    _check_fingerprint(where, "policy fingerprint", fingerprints.get("policy"))
    _check_fingerprint(where, "trace fingerprint", fingerprints.get("trace"))
    if endpoint == "evaluate":
        _check_fingerprint(
            where, "estimator fingerprint", fingerprints.get("estimator")
        )
    else:
        entries = fingerprints.get("estimators")
        if not isinstance(entries, list) or not entries:
            _fail(where, "compare fingerprints must carry a non-empty 'estimators' list")
        for index, entry in enumerate(entries):
            _check_fingerprint(where, f"estimator fingerprint [{index}]", entry)

    cache = payload["cache"]
    if not isinstance(cache, Mapping) or set(cache) != _CACHE_KEYS:
        _fail(where, f"cache section must have exactly keys {sorted(_CACHE_KEYS)}")
    for flag in ("hit", "coalesced", "bypass"):
        if not isinstance(cache[flag], bool):
            _fail(where, f"cache.{flag} must be a boolean, got {cache[flag]!r}")
    _check_fingerprint(where, "cache.key", cache.get("key"))

    validate_report_payload(payload["report"], where=f"{where}.report")


def validate_response_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate one JSON response file; returns the parsed payload."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ServeError(f"cannot read {path}: {error}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServeError(f"{path}: not valid JSON: {error}") from None
    validate_response_payload(payload, where=str(path))
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: validate each path argument, report, exit 0/1."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.serve.validate RESPONSE_PAYLOAD.json [...]",
            file=sys.stderr,
        )
        return 1
    status = 0
    for raw in argv:
        try:
            payload = validate_response_file(raw)
        except ServeError as error:
            print(f"INVALID {error}", file=sys.stderr)
            status = 1
        else:
            kind = payload.get("kind")
            label = (
                f"error status={payload.get('status')}"
                if kind == "repro.serve.error"
                else f"{payload.get('endpoint')} trace={payload['trace']['name']}"
            )
            print(f"OK {raw}: {label}")
    return status


if __name__ == "__main__":
    sys.exit(main())
