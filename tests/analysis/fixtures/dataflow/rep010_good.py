"""REP010 negative fixture: an explicit generator threaded through."""

from .rep010_helpers import shift


def bootstrap_resample_seeded(values, rng):
    """Resample through a helper that takes the generator explicitly."""
    return shift(values, rng)
