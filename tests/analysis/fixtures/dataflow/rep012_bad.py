"""REP012 positive fixtures: broken batch/stream/policy parity."""

from repro.core.estimators.base import OffPolicyEstimator


class DenseOnlyEstimator(OffPolicyEstimator):
    """Dense path with no streaming counterparts."""

    def _estimate(self, policy, trace, propensity_source):
        """Dense estimate."""
        return 0.0


class HalfStreamEstimator(OffPolicyEstimator):
    """Streaming chunk without a finalize hook."""

    def _stream_chunk(self, policy, chunk, propensity_source, offset):
        """Chunk columns."""
        return {}


class LoopPolicy:
    """Per-record propensity with no batch counterpart anywhere."""

    def propensity(self, decision, context):
        """Per-record propensity."""
        return 1.0
