"""Observed-throughput models: the Fig 2 bias mechanism.

Paper §2.2.1: *"using lower bitrates can lead to lower observed
throughput than available bandwidth; e.g., if the chunk size is too
small for TCP to reach steady state"* and Fig 7b: *"the observed
throughput is b · p(r), p ≤ 1 and monotonically increases with the
chosen bitrate"*.

:class:`BitrateEfficiency` implements p(r); the observed throughput of a
chunk downloaded at bitrate r over available bandwidth b is
``b * p(r)`` (optionally with multiplicative noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.ladder import BitrateLadder
from repro.errors import SimulationError


@dataclass(frozen=True)
class BitrateEfficiency:
    """The efficiency function p(r) of Fig 7b.

    ``p(r) = floor + (1 - floor) * (r / r_max) ** exponent`` — a smooth,
    monotonically increasing map from the ladder's range onto
    ``[floor + eps, 1]``.  Low bitrates (small chunks) leave TCP in slow
    start and waste a large share of the available bandwidth; the highest
    bitrate achieves the full bandwidth.

    Parameters
    ----------
    ladder:
        The bitrate ladder p is defined over (for ``r_max``).
    floor:
        Efficiency as r → 0.  The paper's Fig 2 example has a 3 Mbps link
        observed at 0.7 Mbps for a low-bitrate chunk, i.e. p ≈ 0.23.
    exponent:
        Curvature; 1.0 is linear in r.
    """

    ladder: BitrateLadder
    floor: float = 0.25
    exponent: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 < self.floor <= 1.0:
            raise SimulationError(f"floor must lie in (0, 1], got {self.floor}")
        if self.exponent <= 0:
            raise SimulationError(f"exponent must be positive, got {self.exponent}")

    def efficiency(self, bitrate_mbps: float) -> float:
        """p(r) for *bitrate_mbps*; clamped to [floor-range, 1]."""
        if bitrate_mbps <= 0:
            raise SimulationError(f"bitrate must be positive, got {bitrate_mbps}")
        ratio = min(bitrate_mbps / self.ladder.highest, 1.0)
        return self.floor + (1.0 - self.floor) * ratio**self.exponent


class ObservedThroughputModel:
    """Maps (available bandwidth, chosen bitrate) to observed throughput.

    ``observed = bandwidth * p(bitrate) * noise`` with optional
    multiplicative lognormal noise.  Setting ``efficiency=None`` yields an
    *ideal* channel (observed == available) — the world in which the
    FastMPC evaluator's independence assumption is actually true, used as
    a control in tests.
    """

    def __init__(
        self,
        efficiency: BitrateEfficiency | None,
        noise_sigma: float = 0.0,
    ):
        if noise_sigma < 0:
            raise SimulationError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self._efficiency = efficiency
        self._noise_sigma = float(noise_sigma)

    @property
    def bitrate_dependent(self) -> bool:
        """Whether observed throughput depends on the chosen bitrate."""
        return self._efficiency is not None

    def expected(self, bandwidth_mbps: float, bitrate_mbps: float) -> float:
        """Noise-free observed throughput."""
        if bandwidth_mbps <= 0:
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth_mbps}"
            )
        if self._efficiency is None:
            return bandwidth_mbps
        return bandwidth_mbps * self._efficiency.efficiency(bitrate_mbps)

    def observe(
        self,
        bandwidth_mbps: float,
        bitrate_mbps: float,
        rng: np.random.Generator,
    ) -> float:
        """One (possibly noisy) observed-throughput sample."""
        mean = self.expected(bandwidth_mbps, bitrate_mbps)
        if self._noise_sigma == 0:
            return mean
        return float(mean * rng.lognormal(0.0, self._noise_sigma))
