"""Fig 7c — variance: DR vs the CFA matching evaluator.

Paper: "DR's evaluation error is about 36% lower than that of the
original evaluator", with the DM inside DR being a k-NN model and the
old policy assigning CDN x bitrate uniformly at random.
"""

from repro.experiments import run_fig7c

from benchmarks.conftest import report

RUNS = 50
SEED = 2017


def test_fig7c_cfa_vs_dr(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7c(runs=RUNS, seed=SEED), rounds=1, iterations=1
    )
    report(result.render())

    cfa = result.summaries["cfa"]
    dr = result.summaries["dr"]
    # Shape: matching is unbiased but high-variance (few matches per
    # trace); DR scores every client through the k-NN model and corrects
    # with weights, cutting the error (paper: ~36% lower).
    assert dr.mean < cfa.mean
    # Variance story: DR's worst run beats matching's worst run.
    assert dr.maximum < cfa.maximum
    assert cfa.runs == RUNS
