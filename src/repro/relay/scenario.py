"""The Fig 3 VoIP relay-selection scenario (VIA).

Paper §2.2.1: VIA estimates the performance of relaying a call between
an AS pair from previous calls on the same AS pair and relay path.  But
"if the old policy chooses only calls between two devices behind NATs to
use the relay path, the observed performance on these calls may not be
indicative ... since private IP users may have different last-mile
network conditions than public IP users".

We model calls with features (source AS, destination AS, NAT flag);
decisions are ``"direct"`` or one of several relay paths.  The ground
truth gives each (AS pair, path) a base quality, NAT-ed endpoints a
last-mile penalty, and the old policy relays NAT-ed calls far more often
— so per-(AS pair, path) averages conflate the relay effect with the NAT
penalty.  The VIA evaluator is exactly a
:class:`~repro.core.models.TabularMeanModel` keyed on the AS pair
(i.e. *excluding* the NAT flag): the model-misspecification of §2.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import numpy as np

from repro.core.models.tabular import TabularMeanModel
from repro.core.policy import FunctionPolicy, Policy
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Decision, Trace, TraceRecord
from repro.errors import SimulationError


@dataclass(frozen=True)
class RelayScenario:
    """Parameters of the Fig 3 experiment.

    Quality is MOS-like (higher better).  Relaying helps inter-continent
    pairs (a positive path bonus) and NAT lowers quality additively; the
    logging policy couples the two by relaying mostly NAT-ed calls.
    """

    n_calls: int = 2000
    n_as_pairs: int = 6
    n_relays: int = 2
    nat_fraction: float = 0.5
    base_quality: float = 3.0
    relay_bonus_scale: float = 0.6
    nat_penalty: float = 0.8
    noise_scale: float = 0.2
    relay_probability_nat: float = 0.9
    relay_probability_public: float = 0.05
    effect_seed: int = 777

    def __post_init__(self) -> None:
        if self.n_calls <= 0 or self.n_as_pairs <= 0 or self.n_relays <= 0:
            raise SimulationError("counts must be positive")
        if not 0.0 < self.nat_fraction < 1.0:
            raise SimulationError(
                f"nat_fraction must lie in (0, 1), got {self.nat_fraction}"
            )
        for name in ("relay_probability_nat", "relay_probability_public"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise SimulationError(f"{name} must lie in (0, 1), got {value}")

    # -- vocabulary ---------------------------------------------------------------

    @property
    def as_pairs(self) -> Tuple[str, ...]:
        """AS-pair labels ("as-pair-i" summarising source x destination)."""
        return tuple(f"as-pair-{i}" for i in range(self.n_as_pairs))

    @property
    def relays(self) -> Tuple[str, ...]:
        """Relay path labels."""
        return tuple(f"relay-{i}" for i in range(self.n_relays))

    def space(self) -> DecisionSpace:
        """Decisions: direct, or one of the relay paths."""
        return DecisionSpace(("direct",) + self.relays)

    # -- ground truth ----------------------------------------------------------------

    def _path_effects(self) -> Dict[Tuple[str, str], float]:
        """Fixed random (AS pair, path) quality offsets.

        Direct paths get zero offset; relay paths get a random offset
        with positive mean so relaying genuinely helps on average.
        """
        rng = np.random.default_rng(self.effect_seed)
        effects: Dict[Tuple[str, str], float] = {}
        for pair in self.as_pairs:
            effects[(pair, "direct")] = 0.0
            for relay in self.relays:
                effects[(pair, relay)] = float(
                    rng.normal(self.relay_bonus_scale / 2.0, self.relay_bonus_scale)
                )
        return effects

    def true_mean_quality(self, context: ClientContext, decision: Decision) -> float:
        """Noise-free call quality of (call, path)."""
        effects = self._path_effects()
        pair = context["as_pair"]
        if (pair, decision) not in effects:
            raise SimulationError(f"unknown (pair, path) = ({pair!r}, {decision!r})")
        quality = self.base_quality + effects[(pair, decision)]
        if context["nat"] == "nat":
            quality -= self.nat_penalty
        return quality

    # -- policies -------------------------------------------------------------------

    def old_policy(self) -> Policy:
        """The biased logging policy: relays NAT-ed calls with high
        probability, public-IP calls rarely; relay choice is uniform."""
        space = self.space()

        def distribution(context: ClientContext) -> Dict[Decision, float]:
            relay_probability = (
                self.relay_probability_nat
                if context["nat"] == "nat"
                else self.relay_probability_public
            )
            per_relay = relay_probability / self.n_relays
            result: Dict[Decision, float] = {"direct": 1.0 - relay_probability}
            for relay in self.relays:
                result[relay] = per_relay
            return result

        return FunctionPolicy(space, distribution)

    def new_policy(self, relay_probability: float = 0.9) -> Policy:
        """The candidate policy: relay (almost) every call, NAT or not.

        Kept slightly stochastic so its own future traces would also be
        evaluable — and because decision systems should log exploration
        (§4.1).
        """
        if not 0.0 < relay_probability <= 1.0:
            raise SimulationError(
                f"relay_probability must lie in (0, 1], got {relay_probability}"
            )
        space = self.space()
        per_relay = relay_probability / self.n_relays

        def distribution(context: ClientContext) -> Dict[Decision, float]:
            result: Dict[Decision, float] = {"direct": 1.0 - relay_probability}
            for relay in self.relays:
                result[relay] = per_relay
            return result

        return FunctionPolicy(space, distribution)

    # -- evaluator pieces -------------------------------------------------------------

    def via_model(self) -> TabularMeanModel:
        """The VIA reward model: per-(AS pair, path) mean, NAT ignored.

        Fitting it on a trace logged by :meth:`old_policy` bakes the NAT
        selection bias into every relay-path bucket.
        """
        return TabularMeanModel(key_features=("as_pair",))

    def full_model(self) -> TabularMeanModel:
        """The corrected model including the NAT flag (needs the feature
        to have been measured — the paper's 'add in the relevant feature'
        remedy, with its dimensionality cost)."""
        return TabularMeanModel(key_features=("as_pair", "nat"))

    # -- trace generation ----------------------------------------------------------------

    def sample_context(self, rng: np.random.Generator) -> ClientContext:
        """One call's features."""
        pair = self.as_pairs[int(rng.integers(0, self.n_as_pairs))]
        nat = "nat" if rng.uniform() < self.nat_fraction else "public"
        return ClientContext(as_pair=pair, nat=nat)

    def generate_trace(self, rng: np.random.Generator) -> Trace:
        """A logged trace under the NAT-biased old policy."""
        old = self.old_policy()
        records = []
        for _ in range(self.n_calls):
            context = self.sample_context(rng)
            decision = old.sample(context, rng)
            quality = self.true_mean_quality(context, decision) + rng.normal(
                0.0, self.noise_scale
            )
            records.append(
                TraceRecord(
                    context=context,
                    decision=decision,
                    reward=float(quality),
                    propensity=old.propensity(decision, context),
                )
            )
        return Trace(records)

    def ground_truth_value(self, policy: Policy, trace: Trace) -> float:
        """Exact V(policy, T) from the noise-free quality."""
        total = 0.0
        for record in trace:
            for decision, probability in policy.probabilities(record.context).items():
                if probability > 0:
                    total += probability * self.true_mean_quality(
                        record.context, decision
                    )
        return total / len(trace)
