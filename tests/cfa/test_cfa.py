"""Tests for the CFA substrate: quality surface, matching, scenario."""

import numpy as np
import pytest

from repro import core
from repro.cfa.matching import CriticalFeatureMatching
from repro.cfa.quality import QualityFunction
from repro.cfa.scenario import CfaScenario
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import EstimatorError, SimulationError


class TestQualityFunction:
    def _quality(self, **kwargs):
        defaults = dict(
            asns=("as0", "as1"),
            cities=("c0",),
            devices=("d0", "d1"),
            cdns=("cdn0", "cdn1"),
            bitrates=(1.0, 2.0),
            seed=7,
        )
        defaults.update(kwargs)
        return QualityFunction(**defaults)

    def test_deterministic_given_seed(self):
        a = self._quality()
        b = self._quality()
        context = ClientContext(asn="as0", city="c0", device="d0")
        assert a.mean_quality(context, ("cdn0", 1.0)) == b.mean_quality(
            context, ("cdn0", 1.0)
        )

    def test_different_seeds_differ(self):
        context = ClientContext(asn="as0", city="c0", device="d0")
        assert self._quality(seed=1).mean_quality(
            context, ("cdn0", 1.0)
        ) != self._quality(seed=2).mean_quality(context, ("cdn0", 1.0))

    def test_has_asn_cdn_interaction(self):
        """The CDN ordering must differ across ASNs for some seed — the
        interaction CFA exists to capture."""
        quality = self._quality(interaction_scale=2.0)
        def best_cdn(asn):
            context = ClientContext(asn=asn, city="c0", device="d0")
            return max(
                ("cdn0", "cdn1"),
                key=lambda cdn: quality.mean_quality(context, (cdn, 1.0)),
            )
        # With a strong interaction scale and this seed the argmax flips.
        assert best_cdn("as0") != best_cdn("as1")

    def test_bitrate_utility_monotone(self):
        quality = self._quality(interaction_scale=0.0)
        context = ClientContext(asn="as0", city="c0", device="d0")
        low = quality.mean_quality(context, ("cdn0", 1.0))
        high = quality.mean_quality(context, ("cdn0", 2.0))
        assert high > low

    def test_observe_adds_noise(self):
        quality = self._quality(noise_scale=0.5)
        context = ClientContext(asn="as0", city="c0", device="d0")
        rng = np.random.default_rng(0)
        samples = [quality.observe(context, ("cdn0", 1.0), rng) for _ in range(100)]
        assert np.std(samples) > 0.2

    def test_unknown_value_rejected(self):
        quality = self._quality()
        with pytest.raises(SimulationError):
            quality.mean_quality(
                ClientContext(asn="zz", city="c0", device="d0"), ("cdn0", 1.0)
            )

    def test_empty_vocab_rejected(self):
        with pytest.raises(SimulationError):
            self._quality(asns=())


class TestCriticalFeatureMatching:
    def _trace(self):
        return Trace(
            [
                TraceRecord(ClientContext(asn="a"), "d1", 1.0, 0.5),
                TraceRecord(ClientContext(asn="a"), "d1", 3.0, 0.5),
                TraceRecord(ClientContext(asn="b"), "d1", 10.0, 0.5),
                TraceRecord(ClientContext(asn="b"), "d2", 7.0, 0.5),
            ]
        )

    def test_matches_within_feature_cell(self):
        space = core.DecisionSpace(["d1", "d2"])
        new = core.DeterministicPolicy(space, lambda c: "d1")
        result = CriticalFeatureMatching(critical_features=("asn",)).estimate(
            new, self._trace()
        )
        # clients with asn=a predicted 2.0 (x2 records), asn=b predicted 10.0 (x2)
        assert result.value == pytest.approx((2.0 + 2.0 + 10.0 + 10.0) / 4)

    def test_skips_unmatched_clients(self):
        space = core.DecisionSpace(["d1", "d2"])
        new = core.DeterministicPolicy(space, lambda c: "d2")
        result = CriticalFeatureMatching(critical_features=("asn",)).estimate(
            new, self._trace()
        )
        # only asn=b has a d2 record
        assert result.diagnostics["skipped_fraction"] == pytest.approx(0.5)

    def test_no_match_raises(self):
        space = core.DecisionSpace(["d1", "d2", "d3"])
        new = core.DeterministicPolicy(space, lambda c: "d3")
        with pytest.raises(EstimatorError):
            CriticalFeatureMatching(critical_features=("asn",)).estimate(
                new, self._trace()
            )

    def test_min_matches(self):
        space = core.DecisionSpace(["d1", "d2"])
        new = core.DeterministicPolicy(space, lambda c: "d2")
        result = CriticalFeatureMatching(
            critical_features=("asn",), min_matches=2
        )
        with pytest.raises(EstimatorError):
            result.estimate(new, self._trace())

    def test_validation(self):
        with pytest.raises(EstimatorError):
            CriticalFeatureMatching(min_matches=0)


class TestCfaScenario:
    def test_trace_generation(self, rng):
        scenario = CfaScenario(n_clients=200)
        trace = scenario.generate_trace(rng)
        assert len(trace) == 200
        assert trace.has_propensities()
        # uniform logging propensity
        assert trace[0].propensity == pytest.approx(1.0 / len(scenario.space()))

    def test_new_policy_is_per_asn(self, rng):
        scenario = CfaScenario(n_clients=50)
        quality = scenario.quality()
        new = scenario.new_policy(quality)
        a = new.greedy_decision(
            ClientContext(asn="as0", city="city0", device="device0")
        )
        b = new.greedy_decision(
            ClientContext(asn="as0", city="city3", device="device2")
        )
        assert a == b  # same ASN, same decision regardless of other features

    def test_ground_truth_value_is_noise_free(self, rng):
        scenario = CfaScenario(n_clients=100)
        quality = scenario.quality()
        trace = scenario.generate_trace(rng, quality)
        new = scenario.new_policy(quality)
        value_a = scenario.ground_truth_value(new, trace, quality)
        value_b = scenario.ground_truth_value(new, trace, quality)
        assert value_a == value_b

    def test_match_fraction_shrinks_with_decision_space(self, rng):
        """The Fig 5 phenomenon."""
        small = CfaScenario(n_clients=400, n_cdns=2)
        large = CfaScenario(n_clients=400, n_cdns=8)

        def match_fraction(scenario):
            quality = scenario.quality()
            trace = scenario.generate_trace(rng, quality)
            new = scenario.new_policy(quality)
            result = core.MatchingEstimator().estimate(new, trace)
            return result.diagnostics["match_fraction"]

        assert match_fraction(large) < match_fraction(small)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CfaScenario(n_clients=0)
        with pytest.raises(SimulationError):
            CfaScenario(bitrates=())
