"""``repro.api`` — the unified evaluation facade.

One import, two calls::

    from repro import api

    report = api.evaluate(trace, policy, estimator="dr")
    print(report.value)

    panel = api.compare(trace, policy, estimators=["dm", "snips", "dr"])
    print(panel.render())

:func:`evaluate` runs one named estimator and returns an
:class:`~repro.core.reporting.EvaluationReport`; :func:`compare` runs a
panel of estimators through the same report (this is the successor to the
deprecated ``repro.core.evaluate_policy``).  Estimators are looked up by
name in :data:`repro.api.registry.default_registry`; passing an
:class:`~repro.core.estimators.OffPolicyEstimator` instance instead of a
name is always allowed for custom configurations.

The facade adds nothing numerically: it builds the same estimator objects
and calls the same ``estimate()`` entry point a direct caller would, so
facade results are bit-identical to direct calls (a property the test
suite asserts).  Every call is wrapped in an observability span, so
``repro trace`` and ``--telemetry`` attribute work to ``api.evaluate`` /
``api.compare`` frames.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.api.registry import Registry, default_registry
from repro.api.specs import (
    EstimatorConfig,
    PolicySpec,
    TraceRef,
    _adapt_estimator,
    install_builtin_policies,
    resolve_estimator_config,
    resolve_policy_spec,
)
from repro.core.bootstrap import BootstrapResult, bootstrap_ci
from repro.core.diagnostics import overlap_report
from repro.core.estimators import EstimateResult, OffPolicyEstimator
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.propensity import PropensityModel
from repro.core.reporting import EvaluationReport
from repro.core.types import Trace
from repro.errors import EstimatorError
from repro.obs.spans import span

__all__ = [
    "EstimatorConfig",
    "EvaluationReport",
    "PolicySpec",
    "Registry",
    "TraceRef",
    "compare",
    "default_registry",
    "evaluate",
    "install_builtin_policies",
    "resolve_estimator_config",
    "resolve_policy_spec",
]

#: What callers may pass as ``policy=``: a built :class:`Policy`, a
#: :class:`PolicySpec`, or its mapping form.
PolicyLike = Union[Policy, PolicySpec, Mapping]

#: What callers may pass as ``estimator=``: a registry name, a built
#: estimator, an :class:`EstimatorConfig`, or its mapping form.
EstimatorLike = Union[str, OffPolicyEstimator, EstimatorConfig, Mapping]

#: What callers may pass as ``propensities=``: the logging policy (as an
#: object or policy spec), a fitted propensity model, or ``None`` (use
#: the trace's logged per-record propensities).
PropensitySpec = Union[Policy, PolicySpec, Mapping, PropensityModel, None]


def _split_propensities(
    propensities: PropensitySpec,
    registry: Registry,
) -> tuple[Optional[Policy], Optional[PropensityModel]]:
    """Map the polymorphic ``propensities=`` argument onto the
    ``old_policy=`` / ``propensity_model=`` pair the estimator entry
    points take (resolution priority is identical either way)."""
    if propensities is None:
        return None, None
    if isinstance(propensities, PropensityModel):
        return None, propensities
    if isinstance(propensities, Policy):
        return propensities, None
    if isinstance(propensities, (PolicySpec, Mapping)):
        return resolve_policy_spec(propensities, registry=registry), None
    raise EstimatorError(
        "propensities= must be a Policy (the logging policy), a policy "
        "spec (PolicySpec or mapping), a PropensityModel, or None; got "
        f"{type(propensities).__name__}"
    )


def _resolve_policy(policy: PolicyLike, registry: Registry) -> Policy:
    """Build (or pass through) the candidate policy for one call."""
    return resolve_policy_spec(policy, registry=registry)


def _resolve_estimator(
    estimator: EstimatorLike,
    model: Optional[RewardModel],
    clip: Optional[float],
    registry: Registry,
) -> OffPolicyEstimator:
    """Build (or pass through) the estimator for one :func:`evaluate`."""
    if isinstance(estimator, OffPolicyEstimator):
        if model is not None or clip is not None:
            raise EstimatorError(
                "model=/clip= only apply when the estimator is given by "
                "name; a pre-built estimator instance already carries its "
                "configuration"
            )
        return estimator
    if isinstance(estimator, (EstimatorConfig, Mapping)):
        if model is not None or clip is not None:
            raise EstimatorError(
                "model=/clip= only apply when the estimator is given by "
                "name; an estimator config carries its own model/clip "
                "options"
            )
        return resolve_estimator_config(estimator, registry=registry)
    return _adapt_estimator(
        registry.build_estimator(estimator, model=model, clip=clip)
    )


def evaluate(
    trace: Trace,
    policy: PolicyLike,
    estimator: EstimatorLike = "dr",
    *,
    model: Optional[RewardModel] = None,
    propensities: PropensitySpec = None,
    propensity_floor: Optional[float] = None,
    clip: Optional[float] = None,
    diagnostics: bool = True,
    bootstrap_replicates: int = 0,
    rng=None,
    registry: Optional[Registry] = None,
) -> EvaluationReport:
    """Evaluate *policy* on *trace* with one named estimator.

    Parameters
    ----------
    trace, policy:
        The logged trace and the candidate (new) policy to evaluate.
        *policy* may be a built :class:`Policy`, a
        :class:`~repro.api.specs.PolicySpec`, or its mapping form
        (``{"kind": "uniform", "options": {"space": [...]}}``) —
        spec-built policies are bit-identical to hand-built ones.
    estimator:
        A registry name (``"dm"``, ``"ips"``, ``"clipped-ips"``,
        ``"snips"``, ``"matching"``, ``"dr"``, ``"sndr"``,
        ``"switch-dr"``, ``"replay-dr"``), a pre-built estimator
        instance, an :class:`~repro.api.specs.EstimatorConfig`, or its
        mapping form (``{"name": "dr", "options": {"clip": 10.0}}``).
    model:
        Reward model for model-based estimators; omitted, each gets a
        fresh :class:`~repro.core.models.tabular.TabularMeanModel`.
    propensities:
        Where old-policy propensities come from: the logging
        :class:`Policy`, a fitted :class:`PropensityModel`, or ``None``
        to use the trace's logged per-record propensities.
    propensity_floor:
        Optional clip on tiny positive propensities (see
        :class:`~repro.core.propensity.FlooredPropensitySource`).
    clip:
        Canonical weight threshold for estimators that support it.
    diagnostics:
        Compute the overlap/randomness section.  Disable on hot paths
        (e.g. inside per-seed experiment loops) to skip that extra pass;
        the report's ``overlap`` is then ``None``.
    bootstrap_replicates:
        0 disables the bootstrap section.
    registry:
        Alternate :class:`Registry` (defaults to the module-level one).

    Returns the single-estimator :class:`EvaluationReport`;
    ``report.value`` is the estimate.  Estimator failures propagate as
    :class:`~repro.errors.EstimatorError` (there is no panel to fall
    back on — use :func:`compare` for graceful degradation).
    """
    registry = registry or default_registry
    policy = _resolve_policy(policy, registry)
    old_policy, propensity_model = _split_propensities(propensities, registry)
    built = _resolve_estimator(estimator, model, clip, registry)
    with span("api.evaluate", estimator=built.name):
        result = built.estimate(
            policy,
            trace,
            old_policy=old_policy,
            propensity_model=propensity_model,
            propensity_floor=propensity_floor,
        )
        overlap = (
            overlap_report(
                policy,
                trace,
                old_policy=old_policy,
                propensity_model=propensity_model,
            )
            if diagnostics
            else None
        )
        bootstrap: Optional[BootstrapResult] = None
        if bootstrap_replicates > 0:
            bootstrap = bootstrap_ci(
                built,
                policy,
                trace,
                old_policy=old_policy,
                propensity_model=propensity_model,
                replicates=bootstrap_replicates,
                rng=rng,
            )
        return EvaluationReport(
            estimates={built.name: result},
            overlap=overlap,
            bootstrap=bootstrap,
            recommended=built.name,
        )


def compare(
    trace: Trace,
    policy: PolicyLike,
    estimators: Sequence[EstimatorLike] = ("dm", "snips", "dr"),
    *,
    model: Optional[RewardModel] = None,
    propensities: PropensitySpec = None,
    clip: Optional[float] = None,
    extra_estimators: Optional[Dict[str, OffPolicyEstimator]] = None,
    diagnostics: bool = True,
    bootstrap_replicates: int = 0,
    rng=None,
    registry: Optional[Registry] = None,
) -> EvaluationReport:
    """Evaluate *policy* on *trace* with a panel of estimators.

    The default panel (DM, SNIPS, DR) and report semantics are exactly
    those of the deprecated ``repro.core.evaluate_policy``: each
    model-based estimator gets a fresh
    :class:`~repro.core.models.tabular.TabularMeanModel` unless *model*
    is given (then the one instance is shared — fit once, reused);
    estimators that fail with :class:`~repro.errors.EstimatorError` are
    reported in ``failed`` rather than aborting the panel; ``"dr"`` is
    recommended when it survived, else the first surviving estimator;
    the optional bootstrap resamples the recommended panel member.

    *estimators* entries are registry names, pre-built instances
    (labelled by their ``name``), or estimator configs
    (:class:`~repro.api.specs.EstimatorConfig` or mapping form, labelled
    by their ``name``); *extra_estimators* appends explicitly labelled
    instances, mirroring the old ``evaluate_policy`` keyword.  *clip* is
    forwarded to the named estimators that support it (configs carry
    their own options instead).  *policy* accepts the same spec forms as
    :func:`evaluate`.
    """
    registry = registry or default_registry
    if len(trace) == 0:
        raise EstimatorError("cannot evaluate on an empty trace")
    policy = _resolve_policy(policy, registry)
    old_policy, propensity_model = _split_propensities(propensities, registry)

    panel: Dict[str, OffPolicyEstimator] = {}
    for entry in estimators:
        if isinstance(entry, OffPolicyEstimator):
            panel[entry.name] = entry
            continue
        if isinstance(entry, (EstimatorConfig, Mapping)):
            built_entry = resolve_estimator_config(entry, registry=registry)
            panel[built_entry.name] = built_entry
            continue
        spec = registry.estimator_spec(entry)
        panel[entry] = _adapt_estimator(
            registry.build_estimator(
                entry,
                model=model if spec.needs_model else None,
                clip=clip if spec.supports_clip else None,
            )
        )
    panel.update(extra_estimators or {})

    with span("api.compare", estimators=",".join(panel)):
        estimates: Dict[str, EstimateResult] = {}
        failed: Dict[str, str] = {}
        for label, built in panel.items():
            try:
                estimates[label] = built.estimate(
                    policy,
                    trace,
                    old_policy=old_policy,
                    propensity_model=propensity_model,
                )
            except EstimatorError as failure:
                failed[label] = str(failure)
        if not estimates:
            raise EstimatorError(
                "every estimator failed; see the individual errors: "
                + repr(failed)
            )

        overlap = (
            overlap_report(
                policy,
                trace,
                old_policy=old_policy,
                propensity_model=propensity_model,
            )
            if diagnostics
            else None
        )
        recommended = "dr" if "dr" in estimates else next(iter(estimates))

        bootstrap: Optional[BootstrapResult] = None
        if bootstrap_replicates > 0:
            bootstrap = bootstrap_ci(
                panel[recommended],
                policy,
                trace,
                old_policy=old_policy,
                propensity_model=propensity_model,
                replicates=bootstrap_replicates,
                rng=rng,
            )
        return EvaluationReport(
            estimates=estimates,
            overlap=overlap,
            bootstrap=bootstrap,
            recommended=recommended,
            failed=failed,
        )
