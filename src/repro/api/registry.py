"""String-keyed estimator and reward-model registry behind :mod:`repro.api`.

The facade accepts estimator *names* (``"dr"``, ``"snips"``, ...) so that
callers never import estimator classes for the common paths.  The mapping
from name to constructor lives here, together with two capability flags
the facade needs to build each estimator correctly:

* ``needs_model`` — the constructor takes a ``model=`` reward model
  (DM/DR-family); when the caller supplies none, the facade builds a
  fresh :class:`~repro.core.models.tabular.TabularMeanModel` per
  estimator, matching the historical ``evaluate_policy`` panel.
* ``supports_clip`` — the constructor takes the canonical ``clip=``
  weight threshold (clipped IPS, DR-family, SWITCH-DR).

Because every estimator constructor speaks the canonical keyword
vocabulary (``model=``, ``clip=``, ``fit_on_trace=`` — enforced by lint
rule REP003), the classes themselves serve as factories; no adapter
lambdas are needed.  The module-level :data:`default_registry` carries
the built-in estimators and models; tests or extensions may register
additional names on their own :class:`Registry` (or, sparingly, on the
default one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.estimators import (
    IPS,
    ClippedIPS,
    DirectMethod,
    DoublyRobust,
    MatchingEstimator,
    OffPolicyEstimator,
    ReplayDoublyRobust,
    SelfNormalizedDR,
    SelfNormalizedIPS,
    SwitchDR,
)
from repro.core.models import (
    DecisionTreeRewardModel,
    KernelRewardModel,
    KNNRewardModel,
    RewardModel,
    RidgeRewardModel,
    TabularMeanModel,
)
from repro.core.policy import Policy
from repro.errors import EstimatorError, PolicyError

#: A policy-kind builder: decoded spec options plus the registry (for
#: nested specs) in, a built :class:`Policy` out.
PolicyBuilder = Callable[[Dict[str, object], "Registry"], Policy]


@dataclass(frozen=True)
class EstimatorSpec:
    """How the facade builds one named estimator."""

    name: str
    factory: Callable[..., OffPolicyEstimator]
    needs_model: bool = False
    supports_clip: bool = False


class Registry:
    """Mutable mapping of estimator/model names to their factories.

    Lookups raise :class:`~repro.errors.EstimatorError` naming the known
    keys, so a typo in ``repro.api.evaluate(..., estimator="drr")`` fails
    with an actionable message rather than a bare ``KeyError``.
    """

    def __init__(self) -> None:
        self._estimators: Dict[str, EstimatorSpec] = {}
        self._models: Dict[str, Callable[..., RewardModel]] = {}
        self._policies: Dict[str, PolicyBuilder] = {}

    # -- estimators -----------------------------------------------------

    def register_estimator(
        self,
        name: str,
        factory: Callable[..., OffPolicyEstimator],
        *,
        needs_model: bool = False,
        supports_clip: bool = False,
        replace: bool = False,
    ) -> None:
        """Register *factory* under *name* (``replace=True`` to override)."""
        if not replace and name in self._estimators:
            raise EstimatorError(
                f"estimator {name!r} is already registered; pass replace=True "
                "to override it"
            )
        self._estimators[name] = EstimatorSpec(
            name=name,
            factory=factory,
            needs_model=needs_model,
            supports_clip=supports_clip,
        )

    def estimator_spec(self, name: str) -> EstimatorSpec:
        """The :class:`EstimatorSpec` registered under *name*."""
        try:
            return self._estimators[name]
        except KeyError:
            known = ", ".join(sorted(self._estimators))
            raise EstimatorError(
                f"unknown estimator {name!r}; registered estimators: {known}"
            ) from None

    def estimator_names(self) -> Tuple[str, ...]:
        """All registered estimator names, sorted."""
        return tuple(sorted(self._estimators))

    def build_estimator(
        self,
        name: str,
        model: Optional[RewardModel] = None,
        clip: Optional[float] = None,
    ) -> OffPolicyEstimator:
        """Construct the estimator registered under *name*.

        Model-needing estimators get *model* when given and a fresh
        :class:`TabularMeanModel` otherwise; passing *model* or *clip* to
        an estimator that takes neither is an error (a silently ignored
        option would misreport what was evaluated).
        """
        spec = self.estimator_spec(name)
        options: Dict[str, object] = {}
        if spec.needs_model:
            options["model"] = model if model is not None else TabularMeanModel()
        elif model is not None:
            raise EstimatorError(
                f"estimator {name!r} does not take a reward model"
            )
        if clip is not None:
            if not spec.supports_clip:
                raise EstimatorError(
                    f"estimator {name!r} does not support clip="
                )
            options["clip"] = clip
        return spec.factory(**options)

    # -- policy kinds ---------------------------------------------------

    def register_policy(
        self,
        kind: str,
        builder: PolicyBuilder,
        *,
        replace: bool = False,
    ) -> None:
        """Register a policy-kind *builder* under *kind*.

        Builders take ``(options, registry)`` — the registry parameter
        lets composite kinds (mixtures, epsilon-greedy) resolve nested
        policy specs through the same table.
        """
        if not replace and kind in self._policies:
            raise PolicyError(
                f"policy kind {kind!r} is already registered; pass "
                "replace=True to override it"
            )
        self._policies[kind] = builder

    def policy_kinds(self) -> Tuple[str, ...]:
        """All registered policy kinds, sorted."""
        return tuple(sorted(self._policies))

    def build_policy(self, kind: str, options: Dict[str, object]) -> Policy:
        """Construct the policy kind registered under *kind*.

        The built-in kinds are installed by importing
        :mod:`repro.api.specs` (automatic via ``import repro.api``);
        custom registries can borrow them with
        :func:`repro.api.specs.install_builtin_policies`.
        """
        try:
            builder = self._policies[kind]
        except KeyError:
            if not self._policies:
                raise PolicyError(
                    f"unknown policy kind {kind!r}; no policy kinds are "
                    "registered on this registry — call "
                    "repro.api.specs.install_builtin_policies(registry) "
                    "to install the built-in kinds"
                ) from None
            known = ", ".join(sorted(self._policies))
            raise PolicyError(
                f"unknown policy kind {kind!r}; registered kinds: {known}"
            ) from None
        return builder(dict(options), self)

    # -- reward models --------------------------------------------------

    def register_model(
        self,
        name: str,
        factory: Callable[..., RewardModel],
        *,
        replace: bool = False,
    ) -> None:
        """Register a reward-model *factory* under *name*."""
        if not replace and name in self._models:
            raise EstimatorError(
                f"model {name!r} is already registered; pass replace=True "
                "to override it"
            )
        self._models[name] = factory

    def model_names(self) -> Tuple[str, ...]:
        """All registered model names, sorted."""
        return tuple(sorted(self._models))

    def build_model(self, name: str, **options) -> RewardModel:
        """Construct the reward model registered under *name*.

        *options* are forwarded to the factory (e.g. ``k=`` for the kNN
        model), so ``registry.build_model("knn", k=7)`` mirrors
        ``KNNRewardModel(k=7)``.
        """
        try:
            factory = self._models[name]
        except KeyError:
            known = ", ".join(sorted(self._models))
            raise EstimatorError(
                f"unknown reward model {name!r}; registered models: {known}"
            ) from None
        return factory(**options)


def _populate(registry: Registry) -> Registry:
    """Install the built-in estimators and reward models."""
    registry.register_estimator("dm", DirectMethod, needs_model=True)
    registry.register_estimator("ips", IPS)
    registry.register_estimator("clipped-ips", ClippedIPS, supports_clip=True)
    registry.register_estimator("snips", SelfNormalizedIPS)
    registry.register_estimator("matching", MatchingEstimator)
    registry.register_estimator(
        "dr", DoublyRobust, needs_model=True, supports_clip=True
    )
    registry.register_estimator(
        "sndr", SelfNormalizedDR, needs_model=True, supports_clip=True
    )
    registry.register_estimator(
        "switch-dr", SwitchDR, needs_model=True, supports_clip=True
    )
    registry.register_estimator("replay-dr", ReplayDoublyRobust, needs_model=True)
    registry.register_model("tabular", TabularMeanModel)
    registry.register_model("knn", KNNRewardModel)
    registry.register_model("ridge", RidgeRewardModel)
    registry.register_model("tree", DecisionTreeRewardModel)
    registry.register_model("kernel", KernelRewardModel)
    return registry


#: The registry :func:`repro.api.evaluate` / :func:`repro.api.compare`
#: consult by default.
default_registry = _populate(Registry())
