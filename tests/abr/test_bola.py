"""Tests for the BOLA controller."""

import numpy as np
import pytest

from repro import abr
from repro.errors import SimulationError

MANIFEST = abr.VideoManifest()


def _state(buffer, previous=None, observed=()):
    return abr.PlayerState(
        chunk_index=0,
        buffer_seconds=buffer,
        previous_bitrate_mbps=previous,
        observed_throughputs_mbps=tuple(observed),
    )


class TestBola:
    def test_empty_buffer_lowest(self):
        policy = abr.BolaPolicy(MANIFEST)
        assert policy.decision(_state(buffer=0.0)) == MANIFEST.ladder.lowest

    def test_monotone_in_buffer(self):
        policy = abr.BolaPolicy(MANIFEST)
        decisions = [
            policy.decision(_state(buffer=b)) for b in (0.0, 5.0, 10.0, 20.0, 30.0)
        ]
        assert decisions == sorted(decisions)

    def test_full_buffer_high_bitrate(self):
        policy = abr.BolaPolicy(MANIFEST, control_gain=15.0)
        assert policy.decision(_state(buffer=30.0)) >= MANIFEST.ladder.bitrates_mbps[-2]

    def test_control_gain_stretches_buffer_thresholds(self):
        """In the BOLA objective the buffer level needed to step up the
        ladder scales with V: at a fixed buffer, a larger control gain is
        *more* conservative."""
        small_v = abr.BolaPolicy(MANIFEST, control_gain=5.0)
        large_v = abr.BolaPolicy(MANIFEST, control_gain=30.0)
        state = _state(buffer=10.0)
        assert large_v.decision(state) <= small_v.decision(state)
        # Both still reach the top of the ladder once the buffer is deep
        # enough relative to their V.
        assert small_v.decision(_state(buffer=29.0)) > MANIFEST.ladder.lowest

    def test_ignores_throughput_history(self):
        policy = abr.BolaPolicy(MANIFEST)
        assert policy.decision(_state(10.0, observed=(0.1,))) == policy.decision(
            _state(10.0, observed=(50.0,))
        )

    def test_deterministic_distribution(self):
        policy = abr.BolaPolicy(MANIFEST)
        distribution = policy.probabilities(_state(10.0))
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert len(distribution) == 1

    def test_runs_in_simulator(self):
        efficiency = abr.BitrateEfficiency(MANIFEST.ladder)
        simulator = abr.SessionSimulator(
            abr.VideoManifest(chunk_count=30),
            abr.ConstantBandwidth(3.0),
            abr.ObservedThroughputModel(efficiency),
        )
        session = simulator.run(
            abr.ExploratoryABR(
                abr.BolaPolicy(abr.VideoManifest(chunk_count=30)), 0.1
            ),
            np.random.default_rng(0),
        )
        assert np.isfinite(session.session_qoe)

    def test_validation(self):
        with pytest.raises(SimulationError):
            abr.BolaPolicy(MANIFEST, control_gain=0.0)
