"""Grid policies: vectorised policy evaluation over a finite context grid.

The synthetic workloads draw contexts from a finite categorical grid
(``cardinality ** n_features`` cells).  Over such a grid any policy is
fully described by one ``(cells, decisions)`` probability matrix — and
once that matrix is precomputed, every propensity query is a gather, not
a dict lookup.  :class:`GridPolicy` snapshots a base policy into that
matrix form:

* ``propensity_batch`` over :class:`~repro.live.chunks.CodedSequence`
  inputs whose vocabularies are *identical* (``is``) to the policy's own
  grid resolves as ``matrix[context_codes, decision_codes]`` — one fused
  numpy gather for the whole chunk, the >1M records/s path.
* Any other input falls back to per-element lookups against the same
  stored matrix, so fast and slow paths return the same float64 objects
  bit for bit (both *read* matrix entries; neither recomputes them).

The matrix itself is built once via the base policy's own
``probability_matrix`` — after construction the grid policy is a pure
function of the snapshot, immune to any statefulness in the base.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.policy import Policy
from repro.core.spaces import DecisionSpace
from repro.core.types import ClientContext, Decision
from repro.errors import PolicyError
from repro.live.chunks import CodedSequence


class GridPolicy(Policy):
    """A policy tabulated over a finite grid of context cells.

    Parameters
    ----------
    base:
        Any policy; its ``probability_matrix`` over *cells* becomes the
        snapshot this policy serves forever after.
    cells:
        The context grid, as a tuple of (interned) contexts.  Shared by
        identity with the traffic generator's
        :attr:`~repro.live.chunks.StreamBatch.contexts_vocabulary`, which
        is what unlocks the coded fast path.
    """

    def __init__(
        self,
        base: Policy,
        cells: Tuple[ClientContext, ...],
        decisions_vocabulary: Tuple[Decision, ...] = None,
    ):
        super().__init__(base.space)
        if not cells:
            raise PolicyError("GridPolicy needs at least one context cell")
        self._cells = tuple(cells)
        if decisions_vocabulary is None:
            self._decisions = self._space.decisions
        else:
            # The caller shares one vocabulary tuple across policies and
            # stream batches; the coded fast path checks *identity*, so
            # accepting the shared object (after a value check) is what
            # makes the check pass.
            if tuple(decisions_vocabulary) != self._space.decisions:
                raise PolicyError(
                    "decisions_vocabulary does not match the decision space order"
                )
            self._decisions = decisions_vocabulary
        self._cell_rows: Dict[ClientContext, int] = {
            cell: row for row, cell in enumerate(self._cells)
        }
        if len(self._cell_rows) != len(self._cells):
            raise PolicyError("GridPolicy context cells must be distinct")
        matrix = np.asarray(base.probability_matrix(self._cells), dtype=float)
        if matrix.shape != (len(self._cells), len(self._decisions)):
            raise PolicyError(
                f"base policy produced a {matrix.shape} probability matrix; "
                f"expected {(len(self._cells), len(self._decisions))}"
            )
        matrix.setflags(write=False)
        self._matrix = matrix

    @property
    def cells(self) -> Tuple[ClientContext, ...]:
        """The context grid, in matrix row order."""
        return self._cells

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``(cells, decisions)`` probability snapshot."""
        return self._matrix

    def _row(self, context: ClientContext) -> int:
        try:
            return self._cell_rows[context]
        except KeyError:
            raise PolicyError(
                f"context {context!r} is not a cell of this GridPolicy's grid"
            ) from None

    def probabilities(self, context: ClientContext) -> Dict[Decision, float]:
        """The snapshot row for *context* as a decision → probability dict."""
        row = self._matrix[self._row(context)]
        return {
            decision: float(row[column])
            for column, decision in enumerate(self._decisions)
        }

    def propensity_batch(
        self,
        decisions: Sequence[Decision],
        contexts: Sequence[ClientContext],
    ) -> np.ndarray:
        """``mu(d_k | c_k)`` via one matrix gather where possible.

        Both branches read the same stored float64 entries, so they are
        bit-identical; only the addressing differs (codes vs hashed
        lookups).
        """
        if (
            isinstance(contexts, CodedSequence)
            and isinstance(decisions, CodedSequence)
            and contexts.vocabulary is self._cells
            and decisions.vocabulary is self._decisions
        ):
            return self._matrix[contexts.codes, decisions.codes]
        if len(decisions) != len(contexts):
            raise PolicyError(
                f"batch length mismatch: {len(decisions)} decisions vs "
                f"{len(contexts)} contexts"
            )
        rows = np.fromiter(
            (self._row(context) for context in contexts),
            dtype=np.intp,
            count=len(contexts),
        )
        space = self._space
        columns = np.fromiter(
            (space.index_of(decision) for decision in decisions),
            dtype=np.intp,
            count=len(decisions),
        )
        return self._matrix[rows, columns]

    def probability_matrix(self, contexts: Sequence[ClientContext]) -> np.ndarray:
        """``mu(d | c_k)`` rows gathered from the snapshot."""
        if (
            isinstance(contexts, CodedSequence)
            and contexts.vocabulary is self._cells
        ):
            return self._matrix[contexts.codes]
        rows = np.fromiter(
            (self._row(context) for context in contexts),
            dtype=np.intp,
            count=len(contexts),
        )
        return self._matrix[rows]


def grid_cells(space: DecisionSpace) -> Tuple[Decision, ...]:
    """The decision vocabulary a :class:`GridPolicy` codes against.

    Thin alias for ``space.decisions`` so call sites spell out that
    vocabulary *identity* (not just equality) is what the coded fast
    path checks.
    """
    return space.decisions
