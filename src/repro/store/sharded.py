"""``ShardedTrace`` — a Trace-compatible reader over an on-disk shard dir.

The reader never holds more than a few shards' worth of decoded columns
in memory (a small LRU, ``cache_shards``), and record objects are
materialised only on the escape hatches that genuinely need them.  That
is the whole point of the format: the estimators' streaming path (see
:mod:`repro.store.streaming`) consumes :meth:`ShardedTrace.iter_chunks`
and keeps peak memory at ``O(cached shards + per-record float columns)``
instead of ``O(n)`` Python record objects.

Decoding a shard builds a ready :class:`~repro.core.types.TraceColumns`
straight from the stored arrays — the same struct-of-arrays the dense
path computes from its record list — with repeated contexts *interned*
(one :class:`~repro.core.types.ClientContext` per distinct feature row
per shard).  Chunks are then zero-copy column slices
(:class:`ShardChunk`), so the streaming estimators pay for numpy views
and arithmetic, not per-record object construction.

Compatibility contract: any code written against
:class:`~repro.core.types.Trace` duck-types against this class —
``len``, iteration, integer/slice indexing, ``take``, ``columns()``,
``feature_names()``, ``has_propensities()``, ``mean_reward()`` all
behave identically.  The escape hatches that require the **whole** trace
as Python objects (``columns()``, ``contexts()``, slicing with a step)
work by materialising and are documented as such — use them for
moderate traces, and the chunked path for the ones that motivated the
format.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.types import ClientContext, Trace, TraceColumns, TraceRecord
from repro.errors import StoreError, TraceError
from repro.obs.spans import span
from repro.store.format import (
    _decode_feature_column,
    _decode_value,
    _decoded_context_builder,
    load_manifest,
    trusted_record,
)

#: Default ``iter_chunks`` bound: large enough to amortise the batched
#: estimator calls, small enough that a chunk's transient record objects
#: stay far below the shard cache in the memory profile.
DEFAULT_CHUNK_RECORDS = 65_536


class _ShardColumns:
    """One shard, decoded: ready-made columns plus the state labels
    (which :class:`~repro.core.types.TraceColumns` does not carry and
    record materialisation still needs)."""

    __slots__ = ("columns", "states")

    def __init__(self, columns: TraceColumns, states: List[Any]):
        self.columns = columns
        self.states = states


class _ShardStore:
    """Loads and caches decoded shards for one manifest directory."""

    def __init__(self, directory: Union[str, Path], cache_shards: int = 2):
        if cache_shards < 1:
            raise StoreError(f"cache_shards must be at least 1, got {cache_shards}")
        self.directory = Path(directory)
        self.manifest = load_manifest(self.directory)
        self.feature_names: Tuple[str, ...] = tuple(
            sorted(self.manifest["schema"]["features"])
        )
        self.counts: List[int] = [
            shard["records"] for shard in self.manifest["shards"]
        ]
        self.offsets: List[int] = [0]
        for count in self.counts:
            self.offsets.append(self.offsets[-1] + count)
        self.total: int = self.manifest["total_records"]
        self._cache_shards = cache_shards
        self._cache: "OrderedDict[int, _ShardColumns]" = OrderedDict()

    def __getstate__(self) -> Dict[str, Any]:
        # Decoded shards never cross a pickle/fork boundary: a worker
        # re-reads what it needs, so shipping a ShardedTrace to a process
        # pool costs one manifest, not gigabytes of columns.
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        return state

    def shard(self, index: int) -> _ShardColumns:
        """The decoded columns of shard *index* (LRU-cached)."""
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        entry = self.manifest["shards"][index]
        path = self.directory / entry["file"]
        with span("store.load.shard", shard=index):
            with np.load(path, allow_pickle=False) as data:
                rewards = data["rewards"]
                propensities = data["propensities"]
                timestamps = data["timestamps"]
                decision_codes = data["decision_codes"]
                decision_vocab = str(data["decision_vocab"][()])
                state_codes = data["state_codes"]
                state_vocab = str(data["state_vocab"][()])
                raw_features = []
                for position, kind in enumerate(entry["feature_kinds"]):
                    array = data[f"feature_{position}"]
                    vocab = None
                    if kind == "coded":
                        vocab = str(data[f"feature_{position}_vocab"][()])
                    raw_features.append((kind, array, vocab))
        count = entry["records"]
        lengths = {len(rewards), len(propensities), len(timestamps),
                   len(decision_codes), len(state_codes)}
        lengths.update(len(array) for _, array, _ in raw_features)
        if lengths != {count}:
            raise StoreError(
                f"{path}: array lengths {sorted(lengths)} disagree with the "
                f"manifest's {count} records; the shard is corrupt"
            )
        vocabulary = tuple(
            _decode_value(value) for value in json.loads(decision_vocab)
        )
        decisions = tuple(vocabulary[int(code)] for code in decision_codes)
        state_vocabulary = [
            _decode_value(value) for value in json.loads(state_vocab)
        ]
        states: List[Any] = [
            None if code < 0 else state_vocabulary[code]
            for code in state_codes.tolist()
        ]
        features = [
            _decode_feature_column(kind, array, vocab)
            for kind, array, vocab in raw_features
        ]
        columns = _ShardColumns(
            TraceColumns(
                rewards,
                propensities,
                timestamps,
                decisions,
                self._interned_contexts(features, count),
                decision_codes.astype(np.intp, copy=False),
                vocabulary,
                feature_names=self.feature_names,
            ),
            states,
        )
        self._cache[index] = columns
        while len(self._cache) > self._cache_shards:
            self._cache.popitem(last=False)
        return columns

    def _interned_contexts(
        self, features: List[List[Any]], count: int
    ) -> Tuple[ClientContext, ...]:
        """One context object per record, shared across equal feature rows.

        Contexts are value objects (frozen, hashed by their items), so
        records with equal feature rows can share one instance; on the
        low-cardinality categorical workloads this format targets, that
        collapses the dominant decode cost — per-record object
        construction — to one build per distinct row per shard.  The
        intern table dies with the decode, so arbitrary-cardinality
        traces pay at most one transient dict per shard.
        """
        build_context = _decoded_context_builder(self.feature_names)
        if not features:
            return (build_context(()),) * count
        interned: Dict[Tuple[Any, ...], ClientContext] = {}
        contexts: List[ClientContext] = []
        append = contexts.append
        for row in zip(*features):
            # Key by (type, value) pairs: True/1/1.0 hash equal but must
            # not share a context (same rule as the writer's encoder).
            key = tuple((value.__class__, value) for value in row)
            context = interned.get(key)
            if context is None:
                context = build_context(row)
                interned[key] = context
            append(context)
        return tuple(contexts)

    def shard_range(self, start: int, stop: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(shard_index, lo, hi)`` spans covering ``[start, stop)``
        in record order, with ``lo``/``hi`` local to the shard."""
        for index, count in enumerate(self.counts):
            shard_start = self.offsets[index]
            shard_stop = shard_start + count
            if shard_stop <= start:
                continue
            if shard_start >= stop:
                break
            yield index, max(start - shard_start, 0), min(stop - shard_start, count)

    def decode_records(self, index: int, lo: int, hi: int) -> List[TraceRecord]:
        """Materialise the records of one shard span as Python objects.

        Contexts come interned from the decoded shard columns; only the
        record shells are built here (and only on paths that genuinely
        need records — the streaming estimators never call this).
        """
        shard = self.shard(index)
        columns = shard.columns
        rewards = columns.rewards[lo:hi].tolist()
        propensities = columns.propensities[lo:hi].tolist()
        timestamps = columns.timestamps[lo:hi].tolist()
        decisions = columns.decisions[lo:hi]
        contexts = columns.contexts[lo:hi]
        states = shard.states[lo:hi]
        records: List[TraceRecord] = []
        append = records.append
        for position in range(hi - lo):
            propensity = propensities[position]
            timestamp = timestamps[position]
            append(
                trusted_record(
                    contexts[position],
                    decisions[position],
                    rewards[position],
                    None if propensity != propensity else propensity,
                    None if timestamp != timestamp else timestamp,
                    states[position],
                )
            )
        return records


class ShardChunk:
    """One :meth:`ShardedTrace.iter_chunks` window, columns first.

    Duck-types the read-only subset of the :class:`~repro.core.types.Trace`
    API the estimation stack touches — ``len``, :meth:`columns`,
    :meth:`feature_names`, :meth:`has_propensities`, iteration, integer
    indexing.  :meth:`columns` is a zero-copy slice of the decoded shard
    cache, so the streaming hot path (contracts, batched policy/model
    calls, estimator arithmetic) runs entirely on numpy views; record
    objects materialise lazily, only if the chunk is actually iterated
    (quarantine scans, estimated-propensity models).
    """

    __slots__ = ("_store", "_shard_index", "_lo", "_hi", "_columns", "_records")

    def __init__(self, store: _ShardStore, shard_index: int, lo: int, hi: int):
        self._store = store
        self._shard_index = shard_index
        self._lo = lo
        self._hi = hi
        self._columns: Optional[TraceColumns] = None
        self._records: Optional[List[TraceRecord]] = None

    def __len__(self) -> int:
        return self._hi - self._lo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardChunk(n={len(self)}, shard={self._shard_index})"

    def columns(self) -> TraceColumns:
        """This window's columns (views over the decoded shard)."""
        if self._columns is None:
            shard = self._store.shard(self._shard_index)
            self._columns = shard.columns.sliced(slice(self._lo, self._hi))
        return self._columns

    def feature_names(self) -> Tuple[str, ...]:
        """The shared feature schema (from the manifest)."""
        return self._store.feature_names

    def has_propensities(self) -> bool:
        """``True`` when every record in the window has a propensity."""
        return not bool(np.isnan(self.columns().propensities).any())

    def _materialized(self) -> List[TraceRecord]:
        if self._records is None:
            self._records = self._store.decode_records(
                self._shard_index, self._lo, self._hi
            )
        return self._records

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._materialized())

    def __getitem__(self, index):
        return self._materialized()[index]


class ShardedTrace:
    """Lazy, Trace-compatible reader over a shard directory.

    Parameters
    ----------
    directory:
        A directory previously produced by :class:`~repro.store.ShardWriter`
        (``Trace.to_shards``, ``write_shards``, ``repro shard``).
    chunk_records:
        Default chunk bound for :meth:`iter_chunks` — and therefore for
        the streaming estimators, which consume this trace through it.
    cache_shards:
        How many decoded shards the LRU keeps; peak reader memory is
        roughly ``cache_shards × shard_size`` decoded column entries.

    Slicing with step 1 returns another (lazy) :class:`ShardedTrace`
    view over the same store; any other step materialises via
    :meth:`take`.  Equality, ``map_rewards`` and friends are deliberately
    not implemented — transformations belong on in-memory traces.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        cache_shards: int = 2,
    ):
        if chunk_records <= 0:
            raise StoreError(
                f"chunk_records must be positive, got {chunk_records}"
            )
        self._store = _ShardStore(directory, cache_shards=cache_shards)
        self._start = 0
        self._stop = self._store.total
        self._chunk_records = int(chunk_records)

    @classmethod
    def _view(cls, store: _ShardStore, start: int, stop: int, chunk_records: int):
        view = object.__new__(cls)
        view._store = store
        view._start = start
        view._stop = stop
        view._chunk_records = chunk_records
        return view

    # -- identity ------------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The shard directory this reader serves."""
        return self._store.directory

    @property
    def manifest(self) -> Dict[str, Any]:
        """The validated manifest (see :mod:`repro.store.format`)."""
        return self._store.manifest

    @property
    def chunk_records(self) -> int:
        """Default :meth:`iter_chunks` bound used by streaming estimation."""
        return self._chunk_records

    def rechunked(self, chunk_records: int) -> "ShardedTrace":
        """The same trace with a different default chunk bound."""
        if chunk_records <= 0:
            raise StoreError(
                f"chunk_records must be positive, got {chunk_records}"
            )
        return type(self)._view(
            self._store, self._start, self._stop, int(chunk_records)
        )

    def __len__(self) -> int:
        return self._stop - self._start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTrace(n={len(self)}, dir={str(self._store.directory)!r})"
        )

    # -- chunked access (the streaming path) ----------------------------------

    def iter_chunks(self, max_records: Optional[int] = None) -> Iterator[ShardChunk]:
        """Yield the trace as :class:`ShardChunk` windows, in order.

        Each chunk holds at most *max_records* records (default: this
        reader's ``chunk_records``) and never spans a shard boundary, so
        one decoded shard at a time suffices.  Chunks expose the
        Trace-compatible read API — estimators' batched calls run on
        zero-copy column slices, and contracts/quarantine that iterate
        records materialise them lazily per chunk.
        """
        bound = self._chunk_records if max_records is None else int(max_records)
        if bound <= 0:
            raise StoreError(f"max_records must be positive, got {bound}")
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            for chunk_lo in range(lo, hi, bound):
                yield ShardChunk(
                    self._store, index, chunk_lo, min(chunk_lo + bound, hi)
                )

    def __iter__(self) -> Iterator[TraceRecord]:
        for chunk in self.iter_chunks():
            yield from chunk

    # -- random access ---------------------------------------------------------

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return type(self)._view(
                    self._store,
                    self._start + start,
                    self._start + stop,
                    self._chunk_records,
                )
            return self.take(range(start, stop, step))
        position = int(index)
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(f"record {index} out of range for {self!r}")
        absolute = self._start + position
        for shard_index, lo, hi in self._store.shard_range(absolute, absolute + 1):
            return self._store.decode_records(shard_index, lo, hi)[0]
        raise StoreError(f"record {absolute} not covered by any shard")

    def take(self, indices: Sequence[int]) -> Trace:
        """Materialise the records at *indices* as an in-memory trace.

        Mirrors :meth:`Trace.take` (repeats allowed, order preserved);
        this is the bridge to the dense path — e.g. evaluating a
        1M-record subsample of a 10M-record sharded trace both ways to
        assert bit-identity.
        """
        positions = [int(i) for i in indices]
        for position in positions:
            if not 0 <= position < len(self):
                raise TraceError(
                    f"take index {position} out of range for {self!r}"
                )
        # Decode shard by shard in index order, then reassemble, so a
        # sorted or clustered index list touches each shard once.
        decoded: Dict[int, TraceRecord] = {}
        for position in sorted(set(positions)):
            absolute = self._start + position
            for shard_index, lo, hi in self._store.shard_range(
                absolute, absolute + 1
            ):
                decoded[position] = self._store.decode_records(
                    shard_index, lo, hi
                )[0]
        return Trace._from_records([decoded[position] for position in positions])

    def subsample(self, count: int, rng: np.random.Generator) -> Trace:
        """A random subsample of *count* records (without replacement),
        preserving trace order — same contract as :meth:`Trace.subsample`."""
        if count > len(self):
            raise TraceError(
                f"cannot subsample {count} records from a trace of {len(self)}"
            )
        indices = sorted(rng.choice(len(self), size=count, replace=False))
        return self.take(indices)

    # -- Trace-compatible metadata ------------------------------------------------

    def feature_names(self) -> Tuple[str, ...]:
        """The shared feature schema (from the manifest; the writer
        enforces schema consistency, so no scan is needed)."""
        return self._store.feature_names

    def has_propensities(self) -> bool:
        """``True`` when every record in view carries a logged propensity.

        Fully-covered shards are answered from the manifest's propensity
        summaries; partially-covered boundary shards are checked from
        their decoded column.
        """
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            entry = self._store.manifest["shards"][index]
            if lo == 0 and hi == entry["records"]:
                if entry["propensities"]["count"] != entry["records"]:
                    return False
                continue
            values = self._store.shard(index).columns.propensities[lo:hi]
            if bool(np.isnan(values).any()):
                return False
        return True

    def rewards(self) -> np.ndarray:
        """All rewards as one float array (gathered shard by shard)."""
        out = np.empty(len(self), dtype=np.float64)
        cursor = 0
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            out[cursor : cursor + hi - lo] = self._store.shard(index).columns.rewards[
                lo:hi
            ]
            cursor += hi - lo
        return out

    def propensities(self) -> np.ndarray:
        """All logged propensities (``nan`` where missing)."""
        out = np.empty(len(self), dtype=np.float64)
        cursor = 0
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            out[cursor : cursor + hi - lo] = self._store.shard(
                index
            ).columns.propensities[lo:hi]
            cursor += hi - lo
        return out

    def decisions(self) -> List[Any]:
        """All decisions, in trace order."""
        out: List[Any] = []
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            out.extend(self._store.shard(index).columns.decisions[lo:hi])
        return out

    def decision_set(self) -> set:
        """The set of distinct decisions observed in the view."""
        return set(self.decisions())

    def mean_reward(self) -> float:
        """Average observed reward, identical to the dense computation
        (one gathered column, one :func:`numpy.mean`)."""
        if len(self) == 0:
            raise TraceError("mean_reward of an empty trace is undefined")
        return float(self.rewards().mean())

    # -- materialising escape hatches ---------------------------------------------

    def materialize(self) -> Trace:
        """The whole view as an in-memory :class:`Trace`.

        This is the explicit O(n)-objects escape hatch; everything above
        stays chunked.  Intended for moderate views (slices, debugging,
        compat with APIs that genuinely need a dense trace).
        """
        records: List[TraceRecord] = []
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            records.extend(self._store.decode_records(index, lo, hi))
        return Trace._from_records(records)

    def columns(self) -> TraceColumns:
        """Dense :class:`TraceColumns` over the whole view (materialises).

        Provided for Trace compatibility — estimators never call it on a
        sharded trace because :meth:`~repro.core.estimators.base.OffPolicyEstimator.estimate`
        routes anything with ``iter_chunks`` through the streaming path.
        """
        return self.materialize().columns()

    def contexts(self) -> List[Any]:
        """All contexts, in trace order (interned per shard)."""
        out: List[Any] = []
        for index, lo, hi in self._store.shard_range(self._start, self._stop):
            out.extend(self._store.shard(index).columns.contexts[lo:hi])
        return out


def is_streaming_trace(trace: Any) -> bool:
    """Whether *trace* should take the chunked estimation path.

    True for any non-:class:`Trace` object exposing ``iter_chunks`` —
    i.e. :class:`ShardedTrace` and views, plus third-party readers that
    adopt the same protocol.
    """
    return not isinstance(trace, Trace) and hasattr(trace, "iter_chunks")
