"""Structured per-seed run records and run-function outcomes.

The experiment harness used to reduce every failure to a bare
``failed_runs: int`` — losing *which* seed failed, *why*, and after how
many attempts.  :class:`RunRecord` preserves all of that, is JSON
round-trippable (so the run ledger can journal it), and replaces the
counter on :class:`~repro.experiments.harness.ExperimentResult` behind a
backward-compatible property.

:class:`RunOutcome` is the optional rich return type for per-seed run
functions: plain ``{estimator: error}`` mappings still work, but a run
function that used an :class:`~repro.runtime.fallback.EstimatorFallbackChain`
or quarantined trace records can report those degradations so the
harness surfaces them instead of hiding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import LedgerError

#: Status of a completed per-seed run.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class RunOutcome:
    """What one per-seed run function reports back to the harness.

    Attributes
    ----------
    errors:
        Per-estimator relative errors, exactly as the plain-mapping
        return convention.
    degradations:
        ``{estimator label: chain link that actually answered}`` for
        every estimate that fell through a fallback chain.
    quarantined:
        ``{reason: count}`` of trace records quarantined by
        :func:`repro.core.contracts.check_trace` before estimation.
    """

    errors: Dict[str, float]
    degradations: Dict[str, str] = field(default_factory=dict)
    quarantined: Dict[str, int] = field(default_factory=dict)


def coerce_outcome(raw: Union[RunOutcome, Mapping[str, float]]) -> RunOutcome:
    """Normalise a run function's return value to a :class:`RunOutcome`."""
    if isinstance(raw, RunOutcome):
        return raw
    return RunOutcome(errors={label: float(value) for label, value in raw.items()})


@dataclass(frozen=True)
class RunRecord:
    """The full story of one per-seed run (successful or not).

    Attributes
    ----------
    index:
        Zero-based position of the run in the sweep; pairs with the
        deterministic seed stream so a ledger can be resumed.
    seed:
        The integer seed the run's generator was built from.
    status:
        ``"ok"`` or ``"failed"``.
    attempts:
        How many attempts the retry executor spent (1 without retries).
    duration:
        Wall-clock seconds across all attempts.
    errors:
        Per-estimator relative errors (empty for failed runs).
    error_type, error_message:
        Exception class name and message of the *last* attempt's failure
        (``None`` for successful runs).
    degradations, quarantined:
        Propagated from :class:`RunOutcome`.
    telemetry:
        Deterministic per-seed telemetry payload captured by the retry
        executor (``{"metrics": ..., "spans": ...}``, see
        :mod:`repro.obs.sinks`); journaled in the ledger so resumed
        sweeps preserve fallback-hop and weight-health history.
        ``None`` when the run recorded nothing.
    profile:
        Real wall/CPU flat profile and timing metrics of the run — a
        side channel (``compare=False``) that is **never journaled**:
        replayed ledger records have ``profile=None``, and equality
        between a fresh and a replayed record ignores it by design.
    """

    index: int
    seed: int
    status: str
    attempts: int
    duration: float
    errors: Dict[str, float] = field(default_factory=dict)
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    degradations: Dict[str, str] = field(default_factory=dict)
    quarantined: Dict[str, int] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """``True`` for a successful run."""
        return self.status == STATUS_OK

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable representation (exact float round-trip:
        ``json`` serialises floats via ``repr``, the shortest exact
        form, so replayed errors are bit-identical)."""
        payload: Dict[str, Any] = {
            "index": self.index,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "duration": self.duration,
            "errors": dict(self.errors),
        }
        if self.error_type is not None:
            payload["error_type"] = self.error_type
            payload["error_message"] = self.error_message
        if self.degradations:
            payload["degradations"] = dict(self.degradations)
        if self.quarantined:
            payload["quarantined"] = dict(self.quarantined)
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        # profile is deliberately absent: real timings are a side
        # channel, and journaling them would break ledger byte-identity.
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any], where: str = "ledger") -> "RunRecord":
        """Inverse of :meth:`to_json`; raises :class:`LedgerError` on a
        malformed record."""
        try:
            record = cls(
                index=int(payload["index"]),
                seed=int(payload["seed"]),
                status=str(payload["status"]),
                attempts=int(payload["attempts"]),
                duration=float(payload["duration"]),
                errors={str(k): float(v) for k, v in payload["errors"].items()},
                error_type=payload.get("error_type"),
                error_message=payload.get("error_message"),
                degradations=dict(payload.get("degradations", {})),
                quarantined={
                    str(k): int(v) for k, v in payload.get("quarantined", {}).items()
                },
                telemetry=payload.get("telemetry"),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise LedgerError(f"{where}: malformed run record: {exc}") from exc
        if record.status not in (STATUS_OK, STATUS_FAILED):
            raise LedgerError(
                f"{where}: run record has unknown status {record.status!r}"
            )
        return record
