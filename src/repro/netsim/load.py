"""Load-dependent server performance models.

The paper's "hidden decision-reward coupling" challenge (§4.1) is that
assigning many clients to a server degrades the performance of future
clients on that server.  We model this with classic queueing-flavoured
latency curves: response time grows with utilisation and diverges as the
server approaches capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class LoadLatencyCurve:
    """M/M/1-inspired latency as a function of utilisation.

    ``latency(rho) = base_latency / (1 - rho)`` for utilisation
    ``rho < saturation``, clamped at ``saturation`` to keep rewards
    finite (a real server sheds or queues load rather than producing an
    infinite response time).

    Parameters
    ----------
    base_latency:
        Latency at zero load (milliseconds, or any consistent unit).
    saturation:
        Utilisation at which the curve stops growing (e.g. 0.95).
    """

    base_latency: float
    saturation: float = 0.95

    def __post_init__(self) -> None:
        if self.base_latency <= 0:
            raise SimulationError(
                f"base_latency must be positive, got {self.base_latency}"
            )
        if not 0.0 < self.saturation < 1.0:
            raise SimulationError(
                f"saturation must lie in (0, 1), got {self.saturation}"
            )

    def latency(self, utilisation: float) -> float:
        """Expected latency at *utilisation* (clamped into [0, saturation])."""
        rho = min(max(utilisation, 0.0), self.saturation)
        return self.base_latency / (1.0 - rho)


class Server:
    """A server with finite capacity and load-dependent latency.

    Tracks its own active-client count so simulations can realise the
    self-induced congestion feedback loop of §4.1: every admitted client
    raises utilisation, degrading latency for subsequent clients.
    """

    def __init__(self, name: str, capacity: float, curve: LoadLatencyCurve):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self._name = name
        self._capacity = float(capacity)
        self._curve = curve
        self._active = 0.0

    @property
    def name(self) -> str:
        """Server identifier."""
        return self._name

    @property
    def capacity(self) -> float:
        """Nominal concurrent-client capacity."""
        return self._capacity

    @property
    def active_load(self) -> float:
        """Currently assigned load (in client units)."""
        return self._active

    @property
    def utilisation(self) -> float:
        """Current utilisation ``active / capacity``."""
        return self._active / self._capacity

    def admit(self, load: float = 1.0) -> None:
        """Add *load* client-units to the server."""
        if load < 0:
            raise SimulationError(f"load must be non-negative, got {load}")
        self._active += load

    def release(self, load: float = 1.0) -> None:
        """Remove *load* client-units (floored at zero)."""
        if load < 0:
            raise SimulationError(f"load must be non-negative, got {load}")
        self._active = max(0.0, self._active - load)

    def reset(self) -> None:
        """Drop all active load."""
        self._active = 0.0

    def expected_latency(self, extra_load: float = 0.0) -> float:
        """Latency a client would see if admitted now with *extra_load*
        additional concurrent load already committed."""
        return self._curve.latency((self._active + extra_load) / self._capacity)

    def sample_latency(self, rng: np.random.Generator, noise_scale: float = 0.1) -> float:
        """One noisy latency observation at the current utilisation.

        Noise is multiplicative lognormal so latencies stay positive.
        """
        mean = self.expected_latency()
        return float(mean * rng.lognormal(mean=0.0, sigma=noise_scale))

    def load_state(self, low: float = 0.5, high: float = 0.8) -> str:
        """Discretise utilisation into the paper's §4.3 proxy states
        ``"low-load"`` / ``"high-load"`` / ``"overload"``."""
        rho = self.utilisation
        if rho < low:
            return "low-load"
        if rho < high:
            return "high-load"
        return "overload"
