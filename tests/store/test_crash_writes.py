"""Crash-consistent writes: a kill at any instant never yields garbage.

The protocol under test (DESIGN.md §11): shard bytes land via atomic
rename, a journal entry certifies each durable shard *after* its rename,
and the manifest commits atomically last.  So for a crash at any point:
either the directory loads (manifest present ⇒ complete), or it is
*detectably* partial — no manifest, and a journal `repro repair` can
promote.  Never a manifest pointing at garbage.
"""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    ShardWriter,
    ShardedTrace,
    load_manifest,
    repair_store,
    verify_store,
)
from repro.testing.faults import SimulatedCrash

from .conftest import build_trace

SHARD_SIZE = 25
RECORDS = 100  # 4 shards


def _write_with_crash(directory, crash):
    """Stream the standard trace into *directory*; *crash* decides when
    to raise SimulatedCrash, called as crash(record_index)."""
    trace = build_trace(n=RECORDS)
    with pytest.raises(SimulatedCrash):
        with ShardWriter(directory, shard_size=SHARD_SIZE) as writer:
            for index, record in enumerate(trace):
                crash(index)
                writer.append(record)
            crash(RECORDS)
            writer.close()


class TestCrashPoints:
    def test_crash_mid_stream_leaves_detectable_partial(self, tmp_path):
        directory = tmp_path / "s"

        def crash(index):
            if index == 60:  # two shards committed, third buffering
                raise SimulatedCrash()

        _write_with_crash(directory, crash)
        assert not (directory / MANIFEST_NAME).exists()
        assert (directory / JOURNAL_NAME).exists()
        with pytest.raises(StoreError, match="repro repair"):
            load_manifest(directory)
        report = repair_store(directory)
        assert report.mode == "journal"
        assert report.total_records == 50
        assert verify_store(directory).ok
        assert len(ShardedTrace(directory)) == 50

    def test_crash_before_any_shard_has_nothing_to_recover(self, tmp_path):
        directory = tmp_path / "s"

        def crash(index):
            if index == 10:  # nothing flushed yet
                raise SimulatedCrash()

        _write_with_crash(directory, crash)
        assert not (directory / MANIFEST_NAME).exists()
        assert not (directory / JOURNAL_NAME).exists()
        with pytest.raises(StoreError, match="nothing to repair"):
            repair_store(directory)

    def test_crash_inside_shard_write_never_leaves_a_torn_shard(
        self, tmp_path, monkeypatch
    ):
        # Crash *inside* the atomic write of shard 2 (before its rename):
        # the final name must not exist, shards 0-1 must be intact.
        from repro.store import format as format_module

        directory = tmp_path / "s"
        real_write = format_module.atomic_write_bytes
        calls = {"n": 0}

        def crashing_write(path, data, durable=True):
            calls["n"] += 1
            if calls["n"] == 3:
                raise SimulatedCrash()
            return real_write(path, data, durable=durable)

        monkeypatch.setattr(format_module, "atomic_write_bytes", crashing_write)
        trace = build_trace(n=RECORDS)
        with pytest.raises(SimulatedCrash):
            with ShardWriter(directory, shard_size=SHARD_SIZE) as writer:
                writer.extend(trace)
        assert not (directory / "shard-00002.npz").exists()
        assert not list(directory.glob("*.tmp"))  # tmp cleaned on the way out
        report = repair_store(directory)
        assert report.kept == ["shard-00000.npz", "shard-00001.npz"]
        assert verify_store(directory).ok

    def test_crash_between_rename_and_journal_orphans_the_shard(
        self, tmp_path, monkeypatch
    ):
        # The narrow window the protocol deliberately loses: bytes are
        # durable but no journal entry certifies them, so repair must
        # leave the file out of the manifest (conservative, detectable).
        directory = tmp_path / "s"
        real_append = ShardWriter._journal_append
        calls = {"n": 0}

        def crashing_append(self, payload):
            calls["n"] += 1
            if calls["n"] == 3:
                raise SimulatedCrash()
            return real_append(self, payload)

        monkeypatch.setattr(ShardWriter, "_journal_append", crashing_append)
        trace = build_trace(n=RECORDS)
        with pytest.raises(SimulatedCrash):
            with ShardWriter(directory, shard_size=SHARD_SIZE) as writer:
                writer.extend(trace)
        assert (directory / "shard-00002.npz").exists()
        report = repair_store(directory)
        assert report.kept == ["shard-00000.npz", "shard-00001.npz"]
        assert report.orphaned == ["shard-00002.npz"]
        assert verify_store(directory).ok
        assert len(ShardedTrace(directory)) == 50

    def test_crash_before_manifest_recovers_every_shard(self, tmp_path):
        directory = tmp_path / "s"

        def crash(index):
            if index == RECORDS:  # all records appended, close() next
                raise SimulatedCrash()

        _write_with_crash(directory, crash)
        report = repair_store(directory)
        assert report.total_records == RECORDS
        assert verify_store(directory).ok
        recovered = ShardedTrace(directory)
        original = build_trace(n=RECORDS)
        assert recovered.mean_reward() == original.mean_reward()

    def test_torn_journal_line_drops_only_the_uncertified_shard(self, tmp_path):
        directory = tmp_path / "s"

        def crash(index):
            if index == RECORDS:
                raise SimulatedCrash()

        _write_with_crash(directory, crash)
        journal = directory / JOURNAL_NAME
        text = journal.read_text()
        # Tear the final entry mid-line: a crash mid-append.
        journal.write_text(text[: text.rfind("{") + 20])
        report = repair_store(directory)
        assert report.total_records == RECORDS - SHARD_SIZE
        assert verify_store(directory).ok


class TestCleanClose:
    def test_journal_removed_after_manifest_commits(self, tmp_path):
        directory = tmp_path / "s"
        build_trace(n=RECORDS).to_shards(directory, shard_size=SHARD_SIZE)
        assert not (directory / JOURNAL_NAME).exists()
        assert (directory / MANIFEST_NAME).exists()

    def test_repair_of_a_healthy_store_is_a_no_op(self, tmp_path):
        directory = tmp_path / "s"
        build_trace(n=RECORDS).to_shards(directory, shard_size=SHARD_SIZE)
        before = (directory / MANIFEST_NAME).read_text()
        report = repair_store(directory)
        assert not report.changed
        assert report.dropped == [] and report.rederived == []
        assert (directory / MANIFEST_NAME).read_text() == before


class TestKillResumeVerifyRoundTrip:
    def test_kill_repair_verify_estimate(self, tmp_path):
        """The CI chaos-smoke round trip, in-process: kill a writer,
        repair from its journal, verify clean, and get a quantitatively
        sane estimate from the survivors."""
        from repro.core import IPS, DecisionSpace, FunctionPolicy

        directory = tmp_path / "s"

        def crash(index):
            if index == 77:
                raise SimulatedCrash()

        _write_with_crash(directory, crash)
        report = repair_store(directory)
        assert report.mode == "journal"
        assert verify_store(directory).ok
        trace = ShardedTrace(directory)
        assert len(trace) == 75
        decisions = sorted(trace.decision_set(), key=repr)
        space = DecisionSpace(decisions)
        uniform = FunctionPolicy(
            space, lambda context: {d: 1.0 / len(decisions) for d in decisions}
        )
        result = IPS().estimate(uniform, trace)
        assert result.n == 75
