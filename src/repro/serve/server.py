"""The asyncio connection loop and server harnesses.

Three entry points, one per audience:

* :func:`serve` — the coroutine: bind, accept, loop (for embedding in
  an existing event loop);
* :func:`run_server` — the blocking CLI entry behind ``repro serve``:
  enables the process telemetry recorder, prints the bound address,
  runs until interrupted;
* :class:`BackgroundServer` — a context-manager harness that runs the
  whole server on a daemon thread with an ephemeral port, for tests and
  the ``repro bench --serve`` load harness (client code stays fully
  synchronous).

Connections are keep-alive HTTP/1.1: one reader task per connection,
requests answered strictly in order per connection, concurrency across
connections.  Framing errors answer with the right 4xx and close;
unexpected exceptions answer 500 with the exception class name (the
message may hold server paths — those stay in the server log).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Optional

from repro.errors import ServeError
from repro.obs.spans import Recorder, enable, increment, observe
from repro.serve.app import EvaluationService, _error_payload
from repro.serve.http import read_request, render_response
from repro.store.naming import TraceCatalog

#: Default bind address for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321


async def _handle_connection(
    service: EvaluationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one keep-alive connection until EOF or a framing error."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except ServeError as error:
                body = json.dumps(
                    _error_payload(error.status, str(error))
                ).encode("utf-8")
                writer.write(
                    render_response(error.status, body, keep_alive=False)
                )
                await writer.drain()
                return
            if request is None:
                return
            loop = asyncio.get_running_loop()
            started = loop.time()
            try:
                status, payload = await service.handle(request)
            except Exception as error:  # noqa: BLE001 - last-resort 500
                # The repr stays server-side; clients get the class name.
                print(
                    f"repro serve: internal error answering "
                    f"{request.method} {request.path}: {error!r}",
                    file=sys.stderr,
                )
                increment("serve.http.internal_error")
                status, payload = 500, _error_payload(
                    500, f"internal error: {type(error).__name__}"
                )
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
            observe("serve.http.request.seconds", loop.time() - started)
            keep_alive = request.keep_alive and status < 500
            writer.write(
                render_response(status, body, keep_alive=keep_alive)
            )
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        # The client hung up mid-write; nothing to answer.
        increment("serve.http.connection_reset")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            increment("serve.http.connection_reset")


async def serve(
    service: EvaluationService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> asyncio.AbstractServer:
    """Bind and start accepting; returns the listening server object."""

    async def connection(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(connection, host=host, port=port)


def run_server(
    registry_path: str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_size: int = 256,
    cache_ttl: Optional[float] = None,
    recorder: Optional[Recorder] = None,
) -> None:
    """Blocking entry point behind ``repro serve <registry.json>``.

    Enables the process telemetry recorder (so ``GET /v1/telemetry``
    answers with real counters) unless one is passed in, and runs until
    KeyboardInterrupt.
    """
    from repro.serve.cache import ResultCache

    catalog = TraceCatalog.from_file(registry_path)
    recorder = recorder if recorder is not None else enable()
    service = EvaluationService(
        catalog,
        cache=ResultCache(max_entries=cache_size, ttl=cache_ttl),
        recorder=recorder,
    )

    async def main() -> None:
        server = await serve(service, host=host, port=port)
        sockets = server.sockets or []
        for sock in sockets:
            bound_host, bound_port = sock.getsockname()[:2]
            print(
                f"repro serve: listening on http://{bound_host}:{bound_port} "
                f"({len(catalog.names())} trace(s): "
                f"{', '.join(catalog.names())})"
            )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: shutting down")


class BackgroundServer:
    """Run a full server on a daemon thread (tests and ``bench --serve``).

    Binds an ephemeral port by default; :attr:`address` blocks until the
    socket is listening.  Use as a context manager::

        with BackgroundServer(service) as address:
            client = ServeClient(*address)
            ...
    """

    def __init__(
        self,
        service: EvaluationService,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ):
        self._service = service
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._address: Optional[tuple] = None
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: REP006 - stored and re-raised by start(); a daemon thread must not die silently
            self._failure = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await serve(self._service, host=self._host, port=self._port)
        sockets = server.sockets or []
        self._address = sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop.wait()

    def start(self) -> "BackgroundServer":
        """Start the thread and wait until the socket is listening."""
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("background server did not start within 30s", 500)
        if self._failure is not None:
            raise ServeError(
                f"background server failed to start: {self._failure!r}", 500
            )
        return self

    @property
    def address(self) -> tuple:
        """``(host, port)`` actually bound (ephemeral ports resolved)."""
        if self._address is None:
            raise ServeError("background server is not running", 500)
        return self._address

    def stop(self) -> None:
        """Signal the loop to exit and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> tuple:
        self.start()
        return self.address

    def __exit__(self, *exc_info) -> None:
        self.stop()
