"""REP003 vocabulary fixture: __init__ keywords outside the canon (line 9)."""

from repro.core.estimators.base import OffPolicyEstimator


class AliasKeywordEstimator(OffPolicyEstimator):
    """Implements the hook but spells its constructor keywords wrong."""

    def __init__(self, reward_model, max_weight=10.0, **legacy):
        """Non-canonical spellings; only **legacy is allowed as-is."""
        self._model = reward_model
        self._clip = max_weight

    @property
    def name(self):
        """Estimator name."""
        return "alias-keywords"

    def _estimate(self, new_policy, trace, propensities):
        """Degenerate estimate."""
        return None
