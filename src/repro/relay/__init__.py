"""VoIP relay-selection substrate (VIA; paper Fig 3)."""

from repro.relay.scenario import RelayScenario

__all__ = ["RelayScenario"]
