"""Schema checker for JSONL telemetry files.

CI runs ``python -m repro.obs.validate PATH`` after the fig7a telemetry
smoke: exit 0 when the file matches the format documented in
:mod:`repro.obs.sinks`, exit 1 (with a per-line message) when it does
not.  :func:`validate_telemetry_file` is the importable form the tests
use.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, List, Mapping, Optional, Union

from repro.errors import TelemetryError
from repro.obs.metrics import SNAPSHOT_SECTIONS
from repro.obs.sinks import TELEMETRY_KIND, TELEMETRY_VERSION

_GAUGE_KEYS = {"last", "updates"}
_HISTOGRAM_KEYS = {"count", "total", "min", "max"}


def _fail(where: str, message: str) -> None:
    raise TelemetryError(f"{where}: {message}")


def _check_number(where: str, what: str, value: Any) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(where, f"{what} must be a number, got {type(value).__name__}")


def _check_metrics(where: str, metrics: Any) -> None:
    if not isinstance(metrics, dict):
        _fail(where, "telemetry metrics must be an object")
    unknown = set(metrics) - set(SNAPSHOT_SECTIONS)
    if unknown:
        _fail(where, f"unknown metric sections {sorted(unknown)}")
    for name, value in metrics.get("counters", {}).items():
        _check_number(where, f"counter {name!r}", value)
    for name, entry in metrics.get("gauges", {}).items():
        if not isinstance(entry, dict) or set(entry) != _GAUGE_KEYS:
            _fail(where, f"gauge {name!r} must have keys {sorted(_GAUGE_KEYS)}")
        for key in _GAUGE_KEYS:
            _check_number(where, f"gauge {name!r}.{key}", entry[key])
    for name, entry in metrics.get("histograms", {}).items():
        if not isinstance(entry, dict) or set(entry) != _HISTOGRAM_KEYS:
            _fail(where, f"histogram {name!r} must have keys {sorted(_HISTOGRAM_KEYS)}")
        for key in _HISTOGRAM_KEYS:
            _check_number(where, f"histogram {name!r}.{key}", entry[key])


def _check_telemetry(where: str, telemetry: Any) -> None:
    if telemetry is None:
        return
    if not isinstance(telemetry, dict):
        _fail(where, "telemetry payload must be an object or null")
    unknown = set(telemetry) - {"metrics", "spans"}
    if unknown:
        _fail(where, f"unknown telemetry keys {sorted(unknown)}")
    if "metrics" in telemetry:
        _check_metrics(where, telemetry["metrics"])
    if "spans" in telemetry:
        spans = telemetry["spans"]
        if not isinstance(spans, dict):
            _fail(where, "telemetry spans must be an object")
        for path, count in spans.items():
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                _fail(where, f"span count for {path!r} must be a positive integer")


def validate_telemetry_file(path: Union[str, Path]) -> Mapping[str, Any]:
    """Validate one telemetry file; returns its parsed header.

    Raises :class:`~repro.errors.TelemetryError` (with the offending
    line number) on any schema violation.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TelemetryError(f"cannot read telemetry file {path}: {exc}") from exc
    if not lines:
        raise TelemetryError(f"{path}: telemetry file is empty")

    header: Optional[Mapping[str, Any]] = None
    run_indices: List[int] = []
    saw_summary = False
    for line_number, line in enumerate(lines, start=1):
        where = f"{path}:{line_number}"
        if not line.strip():
            _fail(where, "blank line")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"{where}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            _fail(where, "every line must be a JSON object")
        if line_number == 1:
            if payload.get("kind") != TELEMETRY_KIND:
                _fail(where, f"header kind must be {TELEMETRY_KIND!r}")
            if payload.get("version") != TELEMETRY_VERSION:
                _fail(where, f"unsupported telemetry version {payload.get('version')!r}")
            for key in ("experiment", "root_seed", "runs"):
                if key not in payload:
                    _fail(where, f"header missing {key!r}")
            header = payload
            continue
        if saw_summary:
            _fail(where, "content after the summary line")
        kind = payload.get("kind")
        if kind == "run":
            for key in ("index", "seed", "status", "duration", "telemetry"):
                if key not in payload:
                    _fail(where, f"run line missing {key!r}")
            if payload["duration"] != 0.0:
                _fail(where, "run duration must be canonicalised to 0.0")
            _check_telemetry(where, payload["telemetry"])
            run_indices.append(int(payload["index"]))
        elif kind == "summary":
            if "telemetry" not in payload:
                _fail(where, "summary line missing 'telemetry'")
            _check_telemetry(where, payload["telemetry"])
            saw_summary = True
        else:
            _fail(where, f"unknown line kind {kind!r}")

    if header is None:
        raise TelemetryError(f"{path}: telemetry file has no header")
    if not saw_summary:
        raise TelemetryError(f"{path}: telemetry file has no summary line")
    if run_indices != list(range(len(run_indices))):
        raise TelemetryError(f"{path}: run lines are not in dense index order")
    if len(run_indices) != int(header["runs"]):
        raise TelemetryError(
            f"{path}: header promises {header['runs']} runs, "
            f"found {len(run_indices)} run lines"
        )
    return header


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: validate each path argument, report, exit 0/1."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.validate TELEMETRY_FILE [...]", file=sys.stderr)
        return 1
    status = 0
    for raw in argv:
        try:
            header = validate_telemetry_file(raw)
        except TelemetryError as exc:
            print(f"INVALID {exc}", file=sys.stderr)
            status = 1
        else:
            print(
                f"OK {raw}: experiment={header['experiment']} "
                f"runs={header['runs']} root_seed={header['root_seed']}"
            )
    return status


if __name__ == "__main__":
    sys.exit(main())
