"""Telemetry sinks: the JSONL telemetry file and the human renders.

The per-seed telemetry payload (what :func:`run_telemetry` builds from a
:class:`~repro.obs.spans.Recorder`, what the run ledger journals on each
:class:`~repro.runtime.records.RunRecord`, and what the telemetry file
repeats) is the **deterministic** view of a run::

    {"metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
     "spans": {"estimate[estimator=dr]": 1, ...}}

``metrics`` is a deterministic :meth:`MetricsRegistry.snapshot` (timing
metrics dropped, exactly as ledger durations are canonicalised to 0.0)
and ``spans`` maps span *paths* to completed counts.  Both are pure
functions of the seeded run, so sequential, parallel, and resumed sweeps
journal byte-identical telemetry.  Real timings travel separately as the
non-journaled flat profile (:meth:`Recorder.flat_profile`).

Telemetry file format (one JSON object per line, like the run ledger):

* line 1 — header::

      {"kind": "repro-telemetry", "version": 1, "experiment": "fig7a",
       "root_seed": 2017, "runs": 50}

* one ``{"kind": "run", ...}`` line per seed, in run-index order, with
  the canonicalised duration (0.0) and the per-seed telemetry payload;
* final line — ``{"kind": "summary", "telemetry": <merged payload>}``
  where the merge was performed in run-index order.

``python -m repro.obs.validate FILE`` checks this schema in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import SNAPSHOT_SECTIONS, merge_snapshot, snapshot_is_empty
from repro.obs.spans import PATH_SEPARATOR, Recorder, SpanRecord

TELEMETRY_KIND = "repro-telemetry"
TELEMETRY_VERSION = 1

#: Canonical duration journaled for telemetry lines (telemetry is
#: deterministic; real timings live in the non-journaled profile).
CANONICAL_DURATION = 0.0


def run_telemetry(recorder: Recorder) -> Optional[Dict[str, Any]]:
    """The deterministic per-seed telemetry payload of *recorder*.

    Returns ``None`` when the run produced no telemetry at all, so run
    records without instrumented work journal exactly as before.
    """
    payload: Dict[str, Any] = {}
    metrics = recorder.metrics.snapshot(deterministic=True)
    if not snapshot_is_empty(metrics):
        payload["metrics"] = metrics
    spans = recorder.span_counts()
    if spans:
        payload["spans"] = spans
    return payload or None


def merge_telemetry(
    target: Dict[str, Any], other: Optional[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Merge per-seed telemetry *other* into *target* in place.

    Must be called in run-index order (see :func:`merge_snapshot`) so
    the merged payload is identical however the sweep was executed.
    """
    if not other:
        return target
    other_metrics = other.get("metrics")
    if other_metrics:
        merged = merge_snapshot(target.setdefault("metrics", {}), other_metrics)
        if snapshot_is_empty(merged):
            del target["metrics"]
    other_spans = other.get("spans")
    if other_spans:
        spans = target.setdefault("spans", {})
        for path, count in other_spans.items():
            spans[path] = spans.get(path, 0) + count
    return target


def merge_profile(
    target: Dict[str, Dict[str, float]],
    other: Optional[Mapping[str, Mapping[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Merge a flat profile *other* into *target* in place.

    Profiles carry real timings and are never journaled, so merge order
    only affects float noise nobody asserts on.
    """
    if not other:
        return target
    for path, entry in other.items():
        merged = target.get(path)
        if merged is None:
            target[path] = dict(entry)
        else:
            merged["count"] += entry["count"]
            merged["wall"] += entry["wall"]
            merged["cpu"] += entry["cpu"]
    return target


def write_telemetry_file(
    path: Union[str, Path],
    experiment: str,
    root_seed: int,
    runs: int,
    records: Iterable[Any],
    summary: Optional[Mapping[str, Any]],
) -> Path:
    """Write the JSONL telemetry file for one completed sweep.

    *records* are the sweep's :class:`~repro.runtime.records.RunRecord`
    objects in run-index order; *summary* is the index-order-merged
    telemetry payload.  Written once at the end of a sweep (the run
    ledger remains the crash checkpoint), so the file is byte-identical
    across sequential/parallel/resumed executions.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: List[str] = [
        json.dumps(
            {
                "kind": TELEMETRY_KIND,
                "version": TELEMETRY_VERSION,
                "experiment": experiment,
                "root_seed": root_seed,
                "runs": runs,
            }
        )
    ]
    for record in records:
        lines.append(
            json.dumps(
                {
                    "kind": "run",
                    "index": record.index,
                    "seed": record.seed,
                    "status": record.status,
                    "duration": CANONICAL_DURATION,
                    "telemetry": record.telemetry,
                }
            )
        )
    lines.append(json.dumps({"kind": "summary", "telemetry": dict(summary) if summary else None}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _format_value(value: float) -> str:
    """Deterministic compact number formatting for renders."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return format(number, ".6g")


def render_telemetry(
    telemetry: Optional[Mapping[str, Any]], indent: str = "  "
) -> List[str]:
    """Human lines for a merged telemetry payload (deterministic)."""
    lines: List[str] = []
    if not telemetry:
        return lines
    metrics = telemetry.get("metrics") or {}
    for section in SNAPSHOT_SECTIONS:
        entries = metrics.get(section)
        if not entries:
            continue
        lines.append(f"{indent}{section}:")
        for name in sorted(entries):
            entry = entries[name]
            if section == "counters":
                detail = _format_value(entry)
            elif section == "gauges":
                detail = (
                    f"{_format_value(entry['last'])} "
                    f"({_format_value(entry['updates'])} updates)"
                )
            else:
                mean = entry["total"] / entry["count"] if entry["count"] else 0.0
                detail = (
                    f"n={_format_value(entry['count'])} "
                    f"mean={_format_value(mean)} "
                    f"min={_format_value(entry['min'])} "
                    f"max={_format_value(entry['max'])}"
                )
            lines.append(f"{indent}{indent}{name}: {detail}")
    spans = telemetry.get("spans")
    if spans:
        lines.append(f"{indent}spans:")
        for span_path in sorted(spans):
            lines.append(f"{indent}{indent}{span_path}: {_format_value(spans[span_path])}")
    return lines


def render_flat_profile(
    profile: Mapping[str, Mapping[str, float]], limit: Optional[int] = None
) -> List[str]:
    """Human lines for a flat profile, hottest (by wall time) first."""
    if not profile:
        return ["(no spans recorded)"]
    ordered = sorted(profile.items(), key=lambda item: (-item[1]["wall"], item[0]))
    if limit is not None:
        ordered = ordered[:limit]
    width = max(len(path) for path, _ in ordered)
    width = max(width, len("span"))
    lines = [f"{'span'.ljust(width)}  {'count':>7}  {'wall s':>10}  {'cpu s':>10}"]
    for path, entry in ordered:
        lines.append(
            f"{path.ljust(width)}  {int(entry['count']):>7}  "
            f"{entry['wall']:>10.4f}  {entry['cpu']:>10.4f}"
        )
    return lines


def render_span_tree(spans: Sequence[SpanRecord]) -> List[str]:
    """Human tree render of recorded spans (for ``repro trace``).

    Aggregates repeated spans by path, indents by nesting depth, and
    orders siblings by first completion so the tree reads in execution
    order.
    """
    if not spans:
        return ["(no spans recorded)"]
    order: List[str] = []
    totals: Dict[str, Dict[str, float]] = {}
    for record in spans:
        entry = totals.get(record.path)
        if entry is None:
            order.append(record.path)
            totals[record.path] = {
                "count": 1,
                "wall": record.wall_seconds,
                "cpu": record.cpu_seconds,
                "depth": record.depth,
            }
        else:
            entry["count"] += 1
            entry["wall"] += record.wall_seconds
            entry["cpu"] += record.cpu_seconds
    # Children complete before their parents, so sort paths
    # lexicographically on their segment tuples to restore tree order
    # while keeping sibling groups together.
    order.sort(key=lambda path: path.split(PATH_SEPARATOR))
    lines: List[str] = []
    for path in order:
        entry = totals[path]
        label = path.rsplit(PATH_SEPARATOR, 1)[-1]
        indent = "  " * int(entry["depth"])
        lines.append(
            f"{indent}{label}  x{int(entry['count'])}  "
            f"wall={entry['wall']:.4f}s cpu={entry['cpu']:.4f}s"
        )
    return lines
