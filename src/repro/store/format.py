"""The on-disk sharded trace format: shard files plus a JSON manifest.

A **sharded trace** is a directory of ``shard-NNNNN.npz`` files plus one
``manifest.json``.  Each shard holds the same struct-of-arrays layout as
:class:`~repro.core.types.TraceColumns` — one array per record field —
so readers can hand whole columns to the batched estimator paths without
ever materialising per-record Python objects for the full trace:

* ``rewards`` / ``propensities`` / ``timestamps`` — ``float64`` columns
  (``nan`` encodes a missing propensity/timestamp, which
  :class:`~repro.core.types.TraceRecord` stores as ``None``);
* ``decision_codes`` + ``decision_vocab`` — decisions as integer codes
  into a per-shard first-seen vocabulary (vocabulary entries are
  JSON-encoded with the same tuple tagging as ``Trace.to_jsonl``, so
  composite decisions like ``("cdn-1", 720)`` round-trip exactly);
* ``state_codes`` + ``state_vocab`` — system-state labels, code ``-1``
  encoding ``None``;
* one column per context feature, named ``feature_<i>`` in sorted
  feature-name order.  A feature column is stored as raw ``float64`` /
  ``int64`` when every value in the shard is a plain Python float/int,
  and falls back to the coded (codes + JSON vocabulary) encoding for
  everything else — both are exact round-trips.

The manifest records the format version, the feature schema and its
hash, per-shard record counts and integrity fields (byte size and
sha256 content checksum, format v2), and per-shard reward/propensity
summaries.  **Invalidation rules** (enforced by the reader, documented
in DESIGN.md §10–11): a manifest whose ``version`` the reader does not
speak is refused (v1, pre-checksum, still loads — with a warning — for
backward compatibility); a manifest whose ``schema_hash`` does not
match the hash recomputed from its own schema is refused; a shard whose
size, checksum, or array lengths disagree with the manifest is refused
at decode time with a classified
:class:`~repro.errors.ShardCorruptionError`.

**Crash consistency** (DESIGN.md §11): every shard and the manifest are
written via tmp-file + fsync + ``os.replace`` (:mod:`repro.ioutil`),
and each committed shard is journaled to a write-ahead
``journal.jsonl`` *after* its rename — so a crash at any instant leaves
either a fully loadable directory or a cleanly detectable partial one
(no manifest, journal listing exactly the durable shards, which
``repro repair`` can promote into a manifest).  A manifest can never
point at garbage.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.types import (
    ClientContext,
    Trace,
    TraceRecord,
    _decode_value,
    _encode_value,
)
from repro.errors import JsonlRecordError, StoreError, TraceError
from repro.ioutil import atomic_write_bytes, atomic_write_text, fsync_directory
from repro.obs.spans import observe, recording, span
from repro.store.integrity import shard_checksum

#: Identifies a repro shard directory; readers refuse anything else.
FORMAT_NAME = "repro-sharded-trace"

#: Bump on any incompatible layout change; readers refuse versions they
#: do not speak.  v2 added per-shard integrity fields (``bytes``,
#: ``sha256``) and the write-ahead journal.
FORMAT_VERSION = 2

#: Manifest versions this reader can load.  v1 (pre-checksum) manifests
#: load with a warning; their shards are readable but unverifiable.
SUPPORTED_VERSIONS = (1, 2)

#: Manifest filename inside a shard directory.
MANIFEST_NAME = "manifest.json"

#: Write-ahead journal filename inside a shard directory.  Present only
#: while a write is in flight (or after a crash); removed once the
#: manifest commits.
JOURNAL_NAME = "journal.jsonl"

#: Format tag on the journal's header line.
JOURNAL_KIND = "repro-shard-journal"

#: Default records per shard for writers that are not told otherwise.
DEFAULT_SHARD_SIZE = 100_000

#: Raw (non-coded) feature column encodings.
_RAW_KINDS = ("f8", "i8")


def schema_hash(feature_names: Sequence[str], version: int = FORMAT_VERSION) -> str:
    """Deterministic hash of a trace's feature schema.

    Covers the format version and the sorted feature names — the two
    things that decide whether a reader can interpret the columns at
    all.  Stored in the manifest and recomputed by the reader *at the
    manifest's own version* (a v1 manifest is validated with
    ``version=1``); a mismatch means the manifest was hand-edited or
    corrupted.
    """
    payload = json.dumps(
        {"version": version, "features": sorted(feature_names)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def shard_filename(index: int) -> str:
    """Canonical filename of the *index*-th shard."""
    return f"shard-{index:05d}.npz"


def _canonical(value: Any) -> Any:
    """Normalise numpy scalars to plain Python so JSON vocabularies and
    equality against freshly-decoded values both behave."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _encode_object_column(values: List[Any]) -> Tuple[np.ndarray, str]:
    """Code *values* into a first-seen vocabulary.

    Returns the ``intp`` code array and the JSON-encoded vocabulary
    (tuple-tagged, exactly like ``Trace.to_jsonl``).
    """
    codes = np.empty(len(values), dtype=np.intp)
    vocabulary: List[Any] = []
    positions: Dict[Any, int] = {}
    for index, value in enumerate(values):
        # Keyed by (type, value): Python hashes True == 1 == 1.0, which
        # would otherwise conflate vocabulary entries that must decode
        # back to distinct objects.
        key = (value.__class__, value)
        code = positions.get(key)
        if code is None:
            code = len(vocabulary)
            positions[key] = code
            vocabulary.append(value)
        codes[index] = code
    encoded = json.dumps([_encode_value(entry) for entry in vocabulary])
    return codes, encoded


def _decode_object_column(codes: np.ndarray, vocabulary_json: str) -> List[Any]:
    """Inverse of :func:`_encode_object_column`."""
    vocabulary = [_decode_value(entry) for entry in json.loads(vocabulary_json)]
    return [vocabulary[int(code)] for code in codes]


def _encode_feature_column(values: List[Any]) -> Tuple[str, np.ndarray, Optional[str]]:
    """Pick the tightest exact encoding for one feature column.

    ``("f8", array, None)`` when every value is a plain float,
    ``("i8", array, None)`` when every value is a plain int that fits
    ``int64``, else ``("coded", codes, vocab_json)``.  ``bool`` is an
    ``int`` subclass but must round-trip as ``bool``, so it always takes
    the coded path.
    """
    if values and all(type(value) is float for value in values):
        return "f8", np.asarray(values, dtype=np.float64), None
    if values and all(
        type(value) is int and -(2**63) <= value < 2**63 for value in values
    ):
        return "i8", np.asarray(values, dtype=np.int64), None
    codes, vocabulary = _encode_object_column(values)
    return "coded", codes, vocabulary


def _decode_feature_column(
    kind: str, array: np.ndarray, vocabulary_json: Optional[str]
) -> List[Any]:
    """Inverse of :func:`_encode_feature_column`."""
    if kind in _RAW_KINDS:
        return array.tolist()
    return _decode_object_column(array, vocabulary_json)


def _summary(values: np.ndarray) -> Dict[str, float]:
    """Min/max/sum summary of one finite-or-nan float column."""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return {"count": 0, "min": None, "max": None, "sum": 0.0}
    return {
        "count": int(finite.size),
        "min": float(finite.min()),
        "max": float(finite.max()),
        "sum": float(finite.sum()),
    }


def encode_shard(
    records: Sequence[TraceRecord],
    feature_names: Sequence[str],
) -> Tuple[bytes, Dict[str, Any]]:
    """Encode one shard's records into npz bytes plus its manifest entry.

    Deterministic: the same records in the same order always produce the
    same bytes, the same checksum, and the same entry (minus ``file``,
    which the caller assigns) — which is what lets ``repro repair``
    re-derive a corrupted shard bit-identically from the source records.
    """
    count = len(records)
    arrays: Dict[str, np.ndarray] = {}
    rewards = np.empty(count, dtype=np.float64)
    propensities = np.empty(count, dtype=np.float64)
    timestamps = np.empty(count, dtype=np.float64)
    decisions: List[Any] = []
    states: List[Any] = []
    for position, record in enumerate(records):
        rewards[position] = record.reward
        propensities[position] = (
            np.nan if record.propensity is None else record.propensity
        )
        timestamps[position] = (
            np.nan if record.timestamp is None else record.timestamp
        )
        decisions.append(_canonical(record.decision))
        states.append(_canonical(record.state))
    arrays["rewards"] = rewards
    arrays["propensities"] = propensities
    arrays["timestamps"] = timestamps
    decision_codes, decision_vocab = _encode_object_column(decisions)
    arrays["decision_codes"] = decision_codes
    arrays["decision_vocab"] = np.asarray(decision_vocab)
    state_values = [state for state in states if state is not None]
    state_codes, state_vocab = _encode_object_column(state_values)
    padded = np.full(count, -1, dtype=np.intp)
    padded[[i for i, state in enumerate(states) if state is not None]] = (
        state_codes
    )
    arrays["state_codes"] = padded
    arrays["state_vocab"] = np.asarray(state_vocab)
    feature_kinds: List[str] = []
    for feature_index, name in enumerate(feature_names):
        column = [_canonical(record.context[name]) for record in records]
        kind, array, vocabulary = _encode_feature_column(column)
        feature_kinds.append(kind)
        arrays[f"feature_{feature_index}"] = array
        if vocabulary is not None:
            arrays[f"feature_{feature_index}_vocab"] = np.asarray(vocabulary)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    data = buffer.getvalue()
    entry = {
        "records": count,
        "bytes": len(data),
        "sha256": shard_checksum(data),
        "feature_kinds": feature_kinds,
        "rewards": _summary(rewards),
        "propensities": _summary(propensities),
    }
    return data, entry


class ShardWriter:
    """Stream records into a shard directory, one shard per ``shard_size``.

    Usage::

        with ShardWriter(directory, shard_size=100_000) as writer:
            for record in records:
                writer.append(record)
        sharded = ShardedTrace(directory)

    The writer buffers at most one shard of records at a time, so a
    10M-record trace can be written with O(shard_size) memory.  The first
    record fixes the feature schema; later records with a different
    schema raise :class:`~repro.errors.TraceError` (the format stores
    one column per feature, so a sharded trace is schema-consistent by
    construction).

    Crash-consistency protocol (DESIGN.md §11), per shard:

    1. the shard is encoded fully in memory and its sha256 computed;
    2. the bytes land via tmp-file + fsync + ``os.replace`` — the final
       name only ever points at a complete shard;
    3. a journal entry (filename, record count, size, checksum,
       summaries) is appended to ``journal.jsonl`` and fsynced — the
       durable record that this shard committed.

    The manifest is written by :meth:`close`, after the final shard,
    with the same atomic recipe, and the journal is removed once it
    lands.  A crash at any instant therefore leaves either a loadable
    directory (manifest present ⇒ every shard it names committed) or a
    cleanly detectable partial one (no manifest; the journal names
    exactly the shards that made it to disk, which ``repro repair`` can
    promote into a manifest).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        shard_size: int = DEFAULT_SHARD_SIZE,
    ):
        if shard_size <= 0:
            raise StoreError(f"shard_size must be positive, got {shard_size}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        if (self._directory / MANIFEST_NAME).exists():
            raise StoreError(
                f"{self._directory} already holds a sharded trace; "
                "refusing to overwrite it"
            )
        self._shard_size = int(shard_size)
        self._feature_names: Optional[Tuple[str, ...]] = None
        self._buffer: List[TraceRecord] = []
        self._shards: List[Dict[str, Any]] = []
        self._total = 0
        self._closed = False
        self._journal = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._journal is not None:
            # Crashing out: close the handle but leave journal.jsonl on
            # disk — it is the recovery record `repro repair` reads.
            self._journal.close()
            self._journal = None

    @property
    def directory(self) -> Path:
        """The shard directory being written."""
        return self._directory

    def append(self, record: TraceRecord) -> None:
        """Buffer one record, flushing a full shard to disk."""
        if self._closed:
            raise StoreError("ShardWriter is closed")
        names = record.context.keys()
        if self._feature_names is None:
            self._feature_names = names
        elif names != self._feature_names:
            raise TraceError(
                "sharded traces require one feature schema; record "
                f"{self._total + len(self._buffer)} has {names}, expected "
                f"{self._feature_names}"
            )
        self._buffer.append(record)
        if len(self._buffer) >= self._shard_size:
            self._flush_shard()

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append every record of *records* in order."""
        for record in records:
            self.append(record)

    def _journal_append(self, payload: Dict[str, Any]) -> None:
        """Append one fsynced line to the write-ahead journal."""
        if self._journal is None:
            self._journal = open(
                self._directory / JOURNAL_NAME, "w", encoding="utf-8"
            )
            header = {
                "kind": JOURNAL_KIND,
                "version": 1,
                "format_version": FORMAT_VERSION,
                "schema": {"features": sorted(self._feature_names or ())},
                "requested_shard_size": self._shard_size,
            }
            self._journal.write(json.dumps(header, sort_keys=True) + "\n")
        self._journal.write(json.dumps(payload, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _flush_shard(self) -> None:
        records = self._buffer
        self._buffer = []
        index = len(self._shards)
        path = self._directory / shard_filename(index)
        with span("store.write.shard", shard=index):
            data, entry = encode_shard(records, self._feature_names or ())
            atomic_write_bytes(path, data)
        if recording():
            observe("store.shard.bytes", float(len(data)))
        entry = {"file": path.name, **entry}
        # Journal *after* the rename: an entry certifies a durable shard.
        self._journal_append(entry)
        self._shards.append(entry)
        self._total += len(records)

    def close(self) -> Path:
        """Flush the final partial shard and atomically write the manifest.

        Returns the manifest path.  Closing a writer that saw no records
        raises :class:`~repro.errors.StoreError` — an empty sharded
        trace cannot be evaluated and is almost certainly a bug at the
        call site.
        """
        if self._closed:
            return self._directory / MANIFEST_NAME
        if self._buffer:
            self._flush_shard()
        if self._total == 0:
            raise StoreError(
                f"{self._directory}: refusing to write an empty sharded trace"
            )
        features = sorted(self._feature_names or ())
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "checksum_algorithm": "sha256",
            "schema": {"features": features},
            "schema_hash": schema_hash(features),
            "total_records": self._total,
            "requested_shard_size": self._shard_size,
            "shards": self._shards,
        }
        path = self._directory / MANIFEST_NAME
        atomic_write_text(
            path, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        if self._journal is not None:
            self._journal.close()
            self._journal = None
            # The manifest is durable; the journal's job is done.
            (self._directory / JOURNAL_NAME).unlink(missing_ok=True)
            fsync_directory(self._directory)
        self._closed = True
        return path


def write_shards(
    records: Iterable[TraceRecord],
    directory: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Path:
    """Write *records* (any iterable, consumed once) as a sharded trace.

    Returns the manifest path.  Memory stays O(shard_size) however large
    the iterable is, which is the point: pair it with a generator (e.g.
    :meth:`repro.workloads.SyntheticWorkload.iter_records` or
    :func:`iter_jsonl_records`) and a 10M-record trace never exists in
    RAM.
    """
    with span("store.write", directory=str(directory)):
        with ShardWriter(directory, shard_size=shard_size) as writer:
            writer.extend(records)
        return writer.close()


def _parse_jsonl_line(path, line: str, line_number: int) -> Optional[TraceRecord]:
    """Decode one JSONL line (None for blank), with classified errors."""
    from repro.core.types import _record_from_json

    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JsonlRecordError(
            f"{path}:{line_number}: invalid JSON ({exc.msg})",
            path=str(path),
            line_number=line_number,
        ) from exc
    try:
        return _record_from_json(payload, where=f"{path}:{line_number}")
    except JsonlRecordError:
        raise
    except TraceError as exc:
        raise JsonlRecordError(
            f"{path}:{line_number}: malformed trace record ({exc})",
            path=str(path),
            line_number=line_number,
        ) from exc


def iter_jsonl_records(
    path: Union[str, Path],
    follow: bool = False,
    poll_interval: float = 0.05,
    idle_timeout: Optional[float] = None,
    stop: Optional[Any] = None,
) -> Iterable[TraceRecord]:
    """Stream :class:`TraceRecord` objects from a ``Trace.to_jsonl`` file.

    One line is decoded at a time, so converting a large JSONL trace to
    shards (``repro shard``) never holds the full trace in memory.

    **Follow mode** (``follow=True``) tails a *live* file the way the
    live tier needs (DESIGN.md §13): only complete, newline-terminated
    lines are decoded; a **torn trailing line** (a writer caught
    mid-record) is buffered and re-polled until its newline arrives —
    never silently dropped, and never misread as end-of-stream.  File
    **rotation** (the path replaced with a new inode, or truncated) is
    detected on each idle poll: any complete trailing line of the
    rotated-away file is flushed first (a finished file may legitimately
    lack a trailing newline), then the new file is followed from its
    start.  Transient ``OSError`` reads are retried on the next poll.
    Reads go through the same fault-injection choke point as shard I/O
    (:data:`repro.store.integrity._read_fault_hook`), so the chaos
    harness covers tailing too.

    Follow mode ends when *stop* (a zero-argument callable) returns
    true, or after *idle_timeout* seconds without new data (``None`` =
    follow forever).  If the buffer still holds a torn line at that
    point, a final decode is attempted; an undecodable torn tail raises
    :class:`~repro.errors.JsonlRecordError` rather than vanishing.

    Raises
    ------
    JsonlRecordError
        On malformed JSON or a JSON payload that is not a valid trace
        record; the exception carries ``path`` and ``line_number`` as
        structured attributes (and names both in its message) — a bare
        ``json.JSONDecodeError`` never escapes this iterator.
    """
    if follow:
        yield from _follow_jsonl_records(
            Path(path),
            poll_interval=poll_interval,
            idle_timeout=idle_timeout,
            stop=stop,
        )
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            record = _parse_jsonl_line(path, line, line_number)
            if record is not None:
                yield record


def _follow_jsonl_records(
    path: Path,
    poll_interval: float,
    idle_timeout: Optional[float],
    stop: Optional[Any],
) -> Iterable[TraceRecord]:
    """The tailing engine behind ``iter_jsonl_records(follow=True)``.

    Reads in binary and decodes only complete lines, so a torn multibyte
    character at the tail is as safe as a torn record.  State per file
    generation: the open handle, its inode (rotation detection), and the
    undecoded tail ``buffer``.
    """
    import time as _time

    from repro.store import integrity

    if poll_interval <= 0:
        raise StoreError(f"poll_interval must be positive, got {poll_interval}")
    handle = None
    inode: Optional[int] = None
    buffer = b""
    line_number = 0
    idle = 0.0

    def _fault_hook() -> None:
        hook = integrity._read_fault_hook
        if hook is not None:
            hook(str(path))

    def _flush_tail() -> Optional[TraceRecord]:
        # A finished (rotated-away or stopped) file may legitimately end
        # without a trailing newline; decode whatever is buffered as its
        # final line.  An undecodable fragment raises — the torn record
        # must never be silently dropped.
        nonlocal buffer, line_number
        if not buffer.strip():
            buffer = b""
            return None
        line_number += 1
        line = buffer.decode("utf-8", errors="replace")
        buffer = b""
        return _parse_jsonl_line(path, line, line_number)

    try:
        while True:
            if stop is not None and stop():
                break
            if handle is None:
                try:
                    _fault_hook()
                    handle = open(path, "rb")
                    inode = os.fstat(handle.fileno()).st_ino
                except OSError:
                    # Not created yet (or rotating right now): poll.
                    _time.sleep(poll_interval)
                    idle += poll_interval
                    if idle_timeout is not None and idle >= idle_timeout:
                        break
                    continue
            try:
                _fault_hook()
                data = handle.read()
            except OSError:
                # Transient read fault: retry on the next poll.
                _time.sleep(poll_interval)
                idle += poll_interval
                if idle_timeout is not None and idle >= idle_timeout:
                    break
                continue
            if data:
                idle = 0.0
                buffer += data
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line_number += 1
                    line = buffer[:newline].decode("utf-8", errors="replace")
                    buffer = buffer[newline + 1 :]
                    record = _parse_jsonl_line(path, line, line_number)
                    if record is not None:
                        yield record
                continue
            # At EOF: has the file rotated or been truncated under us?
            rotated = False
            try:
                status = os.stat(path)
                if status.st_ino != inode or status.st_size < handle.tell():
                    rotated = True
            except OSError:
                rotated = True
            if rotated:
                record = _flush_tail()
                if record is not None:
                    yield record
                handle.close()
                handle = None
                line_number = 0
                continue
            _time.sleep(poll_interval)
            idle += poll_interval
            if idle_timeout is not None and idle >= idle_timeout:
                break
        record = _flush_tail()
        if record is not None:
            yield record
    finally:
        if handle is not None:
            handle.close()


def load_manifest(
    directory: Union[str, Path], check_files: bool = True
) -> Dict[str, Any]:
    """Read and validate a shard directory's manifest.

    Applies the invalidation rules: unknown format name, unsupported
    version, schema-hash mismatch, record-count inconsistencies, and
    (format v2) missing integrity fields all raise
    :class:`~repro.errors.StoreError`.  A v1 (pre-checksum) manifest
    still loads, with a :class:`UserWarning` that its shards cannot be
    byte-verified — ``repro repair`` upgrades such a directory in place.

    ``check_files=False`` skips the shard-file existence scan — used by
    ``repro repair``, whose whole job is a directory where some shards
    may be gone.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        journal = directory / JOURNAL_NAME
        hint = (
            "a write-ahead journal is present — the writer was "
            "interrupted; `repro repair` can recover the committed shards"
            if journal.exists()
            else "was the writer interrupted before close()?"
        )
        raise StoreError(
            f"{directory} is not a sharded trace (no {MANIFEST_NAME}); {hint}"
        )
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path}: manifest is not valid JSON") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise StoreError(
            f"{path}: format {manifest.get('format')!r} is not {FORMAT_NAME!r}"
        )
    version = manifest.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise StoreError(
            f"{path}: format version {version!r} is not supported (reader "
            f"speaks versions {SUPPORTED_VERSIONS}); regenerate the shards "
            "with this library version"
        )
    if version < FORMAT_VERSION:
        warnings.warn(
            f"{path}: pre-checksum (v{version}) manifest — shard integrity "
            "cannot be byte-verified; run `repro repair` to upgrade it to "
            f"v{FORMAT_VERSION} with sha256 checksums",
            UserWarning,
            stacklevel=2,
        )
    features = manifest.get("schema", {}).get("features")
    if not isinstance(features, list):
        raise StoreError(f"{path}: manifest schema carries no feature list")
    if manifest.get("schema_hash") != schema_hash(features, version=version):
        raise StoreError(
            f"{path}: schema_hash does not match the manifest's own schema; "
            "the manifest was edited or corrupted"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list) or not shards:
        raise StoreError(f"{path}: manifest lists no shards")
    counts = [shard.get("records") for shard in shards]
    if any(not isinstance(count, int) or count <= 0 for count in counts):
        raise StoreError(f"{path}: manifest shard record counts are malformed")
    if sum(counts) != manifest.get("total_records"):
        raise StoreError(
            f"{path}: total_records={manifest.get('total_records')} but the "
            f"shards sum to {sum(counts)}"
        )
    if version >= 2:
        for shard in shards:
            if not isinstance(shard.get("sha256"), str) or not isinstance(
                shard.get("bytes"), int
            ):
                raise StoreError(
                    f"{path}: v{version} manifest entry for {shard.get('file')!r} "
                    "lacks its sha256/bytes integrity fields; the manifest "
                    "was edited or corrupted"
                )
    if check_files:
        for shard in shards:
            if not (directory / shard["file"]).exists():
                raise StoreError(
                    f"{directory}: missing shard file {shard['file']}"
                )
    return manifest


def trace_to_shards(
    trace: Trace,
    directory: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> Path:
    """Write an in-memory :class:`Trace` as a sharded trace directory."""
    return write_shards(iter(trace), directory, shard_size=shard_size)


def _decoded_context_builder(feature_names: Sequence[str]):
    """A fast per-record context factory for one shard's fixed schema.

    The public :class:`ClientContext` constructor re-validates and
    re-sorts the feature mapping per record; shard columns are already
    schema-checked and stored in sorted order, so records decode through
    the trusted constructor instead.
    """
    names = tuple(sorted(feature_names))

    def build(values: Sequence[Any]) -> ClientContext:
        return ClientContext._from_sorted_items(tuple(zip(names, values)))

    return build


def trusted_record(
    context: ClientContext,
    decision: Any,
    reward: float,
    propensity: Optional[float],
    timestamp: Optional[float],
    state: Any,
) -> TraceRecord:
    """Build a :class:`TraceRecord` without re-running field validation.

    Shard data was validated when the records were first constructed and
    written; re-validating on every decode would (a) double the read
    cost and (b) make corrupt-on-disk records (the fault-injection and
    quarantine test paths) impossible to *read* — the contracts layer,
    not the decoder, is where corruption must surface.
    """
    record = object.__new__(TraceRecord)
    object.__setattr__(record, "context", context)
    object.__setattr__(record, "decision", decision)
    object.__setattr__(record, "reward", reward)
    object.__setattr__(record, "propensity", propensity)
    object.__setattr__(record, "timestamp", timestamp)
    object.__setattr__(record, "state", state)
    return record


def _none_if_nan(value: float) -> Optional[float]:
    """Decode the column encoding of an optional float field."""
    return None if math.isnan(value) else value
