"""Inverse Propensity Score (IPS) estimators.

Paper §3: *"IPS uses importance weighting to correct for the incorrect
proportions.  Concretely, the estimator is a weighted sum of rewards r_k
actually observed: V_IPS = (1/n) Σ_k [mu_new(d_k|c_k) / mu_old(d_k|c_k)] r_k."*

IPS is unbiased when the logging policy's propensities are known and
positive on the new policy's support, but its variance explodes when
``mu_old(d_k|c_k)`` is small (§4.1 "Coverage and randomness").  Two
standard variance-control variants are included:

* :class:`ClippedIPS` caps each weight at ``clip`` (biased, lower
  variance).
* :class:`SelfNormalizedIPS` divides by the sum of weights instead of n
  (consistent, usually much lower variance, invariant to reward shifts).
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.core.estimators.base import (
    EstimateResult,
    OffPolicyEstimator,
    importance_weights,
    resolve_legacy_kwarg,
    result_from_contributions,
    weight_diagnostics,
)
from repro.core.policy import Policy
from repro.core.propensity import PropensitySource
from repro.core.types import Trace
from repro.errors import EstimatorError
from repro.kernels import get_backend


class IPS(OffPolicyEstimator):
    """The plain (unnormalised) IPS estimator of the paper."""

    failure_modes = ("missing-propensities", "propensity-violation", "nonfinite-weight")

    @property
    def name(self) -> str:
        return "ips"

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> dict:
        # importance_weights has already validated the array; re-checking
        # here would double the validation cost on the hot path.
        weights = importance_weights(new_policy, chunk, propensities)
        return {"weights": weights, "rewards": chunk.columns().rewards}

    def _stream_finalize(self, columns: dict, n: int) -> EstimateResult:
        weights = columns["weights"]
        contributions = get_backend().ips_contributions(weights, columns["rewards"])
        return result_from_contributions(
            self.name, contributions, weight_diagnostics(weights)
        )


class ClippedIPS(OffPolicyEstimator):
    """IPS with importance weights clipped at ``clip``.

    Clipping trades a controlled amount of bias for bounded variance —
    the pragmatic fix when the old policy's exploration is thin.
    (``max_weight=`` is accepted as a deprecated alias for ``clip=``.)
    """

    failure_modes = ("missing-propensities", "propensity-violation")

    def __init__(self, clip: Optional[float] = None, **legacy):
        clip = resolve_legacy_kwarg(
            type(self).__name__, "clip", clip, legacy, "max_weight"
        )
        if clip is None:
            clip = 10.0
        if clip <= 0:
            raise EstimatorError(f"clip must be positive, got {clip}")
        self._clip = float(clip)

    @property
    def name(self) -> str:
        return "clipped-ips"

    @property
    def clip(self) -> float:
        """The clipping threshold."""
        return self._clip

    @property
    def max_weight(self) -> float:
        """Deprecated spelling of :attr:`clip` (kept for compatibility)."""
        warnings.warn(
            "ClippedIPS.max_weight is deprecated; read .clip instead "
            "(removal planned for 2.0, see DESIGN.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._clip

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> dict:
        # Raw (unclipped) weights are gathered; clipping is elementwise,
        # but the clipped_fraction diagnostic needs the raw tail.
        weights = importance_weights(new_policy, chunk, propensities)
        return {"weights": weights, "rewards": chunk.columns().rewards}

    def _stream_finalize(self, columns: dict, n: int) -> EstimateResult:
        weights = columns["weights"]
        backend = get_backend()
        clipped = backend.clip_weights(weights, self._clip)
        contributions = backend.ips_contributions(clipped, columns["rewards"])
        diagnostics = weight_diagnostics(clipped)
        diagnostics["clipped_fraction"] = float((weights > self._clip).mean())
        return result_from_contributions(self.name, contributions, diagnostics)


class SelfNormalizedIPS(OffPolicyEstimator):
    """SNIPS: ``Σ w_k r_k / Σ w_k``.

    The weight normalisation makes the estimate invariant to additive
    reward shifts and dramatically tames variance, at the cost of a small
    finite-sample bias that vanishes as n grows.
    """

    failure_modes = ("missing-propensities", "propensity-violation", "no-overlap")

    @property
    def name(self) -> str:
        return "snips"

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> dict:
        weights = importance_weights(new_policy, chunk, propensities)
        return {"weights": weights, "rewards": chunk.columns().rewards}

    def _stream_finalize(self, columns: dict, n: int) -> EstimateResult:
        # The self-normalisation numerator Σ w·r and denominator Σ w are
        # reduced here from the gathered weight/reward columns, in trace
        # order — the same reductions the dense path runs, so the ratio
        # is chunking-invariant bit for bit (DESIGN.md §10).
        weights = columns["weights"]
        total = float(weights.sum())
        diagnostics = weight_diagnostics(weights)
        if total <= 0:
            # The new policy never takes any logged decision: SNIPS is
            # undefined.  Surface that as a diagnostic-rich failure rather
            # than a silent 0/0.
            raise EstimatorError(
                "SNIPS undefined: the new policy puts zero probability on "
                "every logged decision (no overlap, cf. paper Fig 5)"
            )
        rewards = columns["rewards"]
        value = float(np.dot(weights, rewards) / total)
        # Delta-method standard error for a ratio estimator.
        residuals = weights * (rewards - value)
        if n > 1:
            variance = float((residuals**2).sum()) / (total**2)
            std_error = float(np.sqrt(variance) * np.sqrt(n / (n - 1)))
        else:
            std_error = float("nan")
        diagnostics["weight_sum"] = total
        return EstimateResult(
            value=value,
            method=self.name,
            n=n,
            contributions=weights * rewards * (n / total),
            std_error=std_error,
            diagnostics=diagnostics,
        )


class MatchingEstimator(OffPolicyEstimator):
    """Exact-match estimator: average reward over records whose logged
    decision is what the new policy would (deterministically) choose.

    This is the "primitive form of IPS" the paper attributes to CFA's
    overlap technique (§3): unbiased under a uniformly random logging
    policy, but its effective sample size collapses as the decision space
    grows (Fig 5).  For stochastic new policies the match is defined as
    the new policy's *greedy* decision.
    """

    requires_propensities = False

    failure_modes = ("no-overlap",)

    @property
    def name(self) -> str:
        return "matching"

    def _stream_chunk(
        self,
        new_policy: Policy,
        chunk: Trace,
        propensities: Optional[PropensitySource],
        offset: int,
    ) -> dict:
        columns = chunk.columns()
        greedy = new_policy.greedy_decision_batch(columns.contexts)
        matched = np.fromiter(
            (
                decision == chosen
                for decision, chosen in zip(columns.decisions, greedy)
            ),
            dtype=bool,
            count=len(chunk),
        )
        return {"matched": matched, "rewards": columns.rewards}

    def _stream_finalize(self, columns: dict, n: int) -> EstimateResult:
        matched = columns["rewards"][columns["matched"]]
        diagnostics = {
            "match_count": int(matched.size),
            "match_fraction": matched.size / n,
        }
        if matched.size == 0:
            raise EstimatorError(
                "matching estimator found no records whose logged decision "
                "equals the new policy's decision (no overlap, cf. paper Fig 5)"
            )
        return result_from_contributions(self.name, matched, diagnostics)
