"""The bounded-LRU result cache behind ``/v1/evaluate`` and ``/v1/compare``.

Keys are request fingerprints (sha256 over the canonical request
payload, including the trace's ``schema_hash`` — see DESIGN.md §13);
values are fully rendered response payloads, so a hit costs a dict
lookup and zero estimation work.  The cache is deliberately simple and
single-threaded: the service mutates it only from the event loop, so no
locking is needed.

Semantics:

* **LRU bound** — at most ``max_entries`` live entries; inserting past
  the bound evicts the least-recently-*used* entry (reads refresh
  recency).
* **TTL** — entries older than ``ttl`` seconds are expired lazily on
  lookup.  ``ttl=None`` disables expiry.
* **bypass** — a request with ``"cache": "bypass"`` skips the *read*
  but still stores its fresh result (the refresh semantics a "recompute
  this for me" knob should have).  Handled by the caller simply not
  calling :meth:`ResultCache.get`.

The clock is injectable (monotonic by default) so TTL tests never
sleep.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ServeError


@dataclass(frozen=True)
class CacheStats:
    """Counters describing one cache's lifetime behaviour."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    entries: int

    def to_dict(self) -> Dict[str, int]:
        """The stats as a plain dict (for ``/v1/health`` payloads)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": self.entries,
        }


class ResultCache:
    """Bounded LRU with lazy TTL expiry (see module docstring)."""

    def __init__(
        self,
        max_entries: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ServeError(
                f"cache max_entries must be at least 1, got {max_entries}"
            )
        if ttl is not None and ttl <= 0:
            raise ServeError(f"cache ttl must be positive, got {ttl}")
        self._max_entries = int(max_entries)
        self._ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[str, Tuple[float, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_entries(self) -> int:
        """The LRU bound."""
        return self._max_entries

    def get(self, key: str) -> Optional[Any]:
        """The cached value for *key*, or ``None`` (miss or expired)."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        stored_at, value = entry
        if self._ttl is not None and self._clock() - stored_at > self._ttl:
            del self._entries[key]
            self._expirations += 1
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key*, evicting the LRU entry if full."""
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = (self._clock(), value)

    def invalidate(self, key: str) -> bool:
        """Drop *key* if present; returns whether anything was dropped."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats`."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            expirations=self._expirations,
            entries=len(self._entries),
        )
