"""Tailing record sources: live JSONL files as estimator chunk streams.

Bridges ``iter_jsonl_records(follow=True)`` (torn-tail-safe, rotation-
aware; see :mod:`repro.store.format`) to the chunk protocol the
incremental estimators consume: records are gathered into dense
:class:`~repro.core.types.Trace` chunks of ``chunk_records`` each, with
a time-bounded flush so a slow writer still produces progress.

This is the slow-but-universal ingestion path (per-record Python
objects — file tailing is I/O bound anyway); the columnar
:class:`~repro.live.chunks.StreamBatch` path exists for in-process
generators where the million-records-per-second budget applies.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.core.types import Trace, TraceRecord
from repro.errors import StoreError
from repro.store.format import iter_jsonl_records


def batch_records(
    records: Iterable[TraceRecord], chunk_records: int
) -> Iterator[Trace]:
    """Gather a record iterable into dense ``Trace`` chunks.

    The final partial chunk is flushed when the iterable ends, so every
    record appears in exactly one chunk, in order.
    """
    if chunk_records <= 0:
        raise StoreError(f"chunk_records must be positive, got {chunk_records}")
    pending = []
    for record in records:
        pending.append(record)
        if len(pending) >= chunk_records:
            yield Trace(pending)
            pending = []
    if pending:
        yield Trace(pending)


def follow_trace_chunks(
    path: Union[str, Path],
    chunk_records: int = 4096,
    poll_interval: float = 0.05,
    idle_timeout: Optional[float] = None,
    stop=None,
) -> Iterator[Trace]:
    """Tail a live JSONL trace file as a stream of ``Trace`` chunks.

    Parameters mirror ``iter_jsonl_records(follow=True)``: the stream
    ends when *stop* returns true or *idle_timeout* seconds pass with no
    new data.  Torn trailing lines are re-polled, rotations are followed
    across, and reads pass through the chaos harness's fault hook — all
    inherited from the record-level follower.
    """
    return batch_records(
        iter_jsonl_records(
            path,
            follow=True,
            poll_interval=poll_interval,
            idle_timeout=idle_timeout,
            stop=stop,
        ),
        chunk_records,
    )
