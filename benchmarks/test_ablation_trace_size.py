"""Ablation — estimator error vs trace length (§2.2 data scarcity).

All estimators improve with more data; DR converges fastest because its
two error sources multiply.
"""

from repro.experiments import render_sweep, run_trace_size_ablation

from benchmarks.conftest import report

SIZES = (100, 300, 1000, 3000)
RUNS = 20
SEED = 2017


def test_ablation_trace_size(benchmark):
    points = benchmark.pedantic(
        lambda: run_trace_size_ablation(sizes=SIZES, runs=RUNS, seed=SEED),
        rounds=1,
        iterations=1,
    )
    report("== ablation-trace-size ==\n" + render_sweep(points, "trace size"))

    # Model-free estimators converge: IPS and DR shrink with n.
    for label in ("ips", "dr"):
        assert points[-1].summaries[label].mean < points[0].summaries[label].mean
    # The misspecified DM converges to its *bias*, not to zero — more
    # data does not fix a wrong model (§2.2.1).  Its error barely moves.
    dm_first = points[0].summaries["dm"].mean
    dm_last = points[-1].summaries["dm"].mean
    assert abs(dm_last - dm_first) < 0.5 * dm_first
    assert dm_last > points[-1].summaries["dr"].mean
    # DR at the largest size is accurate in absolute terms.
    assert points[-1].summaries["dr"].mean < 0.05
