"""Core off-policy evaluation library — the paper's primary contribution.

Public surface:

* data model — :class:`ClientContext`, :class:`TraceRecord`, :class:`Trace`
* decision spaces — :class:`DecisionSpace`, :class:`ProductDecisionSpace`
* policies — :class:`Policy` and concrete families
* reward models — :mod:`repro.core.models`
* estimators — DM / IPS / DR and variants, :mod:`repro.core.estimators`
* diagnostics, bootstrap CIs, policy selection, error metrics
"""

from repro.core.bootstrap import BootstrapResult, bootstrap_ci, jackknife_std_error
from repro.core.contracts import (
    PropensityCheck,
    WeightCheck,
    check_propensities,
    check_propensity,
    check_trace,
    check_weights,
)
from repro.core.diagnostics import (
    OverlapReport,
    RandomnessReport,
    overlap_report,
    randomness_report,
)
from repro.core.estimators import (
    IPS,
    ClippedIPS,
    DirectMethod,
    DoublyRobust,
    EstimateResult,
    MatchingEstimator,
    OffPolicyEstimator,
    ReplayDoublyRobust,
    SelfNormalizedDR,
    SelfNormalizedIPS,
    SwitchDR,
)
from repro.core.history import (
    FunctionHistoryPolicy,
    History,
    HistoryEntry,
    HistoryPolicy,
    RecentRewardThresholdPolicy,
    StationaryAdapter,
)
from repro.core.models import (
    ConstantRewardModel,
    CrossFitModel,
    DecisionTreeRewardModel,
    EnsembleRewardModel,
    KernelRewardModel,
    KNNRewardModel,
    OneHotEncoder,
    OracleRewardModel,
    RewardModel,
    RidgeRewardModel,
    Standardizer,
    TabularMeanModel,
)
from repro.core.exploration import (
    ExplorationPlan,
    exploration_cost,
    forecast_ess,
    plan_exploration,
)
from repro.core.optimization import DRPolicyLearner, LearnedPolicy, dr_decision_scores
from repro.core.metrics import (
    BiasVarianceSummary,
    ErrorSummary,
    error_reduction,
    paired_error_table,
    relative_error,
)
from repro.core.policy import (
    DeterministicPolicy,
    EpsilonGreedyPolicy,
    FunctionPolicy,
    GreedyModelPolicy,
    MixturePolicy,
    Policy,
    SoftmaxPolicy,
    TabularPolicy,
    UniformRandomPolicy,
    validate_distribution,
)
from repro.core.propensity import (
    EmpiricalPropensityModel,
    FlooredPropensitySource,
    LogisticPropensityModel,
    PropensityModel,
)
from repro.core.random import ensure_rng, seed_stream, spawn
from repro.core.reporting import EvaluationReport, evaluate_policy
from repro.core.selection import ComparisonResult, PolicyComparator, RankedPolicy
from repro.core.spaces import DecisionSpace, ProductDecisionSpace
from repro.core.types import ClientContext, Decision, Trace, TraceColumns, TraceRecord

__all__ = [
    # data model
    "ClientContext",
    "TraceRecord",
    "Trace",
    "TraceColumns",
    "Decision",
    "DecisionSpace",
    "ProductDecisionSpace",
    # policies
    "Policy",
    "DeterministicPolicy",
    "UniformRandomPolicy",
    "EpsilonGreedyPolicy",
    "SoftmaxPolicy",
    "MixturePolicy",
    "TabularPolicy",
    "FunctionPolicy",
    "GreedyModelPolicy",
    "validate_distribution",
    # history
    "History",
    "HistoryEntry",
    "HistoryPolicy",
    "StationaryAdapter",
    "FunctionHistoryPolicy",
    "RecentRewardThresholdPolicy",
    # reward models
    "RewardModel",
    "OracleRewardModel",
    "ConstantRewardModel",
    "TabularMeanModel",
    "KNNRewardModel",
    "RidgeRewardModel",
    "DecisionTreeRewardModel",
    "KernelRewardModel",
    "EnsembleRewardModel",
    "CrossFitModel",
    "OneHotEncoder",
    "Standardizer",
    # propensities
    "PropensityModel",
    "EmpiricalPropensityModel",
    "LogisticPropensityModel",
    "FlooredPropensitySource",
    # runtime contracts
    "PropensityCheck",
    "WeightCheck",
    "check_propensities",
    "check_propensity",
    "check_trace",
    "check_weights",
    # estimators
    "OffPolicyEstimator",
    "EstimateResult",
    "DirectMethod",
    "IPS",
    "ClippedIPS",
    "SelfNormalizedIPS",
    "MatchingEstimator",
    "DoublyRobust",
    "SelfNormalizedDR",
    "SwitchDR",
    "ReplayDoublyRobust",
    # diagnostics & uncertainty
    "OverlapReport",
    "RandomnessReport",
    "overlap_report",
    "randomness_report",
    "BootstrapResult",
    "bootstrap_ci",
    "jackknife_std_error",
    # reporting
    "EvaluationReport",
    "evaluate_policy",
    # selection & metrics
    "PolicyComparator",
    "ComparisonResult",
    "RankedPolicy",
    "relative_error",
    "ErrorSummary",
    "BiasVarianceSummary",
    "error_reduction",
    "paired_error_table",
    # policy learning & exploration budgeting
    "DRPolicyLearner",
    "LearnedPolicy",
    "dr_decision_scores",
    "ExplorationPlan",
    "exploration_cost",
    "plan_exploration",
    "forecast_ess",
    # randomness helpers
    "ensure_rng",
    "spawn",
    "seed_stream",
]
