"""Bounded retries, wall-clock timeouts, and deterministic backoff.

A 50-seed sweep should not die because one resample wedged a model fit
or raised a degenerate-overlap error on a transient code path.  The
retry executor gives every per-seed run:

* a configurable **wall-clock timeout** (SIGALRM-based; silently
  unenforced off the main thread or on platforms without ``SIGALRM``,
  where a cooperative timeout is impossible);
* **bounded retries** of retryable failures (:class:`EstimatorError`
  and :class:`RunTimeoutError` — anything else is a bug and propagates);
* **exponential backoff with deterministic jitter**: the jitter is
  seeded from ``(seed, attempt)``, so an interrupted sweep resumed from
  its ledger replays the exact same schedule.

Each run gets a *fresh* generator per attempt (same seed), so a retry
re-executes the identical experiment rather than a silently different
one — retries only help against nondeterministic faults (timeouts,
flaky I/O, injected faults), which is precisely their contract.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Union

import numpy as np

from repro.errors import EstimatorError, RunTimeoutError
from repro.obs.metrics import is_timing_metric
from repro.obs.sinks import run_telemetry
from repro.obs.spans import capture, observe, span
from repro.runtime.records import (
    STATUS_FAILED,
    STATUS_OK,
    RunOutcome,
    RunRecord,
    coerce_outcome,
)

#: A per-seed experiment body: rng -> errors mapping or RunOutcome.
RunCallable = Callable[[np.random.Generator], Union[RunOutcome, Mapping[str, float]]]


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries one per-seed run.

    Attributes
    ----------
    max_attempts:
        Total attempts per seed (1 = no retries).
    timeout_seconds:
        Per-attempt wall-clock budget; ``None`` disables the deadline.
    backoff_base:
        Sleep before attempt 2, in seconds.
    backoff_factor:
        Multiplier applied per further attempt.
    jitter:
        Fractional jitter: each delay is scaled by a deterministic
        ``uniform(1 - jitter, 1 + jitter)`` draw seeded from
        ``(seed, attempt)``.
    """

    max_attempts: int = 1
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise EstimatorError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise EstimatorError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise EstimatorError(
                "backoff_base must be non-negative and backoff_factor >= 1, "
                f"got base={self.backoff_base}, factor={self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise EstimatorError(f"jitter must lie in [0, 1), got {self.jitter}")

    def backoff_delay(self, seed: int, attempt: int) -> float:
        """Deterministic sleep (seconds) before attempt ``attempt + 1``.

        *attempt* is the 1-based attempt that just failed.  The jitter
        draw depends only on ``(seed, attempt)``, never on global state,
        so a resumed sweep reproduces the schedule exactly.
        """
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(np.random.SeedSequence([abs(int(seed)), attempt]))
        return base * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))

    def to_json(self) -> dict:
        """JSON-serialisable form (journaled in the ledger header)."""
        return {
            "max_attempts": self.max_attempts,
            "timeout_seconds": self.timeout_seconds,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
        }


def deadline_enforceable() -> bool:
    """Whether :func:`run_deadline` can actually interrupt a run here."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def run_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`RunTimeoutError` if the body outlives *seconds*.

    Uses ``SIGALRM``, so it only enforces on the main thread of a Unix
    process; elsewhere a *requested* timeout degrades to a no-op **with
    a warning** (worker threads cannot be preempted cooperatively) —
    silent non-enforcement would let a wedged run hang a sweep with the
    caller believing a deadline was armed.  Nesting restores the
    previous handler.
    """
    if seconds is None:
        yield
        return
    if not deadline_enforceable():
        warnings.warn(
            f"run timeout of {seconds}s requested but SIGALRM deadlines "
            "cannot be enforced here "
            + (
                "(not the main thread)"
                if hasattr(signal, "SIGALRM")
                else "(no SIGALRM on this platform)"
            )
            + "; the run will not be interrupted",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return

    def _expired(signum, frame):
        raise RunTimeoutError(
            f"run exceeded its wall-clock timeout of {seconds}s"
        )

    try:
        previous_handler = signal.signal(signal.SIGALRM, _expired)
    except ValueError:
        # Raced off the main thread between the enforceability check and
        # the signal call (e.g. a pool re-dispatching mid-setup): same
        # degradation, same warning.
        warnings.warn(
            f"run timeout of {seconds}s requested but SIGALRM deadlines "
            "cannot be enforced here (not the main thread); the run will "
            "not be interrupted",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


def execute_run(
    run: RunCallable,
    index: int,
    seed: int,
    retry: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> RunRecord:
    """Execute one per-seed run under the retry policy; never raises a
    retryable failure.

    Retryable failures (:class:`EstimatorError`, :class:`RunTimeoutError`)
    are retried up to ``retry.max_attempts`` with deterministic backoff;
    exhaustion yields a ``status="failed"`` :class:`RunRecord` carrying
    the last exception's type and message.  Any other exception is a
    bug in the run function and propagates unchanged.

    *sleep* and *clock* are injectable for tests (and so the benchmark
    can measure pure bookkeeping overhead).
    """
    policy = retry or RetryPolicy()
    started = clock()
    attempt = 0
    while True:
        attempt += 1
        rng = np.random.default_rng(seed)
        attempt_started = clock()
        try:
            # Each attempt is observed in its own fresh capture so a
            # retried seed journals only the telemetry of the attempt
            # that actually produced its outcome.
            with capture() as recorder:
                with span("harness.run"):
                    with run_deadline(policy.timeout_seconds):
                        outcome = coerce_outcome(run(rng))
        except (EstimatorError, RunTimeoutError) as failure:
            if attempt >= policy.max_attempts:
                return RunRecord(
                    index=index,
                    seed=seed,
                    status=STATUS_FAILED,
                    attempts=attempt,
                    duration=clock() - started,
                    error_type=type(failure).__name__,
                    error_message=str(failure),
                )
            sleep(policy.backoff_delay(seed, attempt))
            continue
        # Timing metrics stay out of the journaled telemetry (they are
        # nondeterministic) and travel in the side-channel profile with
        # the span timings; outer recorders (--profile / repro trace)
        # see them too.
        seed_duration = clock() - attempt_started
        recorder.metrics.observe("harness.seed.duration", seed_duration)
        observe("harness.seed.duration", seed_duration)
        profile: dict = {}
        flat = recorder.flat_profile()
        if flat:
            profile["spans"] = flat
        timings = {
            section: filtered
            for section, entries in recorder.metrics.snapshot().items()
            if (
                filtered := {
                    name: entry
                    for name, entry in entries.items()
                    if is_timing_metric(name)
                }
            )
        }
        if timings:
            profile["metrics"] = timings
        return RunRecord(
            index=index,
            seed=seed,
            status=STATUS_OK,
            attempts=attempt,
            duration=clock() - started,
            errors=outcome.errors,
            degradations=outcome.degradations,
            quarantined=outcome.quarantined,
            telemetry=run_telemetry(recorder),
            profile=profile or None,
        )
