"""``repro bench --serve`` — load-test the evaluation service.

Boots a real server (background thread, ephemeral port), generates a
synthetic sharded trace, warms the cache by asking every distinct
policy × estimator request once (``warmup_seconds`` reports that
cold-start cost), then replays the request mix from a thread pool of
keep-alive clients until the target query count — the steady state of
an operator dashboard re-asking hot questions, measured separately
from the one-off estimation cost.

Besides p50/p99 latency and throughput, the run self-checks the
properties the service exists to provide, and fails loudly if they do
not hold:

* **bit-identity** — one served report per estimator is rebuilt from
  its JSON and compared against the direct :func:`repro.api.evaluate`
  call on the same trace (``to_json()`` equality — every float, every
  diagnostic);
* **no re-estimation** — the ``serve.evaluate.computed`` counter must
  equal the number of *distinct* requests: every repeat was answered by
  the cache or coalesced onto an in-flight computation;
* **schema** — a sampled response passes
  :func:`repro.serve.validate.validate_response_payload`.

Results land in ``benchmark_results/BENCH_serve.json`` next to the
existing benchmark trail; CI runs the quick profile and uploads the
artifact (see the ``serve-smoke`` job).
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import api
from repro.core.policy import UniformRandomPolicy
from repro.errors import ServeError
from repro.obs.spans import disable, enable
from repro.serve.app import EvaluationService
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer
from repro.serve.validate import validate_response_payload
from repro.store.naming import TraceCatalog
from repro.workloads import SyntheticWorkload

DEFAULT_OUTPUT = Path("benchmark_results") / "BENCH_serve.json"

#: Estimators exercised by the workload (weight-based + model-based).
BENCH_ESTIMATORS = ("ips", "snips", "dr")


def _policy_specs(decisions: Tuple[str, ...], count: int) -> List[Dict[str, Any]]:
    """*count* distinct epsilon-greedy policy specs over *decisions*."""
    specs = []
    for index in range(count):
        specs.append(
            {
                "kind": "epsilon-greedy",
                "options": {
                    "epsilon": 0.05 + 0.1 * (index % 5),
                    "base": {
                        "kind": "constant",
                        "options": {
                            "space": list(decisions),
                            "decision": decisions[index % len(decisions)],
                        },
                    },
                },
            }
        )
    return specs


def _percentile(latencies: List[float], fraction: float) -> float:
    """The *fraction* quantile of *latencies* (inclusive method)."""
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_serve_benchmark(
    queries: int = 2000,
    concurrency: int = 50,
    records: int = 20_000,
    distinct_policies: int = 6,
    cache_size: int = 256,
    seed: int = 2017,
    quick: bool = False,
    output: Optional[Path] = DEFAULT_OUTPUT,
) -> Dict[str, Any]:
    """Run the serve load test; returns (and optionally writes) results.

    ``quick=True`` shrinks the workload for CI smoke (same code paths,
    same self-checks, a few seconds of wall clock).
    """
    if quick:
        queries = min(queries, 300)
        concurrency = min(concurrency, 16)
        records = min(records, 4_000)
    if queries < 1 or concurrency < 1:
        raise ServeError(
            f"need at least one query and one worker, got queries={queries} "
            f"concurrency={concurrency}"
        )

    workload = SyntheticWorkload()
    decisions = workload.space().decisions
    policy_specs = _policy_specs(decisions, distinct_policies)
    requests: List[Dict[str, Any]] = []
    for policy_spec in policy_specs:
        for estimator in BENCH_ESTIMATORS:
            requests.append(
                {
                    "trace": {"name": "bench"},
                    "policy": policy_spec,
                    "estimator": {"name": estimator},
                }
            )

    recorder = enable()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            shard_dir = Path(tmp) / "shards"
            sharded = workload.generate_to_shards(
                UniformRandomPolicy(workload.space()),
                records,
                np.random.default_rng(seed),
                shard_dir,
            )
            registry_path = Path(tmp) / "registry.json"
            registry_path.write_text(
                json.dumps({"traces": {"bench": str(shard_dir)}})
            )
            service = EvaluationService(
                TraceCatalog.from_file(registry_path),
                cache=ResultCache(max_entries=cache_size),
                recorder=recorder,
            )
            with BackgroundServer(service) as (host, port):
                warmup_seconds = _warm(host, port, requests)
                latencies, sample = _drive(
                    host, port, requests, queries, concurrency
                )
                elapsed = sample["elapsed_seconds"]
                _check_bit_identity(sharded, policy_specs[0], host, port)
            validate_response_payload(sample["response"])
    finally:
        disable()

    counters = recorder.metrics.snapshot().get("counters", {})
    computed = counters.get("serve.evaluate.computed", 0)
    hits = counters.get("serve.cache.hit", 0)
    coalesced = counters.get("serve.coalesced", 0)
    if computed > len(requests):
        raise ServeError(
            f"cache failed: {computed} estimations for {len(requests)} "
            "distinct requests — repeats were re-estimated"
        )
    if queries > 2 * len(requests) and hits == 0:
        raise ServeError(
            "cache failed: repeated identical queries produced zero "
            "serve.cache.hit"
        )

    result = {
        "benchmark": "serve",
        "quick": quick,
        "seed": seed,
        "queries": queries,
        "concurrency": concurrency,
        "trace_records": records,
        "distinct_requests": len(requests),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean": round(statistics.fmean(latencies) * 1e3, 3),
            "max": round(max(latencies) * 1e3, 3),
        },
        "throughput_qps": round(queries / elapsed, 2),
        "elapsed_seconds": round(elapsed, 3),
        "warmup_seconds": round(warmup_seconds, 3),
        "cache": {
            "hits": int(hits),
            "coalesced": int(coalesced),
            "computed": int(computed),
            "hit_fraction": round(
                hits / max(1, hits + coalesced + computed), 4
            ),
        },
        "checks": {
            "bit_identical_to_direct_api": True,
            "repeats_served_without_reestimation": bool(
                computed <= len(requests)
            ),
            "response_schema_valid": True,
        },
    }
    if output is not None:
        from repro.ioutil import atomic_write_text

        output = Path(output)
        output.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            output, json.dumps(result, indent=2, sort_keys=True) + "\n"
        )
    return result


def _warm(host: str, port: int, requests: List[Dict[str, Any]]) -> float:
    """Ask every distinct request once, serially, filling the cache.

    The timed replay then measures the steady state an operator
    dashboard lives in — repeated hot questions answered from cache —
    instead of folding the one-off estimation cost of each distinct
    request into every percentile; the cold-start cost is reported
    separately as ``warmup_seconds``.
    """
    started = time.perf_counter()
    with ServeClient(host, port) as client:
        for request in requests:
            client.request("POST", "/v1/evaluate", body=request)
    return time.perf_counter() - started


def _drive(
    host: str,
    port: int,
    requests: List[Dict[str, Any]],
    queries: int,
    concurrency: int,
) -> Tuple[List[float], Dict[str, Any]]:
    """Replay *queries* round-robin over *requests* from a thread pool.

    Each worker owns one keep-alive :class:`ServeClient`; returns the
    per-request latencies plus a sample response and the wall-clock
    elapsed time.
    """
    import threading

    local = threading.local()

    def body(index: int) -> Tuple[float, Dict[str, Any]]:
        client = getattr(local, "client", None)
        if client is None:
            client = ServeClient(host, port)
            local.client = client
        request = requests[index % len(requests)]
        started = time.perf_counter()
        payload = client.request("POST", "/v1/evaluate", body=request)
        return time.perf_counter() - started, payload

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        outcomes = list(pool.map(body, range(queries)))  # noqa: REP011 - thread pool, nothing is pickled; the closure carries the per-worker client
    elapsed = time.perf_counter() - started
    latencies = [latency for latency, _payload in outcomes]
    return latencies, {
        "elapsed_seconds": elapsed,
        "response": outcomes[-1][1],
    }


def _check_bit_identity(
    sharded: Any, policy_spec: Dict[str, Any], host: str, port: int
) -> None:
    """Served reports must equal direct api calls, float for float."""
    with ServeClient(host, port) as client:
        for estimator in BENCH_ESTIMATORS:
            served = client.evaluate("bench", policy_spec, estimator=estimator)
            direct = api.evaluate(sharded, policy_spec, estimator=estimator)
            served_report = api.EvaluationReport.from_json_dict(
                served["report"]
            )
            if served_report.to_json() != direct.to_json():
                raise ServeError(
                    f"served {estimator} report is not bit-identical to the "
                    "direct api.evaluate call"
                )
