"""One-stop evaluation reports.

Bundles everything a practitioner should look at before trusting a
trace-driven estimate — the value estimates from several estimators,
overlap/randomness diagnostics, and bootstrap uncertainty — into a
single structured result with a text rendering.  This is the "principled
platform for networking trace-driven evaluation" (§3) as an artifact:
one call, one reviewable report.

The report *builder* now lives in :mod:`repro.api`
(:func:`repro.api.evaluate` / :func:`repro.api.compare`);
:func:`evaluate_policy` remains as a deprecated shim over
:func:`repro.api.compare`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.bootstrap import BootstrapResult
from repro.core.diagnostics import OverlapReport
from repro.core.estimators import EstimateResult, OffPolicyEstimator
from repro.core.models.base import RewardModel
from repro.core.policy import Policy
from repro.core.propensity import PropensityModel
from repro.core.types import Trace


@dataclass(frozen=True)
class EvaluationReport:
    """A complete evaluation of one candidate policy on one trace.

    ``overlap`` is ``None`` when the evaluation was run with
    ``diagnostics=False`` (hot paths that only need the value estimate).
    """

    estimates: Dict[str, EstimateResult]
    overlap: Optional[OverlapReport]
    bootstrap: Optional[BootstrapResult]
    recommended: str
    failed: Dict[str, str] = field(default_factory=dict)

    @property
    def value(self) -> float:
        """The recommended estimator's value."""
        return self.estimates[self.recommended].value

    @property
    def result(self) -> EstimateResult:
        """The recommended estimator's full :class:`EstimateResult`
        (contributions, standard error, diagnostics)."""
        return self.estimates[self.recommended]

    def render(self) -> str:
        """Multi-section text report."""
        lines = ["=== trace-driven evaluation report ===", ""]
        if self.overlap is not None:
            lines.append(self.overlap.render())
            lines.append("")
        lines.append(f"{'estimator':<12} {'estimate':>10} {'stderr':>8} {'n':>6}")
        for name, result in self.estimates.items():
            stderr = (
                f"{result.std_error:8.4f}" if np.isfinite(result.std_error) else "     n/a"
            )
            marker = "  <- recommended" if name == self.recommended else ""
            # A fallback-chain result that degraded names the link that
            # actually answered — degradation is reported, never hidden.
            fallback = result.diagnostics.get("fallback")
            if isinstance(fallback, dict) and fallback.get("hops"):
                hops = ", ".join(
                    f"{hop['link']}: {hop['error_type']}"
                    for hop in fallback["hops"]
                )
                marker += (
                    f"  (degraded to {fallback['answered_by']} after {hops})"
                )
            # A degraded sharded read names its sample loss the same way:
            # the estimate stands on fewer records and the report says so.
            quarantine = result.diagnostics.get("store_quarantine")
            if isinstance(quarantine, dict) and quarantine.get("dropped_shards"):
                marker += (
                    f"  (store quarantine: lost "
                    f"{quarantine['dropped_records']}/"
                    f"{quarantine['total_records']} records in "
                    f"{quarantine['dropped_shards']} shard(s))"
                )
            lines.append(
                f"{name:<12} {result.value:10.4f} {stderr} {result.n:6d}{marker}"
            )
        for name, reason in self.failed.items():
            lines.append(f"{name:<12} {'failed':>10}  ({reason})")
        if self.bootstrap is not None:
            lines.append("")
            lines.append(f"bootstrap ({self.recommended}): {self.bootstrap.render()}")
        return "\n".join(lines)


def evaluate_policy(
    new_policy: Policy,
    trace: Trace,
    old_policy: Optional[Policy] = None,
    propensity_model: Optional[PropensityModel] = None,
    model: Optional[RewardModel] = None,
    extra_estimators: Optional[Dict[str, OffPolicyEstimator]] = None,
    bootstrap_replicates: int = 0,
    rng=None,
) -> EvaluationReport:
    """Evaluate *new_policy* on *trace* with the standard estimator panel.

    .. deprecated:: 1.0
        Use :func:`repro.api.compare` — same panel (DM, SNIPS, DR), same
        report, trace-first argument order.  This shim delegates to it
        and will be removed in 2.0 (see DESIGN.md §9).

    Runs DM, SNIPS and DR (plus any *extra_estimators*), computes the
    overlap diagnostics, recommends DR (falling back to DM when no
    weight-based estimate survived), and optionally bootstraps the
    recommended estimator.

    Parameters
    ----------
    model:
        Reward model for DM and DR.  When given, the instance is shared
        (fit once on the trace, reused by both); when omitted, each
        estimator gets its own fresh
        :class:`~repro.core.models.tabular.TabularMeanModel`.
    bootstrap_replicates:
        0 disables the bootstrap section.
    """
    warnings.warn(
        "evaluate_policy() is deprecated; call repro.api.compare(trace, "
        "policy, ...) instead (removal planned for 2.0, see DESIGN.md §9)",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: repro.api itself imports this module for the
    # EvaluationReport type.
    from repro import api

    # Propensity resolution priority is old policy > propensity model, so
    # forwarding the winning source is behaviour-identical to forwarding
    # both (see resolve_propensity_source).
    propensities = old_policy if old_policy is not None else propensity_model
    return api.compare(
        trace,
        new_policy,
        model=model,
        propensities=propensities,
        extra_estimators=extra_estimators,
        bootstrap_replicates=bootstrap_replicates,
        rng=rng,
    )
