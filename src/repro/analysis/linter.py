"""Whole-program lint engine for the OPE-correctness rules.

The engine grew from a per-file AST walker into a small analysis
framework; one lint invocation now runs in four stages:

1. **Collect + hash** — expand the requested paths into ``.py`` files
   and content-hash each one (SHA-256 of the raw bytes).
2. **Per-file analysis** — for files missing from the incremental cache
   (:mod:`repro.analysis.cache`), parse the AST, run every *module
   rule* (REP001–REP009), and extract the
   :class:`~repro.analysis.graph.ModuleIndex` facts.  Large file sets
   fan out over a fork-based process pool; results are deterministic
   regardless of pool size.  Cached files contribute their stored
   violations and index without being re-read beyond hashing.
3. **Project analysis** — assemble every index into a
   :class:`~repro.analysis.graph.ProjectIndex` (symbol table + call
   graph) and run the *project rules* (REP003 interface parity and the
   REP010–REP013 dataflow tier).  Project rules always re-run: they are
   whole-program properties, and they are cheap because they consume
   the index summaries, never raw ASTs.
4. **Report** — noqa/baseline filtering, then exit-code mapping and
   rendering through :mod:`repro.analysis.reporting`.

Suppression: ``# noqa: REP001`` on the offending line suppresses that
rule there; ``# noqa: REP001,REP004`` suppresses the listed rules; a
bare ``# noqa`` suppresses every rule on the line.  A code list that
names an unknown ``REP``-prefixed id is itself flagged (REP008) instead
of being silently widened — historically ``# noqa: TYPO123`` suppressed
*everything* on the line, which is exactly the silent-bias failure mode
this linter exists to prevent.  Foreign codes (``F401``, ``E501``) are
ignored so the file can be linted by other tools too.
"""

from __future__ import annotations

import ast
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.cache import (
    CacheEntry,
    LintCache,
    content_hash,
    ruleset_signature,
)
from repro.analysis.graph import ModuleIndex, ProjectIndex, build_module_index
from repro.errors import AnalysisError

_NOQA_COMMENT = re.compile(r"#\s*noqa(?P<rest>:[^#]*)?", re.IGNORECASE)
_NOQA_CODE = re.compile(r"^[A-Za-z]+[0-9]+$")

#: Files below this count are analyzed serially; the pool's fork+import
#: overhead only pays for itself on project-sized invocations.
PARALLEL_THRESHOLD = 64


def parse_noqa_codes(line: str) -> Optional[Tuple[bool, Optional[List[str]]]]:
    """Parse a source line's noqa comment.

    Returns ``None`` when the line carries no noqa comment; otherwise a
    ``(present, codes)`` tuple where *codes* is ``None`` for a bare
    ``# noqa`` and a list of syntactically valid codes for
    ``# noqa: REP001,REP004`` (comma or whitespace separated; a trailing
    rationale such as ``# noqa: REP006 - unfittable candidate`` is
    tolerated, and malformed tokens are dropped rather than silently
    widening the suppression to every rule).
    """
    match = _NOQA_COMMENT.search(line)
    if match is None:
        return None
    rest = match.group("rest")
    if rest is None:
        return (True, None)  # type: ignore[return-value]
    tokens = re.split(r"[,\s]+", rest.lstrip(":").strip())
    codes = [token for token in tokens if _NOQA_CODE.match(token)]
    return (True, codes)  # type: ignore[return-value]


def build_noqa_map(lines: Sequence[str]) -> Dict[int, Optional[List[str]]]:
    """``line -> codes`` (``None`` = bare noqa) for every noqa comment."""
    noqa: Dict[int, Optional[List[str]]] = {}
    for number, line in enumerate(lines, start=1):
        if "noqa" not in line.lower():
            continue
        parsed = parse_noqa_codes(line)
        if parsed is None:
            continue
        _, codes = parsed
        noqa[number] = codes
    return noqa


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding at a specific file and line.

    ``severity`` is ``"error"`` (fails the lint) or ``"warning"``
    (reported, surfaced in SARIF, but does not affect the exit code);
    ``detail`` carries machine-readable context for autofixers.
    """

    path: str
    line: int
    rule_id: str
    message: str
    severity: str = "error"
    detail: str = ""

    @property
    def location(self) -> str:
        """``path:line`` — the clickable anchor used in reports."""
        return f"{self.path}:{self.line}"

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        payload: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Violation":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            rule_id=str(payload["rule"]),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
            detail=str(payload.get("detail", "")),
        )


class ModuleUnit:
    """One parsed Python file plus raw source lines and its noqa map."""

    def __init__(self, path: Path, display: str, source: str):
        self.path = path
        self.display = display
        self.lines = source.splitlines()
        self.noqa = build_noqa_map(self.lines)
        try:
            self.tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            raise AnalysisError(f"{display}:{exc.lineno}: does not parse: {exc.msg}")

    def suppressed(self, line: int, rule_id: str) -> bool:
        """``True`` when *line* carries a noqa comment covering *rule_id*."""
        if line not in self.noqa:
            return False
        codes = self.noqa[line]
        if codes is None:
            return True
        return rule_id.upper() in {code.upper() for code in codes}


class LintRule:
    """Base class for per-module lint rules.

    Subclasses set :attr:`rule_id`/:attr:`description` and implement
    :meth:`check_module`.  Whole-program rules subclass
    :class:`ProjectRule` instead.  Rules whose findings are mechanical
    rewrites set :attr:`autofixable` and register a fixer in
    :mod:`repro.analysis.fixers`.
    """

    #: Stable identifier, e.g. ``"REP001"``.
    rule_id: str = ""
    #: One-line human-readable rationale.
    description: str = ""
    #: Whether :mod:`repro.analysis.fixers` can rewrite the finding.
    autofixable: bool = False
    #: ``"error"`` or ``"warning"`` — warnings do not fail the lint.
    severity: str = "error"

    def applies_to(self, unit: ModuleUnit) -> bool:
        """Whether this rule runs on *unit* (path-scoped rules override)."""
        return True

    def check_module(self, unit: ModuleUnit) -> Iterable[Violation]:
        """Per-file check; yields violations."""
        return ()

    def violation(
        self, unit: ModuleUnit, node: ast.AST, message: str, detail: str = ""
    ) -> Violation:
        """Build a violation anchored at *node* in *unit*."""
        return Violation(
            path=unit.display,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
            detail=detail,
        )

    def violation_at(
        self, display: str, line: int, message: str, detail: str = ""
    ) -> Violation:
        """Build a violation at an explicit location (index-based rules)."""
        return Violation(
            path=display,
            line=line,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
            detail=detail,
        )


class ProjectRule(LintRule):
    """Base class for whole-program rules (run once over the project)."""

    def check_project(self, project: ProjectIndex) -> Iterable[Violation]:
        """Project-wide check over the assembled module indexes."""
        return ()


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise AnalysisError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def _load_rules() -> None:
    """Import the rule modules, populating the registry on first use."""
    from repro.analysis import dataflow, rules  # noqa: F401


def registered_rule_ids() -> Tuple[str, ...]:
    """All registered rule ids, sorted."""
    _load_rules()
    return tuple(sorted(_REGISTRY))


def rule_class_for(rule_id: str) -> Type[LintRule]:
    """The registered rule class for *rule_id* (raises on unknown ids)."""
    _load_rules()
    try:
        return _REGISTRY[rule_id.upper()]
    except KeyError:
        raise AnalysisError(
            f"unknown rule id {rule_id}; known rules: "
            f"{', '.join(registered_rule_ids())}"
        )


def build_rules(rule_ids: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the requested rules (all registered rules by default)."""
    _load_rules()
    if rule_ids is None:
        selected = registered_rule_ids()
    else:
        selected = tuple(rule_id.upper() for rule_id in rule_ids)
        unknown = [rule_id for rule_id in selected if rule_id not in _REGISTRY]
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known rules: {', '.join(registered_rule_ids())}"
            )
    return [_REGISTRY[rule_id]() for rule_id in selected]


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run.

    ``violations`` are error-severity findings (exit code 1);
    ``warnings`` are warning-severity findings (reported, exit 0);
    ``baselined`` counts findings suppressed by the committed baseline;
    ``analyzed_files``/``cached_files`` expose the incremental split.
    """

    violations: Tuple[Violation, ...]
    checked_files: int
    rule_ids: Tuple[str, ...]
    warnings: Tuple[Violation, ...] = ()
    baselined: int = 0
    analyzed_files: int = 0
    cached_files: int = 0

    @property
    def ok(self) -> bool:
        """``True`` when no error-severity violations were found."""
        return not self.violations

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation of the whole report."""
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "analyzed_files": self.analyzed_files,
            "cached_files": self.cached_files,
            "baselined": self.baselined,
            "rules": list(self.rule_ids),
            "violations": [violation.to_json() for violation in self.violations],
            "warnings": [violation.to_json() for violation in self.warnings],
        }


def collect_python_files(paths: Sequence) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            collected.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    return collected


def _analyze_source(
    source: str, path: Path, display: str, module_rule_ids: Sequence[str]
) -> Tuple[List[Violation], ModuleIndex]:
    """Parse one file, run the module rules, build the index."""
    unit = ModuleUnit(path=path, display=display, source=source)
    rules = build_rules(module_rule_ids)
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(unit):
            continue
        for violation in rule.check_module(unit):
            if not unit.suppressed(violation.line, violation.rule_id):
                violations.append(violation)
    index = build_module_index(
        unit.tree, display, path.parts, noqa=unit.noqa
    )
    return violations, index


def _analyze_file_payload(
    path_str: str, display: str, module_rule_ids: Tuple[str, ...]
) -> Dict[str, object]:
    """Pool-friendly wrapper: returns a JSON payload for one file."""
    path = Path(path_str)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}")
    violations, index = _analyze_source(source, path, display, module_rule_ids)
    return {
        "display": display,
        "hash": content_hash(source.encode("utf-8")),
        "violations": [violation.to_json() for violation in violations],
        "index": index.to_json(),
    }


def _pool_size(jobs: Optional[int], pending: int) -> int:
    """Worker count: explicit ``jobs`` wins, else scale with the work."""
    import multiprocessing

    if pending < 2:
        return 1
    if jobs is not None:
        return max(1, min(jobs, pending))
    if pending < PARALLEL_THRESHOLD:
        return 1
    cpus = multiprocessing.cpu_count()
    return max(1, min(cpus - 1, 8, pending))


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def lint_paths(
    paths: Sequence,
    rule_ids: Optional[Sequence[str]] = None,
    *,
    cache_path=None,
    jobs: Optional[int] = None,
    baseline=None,
) -> LintReport:
    """Lint *paths* with the selected rules and return a report.

    Parameters
    ----------
    rule_ids:
        Rule ids to run (default: every registered rule).
    cache_path:
        Path to the incremental cache file.  ``None`` disables caching;
        with a path, unchanged files (by content hash) reuse their
        per-file results and index, and only changed files are
        re-parsed — project rules always re-run over all indexes.
    jobs:
        Process-pool width for per-file analysis.  ``None`` picks
        automatically (serial below 64 pending files); ``1`` forces
        serial analysis.
    baseline:
        Parsed baseline entries (see :mod:`repro.analysis.baseline`);
        matching findings are suppressed and counted instead of failing
        the run — the gradual-adoption path for new rules.
    """
    rules = build_rules(rule_ids)
    module_rule_ids = tuple(
        rule.rule_id for rule in rules if not isinstance(rule, ProjectRule)
    )
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    all_rule_ids = tuple(rule.rule_id for rule in rules)

    files = collect_python_files(paths)
    displays = [str(path) for path in files]

    cache: Optional[LintCache] = None
    if cache_path is not None:
        cache = LintCache.load(cache_path, ruleset_signature(all_rule_ids))

    per_file: Dict[str, Tuple[List[Violation], ModuleIndex]] = {}
    pending: List[Tuple[Path, str, str, str]] = []
    for path, display in zip(files, displays):
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}")
        file_hash = content_hash(data)
        if cache is not None:
            entry = cache.get(display, file_hash)
            if entry is not None:
                per_file[display] = (
                    [Violation.from_json(item) for item in entry.violations],
                    entry.index,
                )
                continue
        pending.append((path, display, file_hash, data.decode("utf-8")))

    workers = _pool_size(jobs, len(pending))
    if workers > 1 and _fork_available():
        import multiprocessing

        with ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("fork")
        ) as pool:
            payloads = list(
                pool.map(
                    _analyze_file_payload,
                    [str(path) for path, _, _, _ in pending],
                    [display for _, display, _, _ in pending],
                    [module_rule_ids] * len(pending),
                    chunksize=8,
                )
            )
        for (path, display, file_hash, _), payload in zip(pending, payloads):
            violations = [
                Violation.from_json(item) for item in payload["violations"]
            ]
            index = ModuleIndex.from_json(payload["index"])
            per_file[display] = (violations, index)
            if cache is not None:
                cache.put(
                    display,
                    CacheEntry(file_hash, list(payload["violations"]), index),
                )
    else:
        for path, display, file_hash, source in pending:
            violations, index = _analyze_source(
                source, path, display, module_rule_ids
            )
            per_file[display] = (violations, index)
            if cache is not None:
                cache.put(
                    display,
                    CacheEntry(
                        file_hash,
                        [violation.to_json() for violation in violations],
                        index,
                    ),
                )

    project = ProjectIndex([per_file[display][1] for display in displays])

    collected: List[Violation] = []
    for display in displays:
        collected.extend(per_file[display][0])
    for rule in project_rules:
        for violation in rule.check_project(project):
            index = project.by_display.get(violation.path)
            if index is not None and index.suppressed(
                violation.line, violation.rule_id
            ):
                continue
            collected.append(violation)

    baselined = 0
    if baseline:
        from repro.analysis.baseline import matches_baseline

        kept = []
        for violation in collected:
            if matches_baseline(violation, baseline):
                baselined += 1
            else:
                kept.append(violation)
        collected = kept

    unique = sorted(set(collected))
    errors = tuple(v for v in unique if v.severity != "warning")
    warnings = tuple(v for v in unique if v.severity == "warning")

    if cache is not None:
        cache.prune(displays)
        cache.save()

    return LintReport(
        violations=errors,
        checked_files=len(files),
        rule_ids=all_rule_ids,
        warnings=warnings,
        baselined=baselined,
        analyzed_files=len(pending),
        cached_files=len(files) - len(pending),
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain like ``np.random.default_rng``.

    Returns ``None`` for expressions that are not plain dotted names
    (calls, subscripts, ...), which rules treat as "not a match".
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
