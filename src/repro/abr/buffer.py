"""Playback-buffer dynamics for chunked streaming.

Standard discrete-time model: downloading a chunk takes
``chunk_megabits / observed_throughput`` seconds; during that time the
buffer drains in real time; once downloaded, the chunk adds
``chunk_seconds`` of content.  If the buffer empties mid-download the
player rebuffers (stalls) for the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class BufferStep:
    """Outcome of downloading one chunk."""

    download_seconds: float
    rebuffer_seconds: float
    buffer_after: float


class PlaybackBuffer:
    """The client's playback buffer, in seconds of content.

    Parameters
    ----------
    capacity_seconds:
        Maximum buffered content; downloads that would overflow simply
        block until space frees up (modelled by capping the level).
    initial_seconds:
        Buffer level at session start (0 models a cold start).
    """

    def __init__(self, capacity_seconds: float = 30.0, initial_seconds: float = 0.0):
        if capacity_seconds <= 0:
            raise SimulationError(
                f"capacity_seconds must be positive, got {capacity_seconds}"
            )
        if not 0.0 <= initial_seconds <= capacity_seconds:
            raise SimulationError(
                f"initial_seconds must lie in [0, {capacity_seconds}], "
                f"got {initial_seconds}"
            )
        self._capacity = float(capacity_seconds)
        self._level = float(initial_seconds)
        self._total_rebuffer = 0.0

    @property
    def level_seconds(self) -> float:
        """Current buffer level (seconds of content)."""
        return self._level

    @property
    def capacity_seconds(self) -> float:
        """Maximum buffer level."""
        return self._capacity

    @property
    def total_rebuffer_seconds(self) -> float:
        """Cumulative stall time so far."""
        return self._total_rebuffer

    def download_chunk(
        self,
        chunk_megabits: float,
        chunk_seconds: float,
        throughput_mbps: float,
    ) -> BufferStep:
        """Advance the buffer through one chunk download.

        Returns the download time, any rebuffering incurred, and the
        buffer level after the chunk is appended.
        """
        if chunk_megabits <= 0 or chunk_seconds <= 0:
            raise SimulationError("chunk size and duration must be positive")
        if throughput_mbps <= 0:
            raise SimulationError(
                f"throughput must be positive, got {throughput_mbps}"
            )
        download_seconds = chunk_megabits / throughput_mbps
        rebuffer = max(0.0, download_seconds - self._level)
        self._level = max(0.0, self._level - download_seconds)
        self._level = min(self._capacity, self._level + chunk_seconds)
        self._total_rebuffer += rebuffer
        return BufferStep(
            download_seconds=download_seconds,
            rebuffer_seconds=rebuffer,
            buffer_after=self._level,
        )

    def reset(self, initial_seconds: float = 0.0) -> None:
        """Reset to a fresh session."""
        if not 0.0 <= initial_seconds <= self._capacity:
            raise SimulationError(
                f"initial_seconds must lie in [0, {self._capacity}], "
                f"got {initial_seconds}"
            )
        self._level = float(initial_seconds)
        self._total_rebuffer = 0.0
