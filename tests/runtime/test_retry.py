"""Tests for the retry executor (repro.runtime.retry)."""

from __future__ import annotations

import time

import pytest

from repro.errors import EstimatorError, RunTimeoutError
from repro.runtime import (
    RetryPolicy,
    deadline_enforceable,
    execute_run,
    run_deadline,
)
from repro.testing import FlakyRun


def _steady(rng):
    return {"dm": float(rng.uniform()), "dr": float(rng.uniform())}


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -1.0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(EstimatorError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential_and_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        first = [policy.backoff_delay(seed=42, attempt=a) for a in (1, 2, 3)]
        second = [policy.backoff_delay(seed=42, attempt=a) for a in (1, 2, 3)]
        assert first == second  # deterministic: same (seed, attempt) -> same delay
        # Exponential envelope with 10% jitter around 0.1, 0.2, 0.4.
        for delay, nominal in zip(first, (0.1, 0.2, 0.4)):
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_backoff_varies_across_seeds(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.backoff_delay(1, 1) != policy.backoff_delay(2, 1)

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.25, jitter=0.0)
        assert policy.backoff_delay(0, 1) == 0.25
        assert policy.backoff_delay(0, 2) == 0.5


class TestExecuteRun:
    def test_single_attempt_success(self):
        record = execute_run(_steady, index=0, seed=123)
        assert record.ok
        assert record.attempts == 1
        assert set(record.errors) == {"dm", "dr"}

    def test_same_seed_reproduces_errors(self):
        first = execute_run(_steady, index=0, seed=123)
        second = execute_run(_steady, index=0, seed=123)
        assert first.errors == second.errors

    def test_flaky_run_succeeds_on_retry(self):
        flaky = FlakyRun(_steady, fail_on=[1])
        slept = []
        record = execute_run(
            flaky,
            index=0,
            seed=123,
            retry=RetryPolicy(max_attempts=3),
            sleep=slept.append,
        )
        assert record.ok
        assert record.attempts == 2
        assert len(slept) == 1  # one backoff between the two attempts
        # The retried attempt re-ran the identical experiment.
        assert record.errors == execute_run(_steady, index=0, seed=123).errors

    def test_exhaustion_returns_failed_record(self):
        flaky = FlakyRun(_steady, fail_on=[1, 2, 3])
        record = execute_run(
            flaky,
            index=4,
            seed=99,
            retry=RetryPolicy(max_attempts=3),
            sleep=lambda _: None,
        )
        assert not record.ok
        assert record.attempts == 3
        assert record.error_type == "EstimatorError"
        assert "invocation 3" in record.error_message
        assert record.errors == {}

    def test_no_retry_by_default(self):
        flaky = FlakyRun(_steady, fail_on=[1])
        record = execute_run(flaky, index=0, seed=1)
        assert not record.ok
        assert record.attempts == 1

    def test_unexpected_exception_propagates(self):
        flaky = FlakyRun(_steady, fail_on=[1], error=RuntimeError)
        with pytest.raises(RuntimeError):
            execute_run(flaky, index=0, seed=1, retry=RetryPolicy(max_attempts=5))

    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=3)

        def schedule():
            slept = []
            execute_run(
                FlakyRun(_steady, fail_on=[1, 2, 3]),
                index=0,
                seed=55,
                retry=policy,
                sleep=slept.append,
            )
            return slept

        assert schedule() == schedule()


@pytest.mark.skipif(
    not deadline_enforceable(), reason="SIGALRM unavailable off the main thread"
)
class TestDeadline:
    def test_deadline_interrupts_a_wedged_body(self):
        with pytest.raises(RunTimeoutError):
            with run_deadline(0.05):
                time.sleep(5.0)

    def test_deadline_is_cleared_after_the_body(self):
        with run_deadline(0.2):
            pass
        time.sleep(0.25)  # would fire if the timer leaked

    def test_timed_out_run_is_recorded_as_failed(self):
        def wedged(rng):
            time.sleep(5.0)
            return {"dm": 0.0}

        record = execute_run(
            wedged,
            index=0,
            seed=1,
            retry=RetryPolicy(max_attempts=1, timeout_seconds=0.05),
        )
        assert not record.ok
        assert record.error_type == "RunTimeoutError"
        assert "wall-clock timeout" in record.error_message

    def test_none_timeout_is_a_no_op(self):
        with run_deadline(None):
            pass


class TestDeadlineOffMainThread:
    def test_worker_thread_degrades_with_a_warning_not_a_crash(self):
        """A requested timeout on a worker thread must complete the body
        (no SIGALRM available) and say so — never raise ValueError from
        signal.signal, never stay silent."""
        import threading
        import warnings

        outcome = {}

        def body():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with run_deadline(0.01):
                    outcome["ran"] = True
            outcome["warnings"] = [str(w.message) for w in caught]

        worker = threading.Thread(target=body)
        worker.start()
        worker.join(timeout=10.0)
        assert outcome.get("ran") is True
        assert any(
            "cannot be enforced" in message for message in outcome["warnings"]
        )

    def test_no_warning_when_no_timeout_requested_off_main_thread(self):
        import threading
        import warnings

        caught_messages = []

        def body():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with run_deadline(None):
                    pass
            caught_messages.extend(str(w.message) for w in caught)

        worker = threading.Thread(target=body)
        worker.start()
        worker.join(timeout=10.0)
        assert caught_messages == []
