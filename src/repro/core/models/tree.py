"""Regression-tree reward model (CART, mean-squared-error splits).

Trees capture the feature x decision interactions that additive models
miss (e.g. "response time is high only for ISP-1 requests routed to both
FE-1 and BE-1" in the WISE scenario), at the cost of higher variance on
small traces — exactly the bias/variance axis the paper's §2.2 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.models.base import RewardModel
from repro.core.models.featurize import OneHotEncoder
from repro.core.types import ClientContext, Decision, Trace
from repro.errors import ModelError


@dataclass
class _Node:
    """One tree node; leaves have ``feature is None``."""

    prediction: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRewardModel(RewardModel):
    """CART regression tree over one-hot encoded (context, decision) pairs.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; depth 0 is a single leaf (global mean).
    min_samples_leaf:
        Minimum number of training records in each leaf.
    """

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 2):
        super().__init__()
        if max_depth < 0:
            raise ModelError(f"max_depth must be non-negative, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(
                f"min_samples_leaf must be at least 1, got {min_samples_leaf}"
            )
        self._max_depth = max_depth
        self._min_samples_leaf = min_samples_leaf
        self._encoder = OneHotEncoder(include_decision=True)
        self._root: Optional[_Node] = None

    def _fit(self, trace: Trace) -> None:
        self._encoder.fit(trace)
        matrix = self._encoder.encode_trace(trace)
        targets = trace.rewards()
        self._root = self._grow(matrix, targets, depth=0)

    def _grow(self, matrix: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(targets.mean()))
        if depth >= self._max_depth or targets.size < 2 * self._min_samples_leaf:
            return node
        if np.ptp(targets) < 1e-12:  # pure node: nothing to gain by splitting
            return node
        split = self._best_split(matrix, targets)
        if split is None:
            return node
        feature, threshold = split
        left_mask = matrix[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(matrix[left_mask], targets[left_mask], depth + 1)
        node.right = self._grow(matrix[~left_mask], targets[~left_mask], depth + 1)
        return node

    def _best_split(
        self, matrix: np.ndarray, targets: np.ndarray
    ) -> Optional[tuple[int, float]]:
        """The (feature, threshold) with the smallest child SSE, if any.

        Zero-gain splits are allowed on impure nodes (as in standard
        CART): interaction structure such as XOR only pays off two
        levels down.
        """
        best_score = np.inf
        best: Optional[tuple[int, float]] = None
        n = targets.size
        for feature in range(matrix.shape[1]):
            column = matrix[:, feature]
            values = np.unique(column)
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                left = column <= threshold
                left_count = int(left.sum())
                right_count = n - left_count
                if (
                    left_count < self._min_samples_leaf
                    or right_count < self._min_samples_leaf
                ):
                    continue
                left_targets = targets[left]
                right_targets = targets[~left]
                sse = float(
                    ((left_targets - left_targets.mean()) ** 2).sum()
                    + ((right_targets - right_targets.mean()) ** 2).sum()
                )
                if sse < best_score - 1e-12:
                    best_score = sse
                    best = (feature, float(threshold))
        return best

    def depth(self) -> int:
        """The realised depth of the fitted tree."""
        if self._root is None:
            raise ModelError("model must be fit before reading its depth")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def _predict(self, context: ClientContext, decision: Decision) -> float:
        vector = self._encoder.encode(context, decision)
        node = self._root
        while not node.is_leaf:
            node = node.left if vector[node.feature] <= node.threshold else node.right
        return node.prediction
