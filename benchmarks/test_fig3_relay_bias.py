"""Fig 3 — NAT selection bias in relay evaluation (VIA).

The logging policy relays almost exclusively NAT-ed calls, so per-
(AS pair, path) averages conflate the relay benefit with the NAT
last-mile penalty; DR corrects the resulting underestimate.
"""

from repro.experiments import run_fig3_relay_bias

from benchmarks.conftest import report

RUNS = 50
SEED = 2017


def test_fig3_via_vs_dr(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig3_relay_bias(runs=RUNS, seed=SEED), rounds=1, iterations=1
    )
    report(result.render())

    via = result.summaries["via"]
    dr = result.summaries["dr"]
    assert dr.mean < via.mean
    assert result.reduction() > 0.5
    # VIA's bias is systematic: even its best run is worse than DR's mean.
    assert via.minimum > dr.mean
