"""Content-hash incremental cache for the lint engine.

A lint run over ``src/repro`` parses ~180 files and runs nine per-module
rules on each; on a warm CI runner almost none of them changed since the
last run.  The cache keys every file on the SHA-256 of its bytes plus
the engine version and the selected per-module rule set, and stores two
things per file:

* the file's per-module-rule violations (post noqa-filtering), and
* its :class:`~repro.analysis.graph.ModuleIndex` — the symbol/call facts
  the project-wide dataflow rules (REP003, REP010–REP013) consume.

Project rules always re-run (they are whole-program by definition and
cheap — they operate on the small index summaries, not on ASTs), so an
edit to one file correctly re-evaluates every cross-module contract
while only the changed file is re-parsed and re-linted.

The cache file (default ``.repro-lint-cache.json``) is a plain JSON
document; a corrupt or version-skewed cache is silently treated as cold
— the cache can never change lint results, only their cost.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.graph import INDEX_VERSION, ModuleIndex

#: Bump on any behavioural change to per-module rules or the engine so
#: stale caches from older versions never mask new findings.
ENGINE_VERSION = "2.0"

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_hash(data: bytes) -> str:
    """SHA-256 hex digest of a file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


def ruleset_signature(rule_ids: Sequence[str]) -> str:
    """Stable signature of the selected rule set + engine version."""
    payload = ",".join(sorted(rule_ids))
    return f"{ENGINE_VERSION}/{INDEX_VERSION}/" + hashlib.sha256(
        payload.encode("utf-8")
    ).hexdigest()[:16]


class CacheEntry:
    """Cached analysis of one file at one content hash."""

    __slots__ = ("file_hash", "violations", "index")

    def __init__(
        self,
        file_hash: str,
        violations: List[Dict[str, object]],
        index: ModuleIndex,
    ):
        self.file_hash = file_hash
        #: Violations as JSON dicts (``path``/``line``/``rule``/``message``).
        self.violations = violations
        self.index = index

    def to_json(self) -> Dict[str, object]:
        return {
            "hash": self.file_hash,
            "violations": self.violations,
            "index": self.index.to_json(),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CacheEntry":
        return cls(
            file_hash=str(payload["hash"]),
            violations=list(payload.get("violations") or []),
            index=ModuleIndex.from_json(payload["index"]),
        )


class LintCache:
    """Load/query/update the on-disk lint cache.

    Usage::

        cache = LintCache.load(path, signature)
        entry = cache.get(display, file_hash)   # None on miss
        cache.put(display, entry)
        cache.save()
    """

    def __init__(self, path: Path, signature: str):
        self.path = path
        self.signature = signature
        self.entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path, signature: str) -> "LintCache":
        """Read the cache file; a missing/corrupt/stale cache is cold."""
        cache = cls(Path(path), signature)
        try:
            payload = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if payload.get("signature") != signature:
            return cache
        try:
            for display, entry in (payload.get("files") or {}).items():
                cache.entries[display] = CacheEntry.from_json(entry)
        except (KeyError, TypeError, ValueError) as exc:
            # Half-readable cache: keep what parsed, drop the rest —
            # entries are only ever an accelerator, never load-bearing.
            import sys

            print(
                f"repro lint: warning: discarding malformed cache entries "
                f"in {cache.path}: {exc}",
                file=sys.stderr,
            )
        return cache

    def get(self, display: str, file_hash: str) -> Optional[CacheEntry]:
        """The cached entry for *display*, or None when content changed."""
        entry = self.entries.get(display)
        if entry is not None and entry.file_hash == file_hash:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, display: str, entry: CacheEntry) -> None:
        """Record a freshly analyzed file."""
        self.entries[display] = entry

    def prune(self, live_displays: Sequence[str]) -> None:
        """Drop entries for files no longer part of the lint set."""
        live = set(live_displays)
        for display in [key for key in self.entries if key not in live]:
            del self.entries[display]

    def save(self) -> None:
        """Atomically write the cache next to its final path."""
        payload = {
            "signature": self.signature,
            "files": {
                display: entry.to_json()
                for display, entry in sorted(self.entries.items())
            },
        }
        from repro.ioutil import atomic_write_text

        data = json.dumps(payload, sort_keys=True)
        directory = self.path.parent if str(self.path.parent) else Path(".")
        try:
            directory.mkdir(parents=True, exist_ok=True)
            # durable=False: atomicity (no torn readers) matters, but the
            # cache is rebuildable, so fsync durability is not worth the
            # latency on every lint run.
            atomic_write_text(self.path, data, durable=False)
        except OSError as exc:
            # A read-only checkout must not fail the lint; the cache is
            # an accelerator, never a correctness dependency.
            import sys

            print(
                f"repro lint: warning: could not write cache {self.path}: {exc}",
                file=sys.stderr,
            )


def stats(cache: Optional[LintCache]) -> Tuple[int, int]:
    """``(hits, misses)`` for an optional cache."""
    if cache is None:
        return (0, 0)
    return (cache.hits, cache.misses)
