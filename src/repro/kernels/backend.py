"""The kernel-backend contract.

A :class:`KernelBackend` bundles the hot-path kernels behind one named
object.  Every kernel is specified here once — argument order, dtype
expectations, and the exact float semantics each implementation must
reproduce — so the numpy and numba implementations stay honest against
a single contract instead of against each other.

All kernels operate on float64/intp arrays and either mutate an
accumulator **in place** (the ``*_accumulate`` family, mirroring
``np.add.at``) or return fresh arrays (the elementwise reductions).
None of them may reorder a reduction: accumulation order is record
order, elementwise chains round after every operation, exactly like the
numpy expressions they replace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

Array = np.ndarray


@dataclass(frozen=True)
class KernelBackend:
    """One named set of hot-path kernel implementations.

    Attributes
    ----------
    name:
        Registry name (``"numpy"`` or ``"numba"``).
    cpt_accumulate:
        ``(counts, rows, codes) -> None`` — add 1.0 to
        ``counts[rows[i], codes[i]]`` for each *i* in order (the CPT
        count accumulation of :mod:`repro.cbn.learning`).
    bucket_accumulate:
        ``(sums, counts, ids, values) -> None`` — for each *i* in
        order, ``sums[ids[i]] += values[i]; counts[ids[i]] += 1.0``
        (the tabular-model bucket accumulation).  Entries with a
        negative id are skipped.
    importance_ratio:
        ``(new, old) -> new / old`` elementwise.
    clip_weights:
        ``(weights, clip) -> minimum(weights, clip)`` elementwise.
    dr_contributions:
        ``(dm_terms, weights, residuals) -> dm + w * res`` elementwise,
        rounding after the multiply and after the add (no FMA).
    sndr_contributions:
        ``(dm_terms, weights, residuals, scale) ->
        dm + (w * res) * scale`` elementwise, same rounding discipline.
    ips_contributions:
        ``(weights, rewards) -> w * r`` elementwise.
    ridge_solve:
        ``(design, targets, alpha) -> (coefficients, intercept)`` — the
        centred normal-equations ridge solve (BLAS-bound; both backends
        share the numpy implementation).
    knn_distances:
        ``(candidates, query) -> Euclidean row distances`` (pairwise
        summation semantics; both backends share the numpy
        implementation).
    topk_indices:
        ``(distances, k) -> indices of the k smallest`` via
        ``np.argpartition`` (tie-breaking is argpartition's; both
        backends share the numpy implementation).
    """

    name: str
    cpt_accumulate: Callable[[Array, Array, Array], None]
    bucket_accumulate: Callable[[Array, Array, Array, Array], None]
    importance_ratio: Callable[[Array, Array], Array]
    clip_weights: Callable[[Array, float], Array]
    dr_contributions: Callable[[Array, Array, Array], Array]
    sndr_contributions: Callable[[Array, Array, Array, float], Array]
    ips_contributions: Callable[[Array, Array], Array]
    ridge_solve: Callable[[Array, Array, float], Tuple[Array, float]]
    knn_distances: Callable[[Array, Array], Array]
    topk_indices: Callable[[Array, int], Array]
