"""Tests for committed lint baselines (repro.analysis.baseline)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Violation,
    lint_paths,
    load_baseline,
    matches_baseline,
    render_baseline,
    write_baseline,
)
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"

V = Violation(path="src/a.py", line=4, rule_id="REP001", message="no rng")


class TestFormat:
    def test_render_is_versioned_sorted_and_deduped(self):
        other = Violation(path="src/a.py", line=9, rule_id="REP001", message="no rng")
        document = json.loads(render_baseline([V, other, V]))
        assert document["version"] == 1
        # Same (rule, path, message) key: one entry, line-free.
        assert document["findings"] == [
            {"rule": "REP001", "path": "src/a.py", "message": "no rng"}
        ]

    def test_write_and_load_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline(target, [V])
        assert count == 1
        entries = load_baseline(target)
        assert matches_baseline(V, entries)

    def test_line_shift_does_not_resurrect_finding(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [V])
        entries = load_baseline(target)
        shifted = Violation(
            path="src/a.py", line=400, rule_id="REP001", message="no rng"
        )
        assert matches_baseline(shifted, entries)

    def test_different_message_not_matched(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [V])
        entries = load_baseline(target)
        changed = Violation(
            path="src/a.py", line=4, rule_id="REP001", message="другое"
        )
        assert not matches_baseline(changed, entries)


class TestErrors:
    def test_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(AnalysisError):
            load_baseline(bad)

    def test_missing_findings_key_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 1}))
        with pytest.raises(AnalysisError):
            load_baseline(bad)

    def test_incomplete_entry_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 1, "findings": [{"rule": "R"}]}))
        with pytest.raises(AnalysisError):
            load_baseline(bad)


class TestLintIntegration:
    def test_baselined_findings_suppressed_and_counted(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([str(FIXTURES / "rep001_bad.py")])
        write_baseline(baseline_path, report.violations)
        masked = lint_paths(
            [str(FIXTURES / "rep001_bad.py")],
            baseline=load_baseline(baseline_path),
        )
        assert masked.ok
        assert masked.baselined == len(report.violations)

    def test_new_findings_still_fail_with_baseline(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        report = lint_paths([str(FIXTURES / "rep001_bad.py")])
        write_baseline(baseline_path, report.violations[:1])
        partial = lint_paths(
            [str(FIXTURES / "rep001_bad.py")],
            baseline=load_baseline(baseline_path),
        )
        assert not partial.ok
        assert partial.baselined == 1
        assert len(partial.violations) == len(report.violations) - 1
