"""Tests for the core data model (contexts, records, traces)."""

import math

import numpy as np
import pytest

from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import TraceError


class TestClientContext:
    def test_features_roundtrip(self):
        context = ClientContext({"isp": "a", "x": 3})
        assert context.features == {"isp": "a", "x": 3}

    def test_kwargs_construction(self):
        context = ClientContext(isp="a", x=3)
        assert context["isp"] == "a"
        assert context["x"] == 3

    def test_kwargs_override_mapping(self):
        context = ClientContext({"x": 1}, x=2)
        assert context["x"] == 2

    def test_hashable_and_equal(self):
        first = ClientContext(a=1, b="z")
        second = ClientContext(b="z", a=1)
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            ClientContext(a=1)["b"]

    def test_get_with_default(self):
        context = ClientContext(a=1)
        assert context.get("b", "fallback") == "fallback"
        assert context.get("a") == 1

    def test_contains(self):
        context = ClientContext(a=1)
        assert "a" in context
        assert "b" not in context

    def test_keys_sorted(self):
        context = ClientContext(b=1, a=2, c=3)
        assert context.keys() == ("a", "b", "c")

    def test_values_for_order(self):
        context = ClientContext(a=1, b=2, c=3)
        assert context.values_for(["c", "a"]) == (3, 1)

    def test_values_for_missing_raises(self):
        with pytest.raises(KeyError):
            ClientContext(a=1).values_for(["b"])

    def test_restrict(self):
        context = ClientContext(a=1, b=2, c=3)
        assert context.restrict(["a", "c"]) == ClientContext(a=1, c=3)

    def test_with_features(self):
        context = ClientContext(a=1)
        extended = context.with_features(b=2, a=9)
        assert extended["a"] == 9
        assert extended["b"] == 2
        assert context["a"] == 1  # original untouched

    def test_numeric_vector(self):
        context = ClientContext(x=2.0, y=3)
        np.testing.assert_allclose(context.numeric_vector(["y", "x"]), [3.0, 2.0])

    def test_numeric_vector_rejects_strings(self):
        with pytest.raises((TypeError, ValueError)):
            ClientContext(x="nope").numeric_vector()

    def test_empty_feature_name_rejected(self):
        with pytest.raises(TraceError):
            ClientContext({"": 1})


class TestTraceRecord:
    def _record(self, **overrides):
        defaults = dict(
            context=ClientContext(a=1),
            decision="d",
            reward=1.0,
            propensity=0.5,
        )
        defaults.update(overrides)
        return TraceRecord(**defaults)

    def test_propensity_bounds(self):
        with pytest.raises(TraceError):
            self._record(propensity=0.0)
        with pytest.raises(TraceError):
            self._record(propensity=1.5)
        assert self._record(propensity=1.0).propensity == 1.0

    def test_none_propensity_allowed(self):
        assert self._record(propensity=None).propensity is None

    def test_nonfinite_reward_rejected(self):
        with pytest.raises(TraceError):
            self._record(reward=float("nan"))
        with pytest.raises(TraceError):
            self._record(reward=float("inf"))

    def test_with_reward_preserves_other_fields(self):
        record = self._record(timestamp=7.0, state="peak")
        changed = record.with_reward(9.0)
        assert changed.reward == 9.0
        assert changed.timestamp == 7.0
        assert changed.state == "peak"
        assert changed.propensity == record.propensity

    def test_with_propensity(self):
        assert self._record().with_propensity(0.25).propensity == 0.25

    def test_with_state(self):
        assert self._record().with_state("peak").state == "peak"


class TestTrace:
    def _trace(self, n=5):
        return Trace(
            TraceRecord(
                context=ClientContext(x=float(i)),
                decision="d" if i % 2 == 0 else "e",
                reward=float(i),
                propensity=0.5,
                timestamp=float(i),
            )
            for i in range(n)
        )

    def test_len_iter_getitem(self):
        trace = self._trace()
        assert len(trace) == 5
        assert [r.reward for r in trace] == [0, 1, 2, 3, 4]
        assert trace[2].reward == 2.0

    def test_slice_returns_trace(self):
        trace = self._trace()
        sub = trace[1:3]
        assert isinstance(sub, Trace)
        assert len(sub) == 2

    def test_append_rejects_non_record(self):
        with pytest.raises(TraceError):
            Trace().append("not a record")

    def test_rewards_array(self):
        np.testing.assert_allclose(self._trace(3).rewards(), [0.0, 1.0, 2.0])

    def test_propensities_nan_for_missing(self):
        trace = Trace(
            [
                TraceRecord(ClientContext(x=1), "d", 1.0, propensity=0.5),
                TraceRecord(ClientContext(x=1), "d", 1.0),
            ]
        )
        values = trace.propensities()
        assert values[0] == 0.5
        assert math.isnan(values[1])

    def test_has_propensities(self):
        assert self._trace().has_propensities()
        trace = Trace([TraceRecord(ClientContext(x=1), "d", 1.0)])
        assert not trace.has_propensities()

    def test_decision_set(self):
        assert self._trace().decision_set() == {"d", "e"}

    def test_feature_names_consistent(self):
        assert self._trace().feature_names() == ("x",)

    def test_feature_names_empty_trace_raises(self):
        with pytest.raises(TraceError):
            Trace().feature_names()

    def test_feature_names_inconsistent_schema_raises(self):
        trace = Trace(
            [
                TraceRecord(ClientContext(x=1), "d", 1.0),
                TraceRecord(ClientContext(y=1), "d", 1.0),
            ]
        )
        with pytest.raises(TraceError):
            trace.feature_names()

    def test_filter(self):
        filtered = self._trace().filter(lambda r: r.reward > 2)
        assert len(filtered) == 2

    def test_map_rewards(self):
        doubled = self._trace(3).map_rewards(lambda r: r.reward * 2)
        np.testing.assert_allclose(doubled.rewards(), [0.0, 2.0, 4.0])

    def test_split_deterministic_prefix(self):
        first, second = self._trace(10).split(0.3)
        assert len(first) == 3
        assert len(second) == 7
        assert first[0].reward == 0.0

    def test_split_random_partitions(self):
        rng = np.random.default_rng(0)
        first, second = self._trace(10).split(0.5, rng)
        assert len(first) == 5
        assert len(second) == 5
        rewards = sorted([r.reward for r in first] + [r.reward for r in second])
        assert rewards == list(map(float, range(10)))

    def test_split_bad_fraction(self):
        with pytest.raises(TraceError):
            self._trace().split(1.5)

    def test_subsample(self):
        rng = np.random.default_rng(0)
        sub = self._trace(10).subsample(4, rng)
        assert len(sub) == 4
        # order preserved
        timestamps = [r.timestamp for r in sub]
        assert timestamps == sorted(timestamps)

    def test_subsample_too_many(self):
        with pytest.raises(TraceError):
            self._trace(3).subsample(10, np.random.default_rng(0))

    def test_group_by_decision(self):
        groups = self._trace().group_by_decision()
        assert set(groups) == {"d", "e"}
        assert len(groups["d"]) == 3

    def test_mean_reward(self):
        assert self._trace(5).mean_reward() == 2.0

    def test_mean_reward_empty_raises(self):
        with pytest.raises(TraceError):
            Trace().mean_reward()

    def test_equality(self):
        assert self._trace() == self._trace()
        assert self._trace(3) != self._trace(4)


class TestSerialization:
    def _trace(self):
        return Trace(
            [
                TraceRecord(
                    context=ClientContext(isp="a", x=1.5),
                    decision=("cdn-1", 720),
                    reward=2.5,
                    propensity=0.25,
                    timestamp=3.0,
                    state="peak",
                ),
                TraceRecord(
                    context=ClientContext(isp="b", x=-1.0),
                    decision="direct",
                    reward=-0.5,
                ),
            ]
        )

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        original = self._trace()
        original.to_jsonl(path)
        restored = Trace.from_jsonl(path)
        assert restored == original
        # tuple decision survives exactly
        assert restored[0].decision == ("cdn-1", 720)

    def test_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        original = self._trace()
        original.to_csv(path)
        restored = Trace.from_csv(path)
        assert len(restored) == 2
        assert restored[0].decision == ("cdn-1", 720)
        assert restored[0].propensity == 0.25
        assert restored[1].propensity is None
        assert restored[0].context["isp"] == "a"

    def test_jsonl_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceError):
            Trace.from_jsonl(str(path))

    def test_jsonl_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"context": {}, "decision": "d"}\n')
        with pytest.raises(TraceError):
            Trace.from_jsonl(str(path))

    def test_empty_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        Trace().to_csv(path)
        assert len(Trace.from_csv(path)) == 0
