"""Causal-Bayesian-network substrate (WISE; paper Fig 4 and Fig 7a).

Discrete Bayesian networks with exact inference
(:mod:`repro.cbn.graph`), parameter/structure learning
(:mod:`repro.cbn.learning`), the WISE-style CBN reward model
(:mod:`repro.cbn.wise`), and the Fig 4 ISP/frontend/backend scenario
(:mod:`repro.cbn.scenario`).
"""

from repro.cbn.graph import BayesianNetwork, ConditionalTable
from repro.cbn.learning import (
    StructureLearner,
    bic_score,
    fit_parameters,
    log_likelihood,
)
from repro.cbn.scenario import BACKENDS, FRONTENDS, ISPS, WiseScenario
from repro.cbn.wise import REWARD_VARIABLE, WiseRewardModel

__all__ = [
    "BayesianNetwork",
    "ConditionalTable",
    "fit_parameters",
    "log_likelihood",
    "bic_score",
    "StructureLearner",
    "WiseRewardModel",
    "REWARD_VARIABLE",
    "WiseScenario",
    "ISPS",
    "FRONTENDS",
    "BACKENDS",
]
