"""Tests for DR-based policy learning."""

import numpy as np
import pytest

from repro import core
from repro.core.optimization import DRPolicyLearner, dr_decision_scores
from repro.core.types import ClientContext, Trace, TraceRecord
from repro.errors import EstimatorError
from repro.workloads import SyntheticWorkload

from tests.conftest import make_uniform_trace


def _truth(context, decision):
    return {"a": 1.0, "b": 2.0, "c": 3.0}[decision] + 0.1 * float(context["x"])


class TestDecisionScores:
    def test_scores_track_truth(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=1200, noise=0.2)
        scores = dr_decision_scores(
            trace,
            abc_space,
            core.TabularMeanModel(key_features=("isp",)),
            key_features=("isp",),
        )
        for bucket, decision_scores in scores.items():
            assert decision_scores["c"] > decision_scores["b"] > decision_scores["a"]
            assert decision_scores["c"] == pytest.approx(3.2, abs=0.25)

    def test_every_bucket_scores_every_decision(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=200)
        scores = dr_decision_scores(
            trace,
            abc_space,
            core.TabularMeanModel(key_features=("isp",)),
            key_features=("isp",),
        )
        for decision_scores in scores.values():
            assert set(decision_scores) == set(abc_space.decisions)

    def test_empty_trace_rejected(self, abc_space):
        with pytest.raises(EstimatorError):
            dr_decision_scores(
                Trace(), abc_space, core.TabularMeanModel(), key_features=()
            )

    def test_oracle_model_gives_exact_scores_on_noiseless_data(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=300, noise=0.0)
        scores = dr_decision_scores(
            trace,
            abc_space,
            core.OracleRewardModel(_truth),
            key_features=(),
        )
        ((_, decision_scores),) = scores.items()
        expected = np.mean([_truth(r.context, "b") for r in trace])
        assert decision_scores["b"] == pytest.approx(expected)


class TestDRPolicyLearner:
    def test_learns_optimal_tabular_policy(self, rng):
        workload = SyntheticWorkload(
            n_features=2, cardinality=3, n_decisions=3, interaction_scale=1.5
        )
        old = workload.uniform_policy()
        trace = workload.generate_trace(old, 4000, rng)
        learner = DRPolicyLearner(
            workload.space(),
            core.TabularMeanModel(key_features=("f0", "f1")),
            key_features=("f0", "f1"),
            exploration=0.0,
        )
        learned = learner.learn(trace, old_policy=old)
        # Compare against the truth-greedy policy on the trace contexts.
        optimal = workload.optimal_policy()
        agreement = np.mean(
            [
                learned.policy.greedy_decision(record.context)
                == optimal.greedy_decision(record.context)
                for record in trace
            ]
        )
        assert agreement > 0.85

    def test_exploration_mixed_in(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=400)
        learner = DRPolicyLearner(
            abc_space,
            core.TabularMeanModel(key_features=("isp",)),
            key_features=("isp",),
            exploration=0.3,
        )
        learned = learner.learn(trace)
        context = trace[0].context
        distribution = learned.policy.probabilities(context)
        assert min(distribution.values()) >= 0.3 / 3 - 1e-9

    def test_unseen_bucket_uses_global_best(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=600)
        learner = DRPolicyLearner(
            abc_space,
            core.TabularMeanModel(key_features=("isp",)),
            key_features=("isp",),
            exploration=0.0,
        )
        learned = learner.learn(trace)
        unseen = ClientContext(x=0.0, isp="isp-unseen")
        assert learned.policy.greedy_decision(unseen) == "c"

    def test_decision_for_unknown_bucket_raises(self, abc_space, rng):
        trace = make_uniform_trace(abc_space, _truth, rng, n=100)
        learner = DRPolicyLearner(
            abc_space,
            core.TabularMeanModel(key_features=("isp",)),
            key_features=("isp",),
        )
        learned = learner.learn(trace)
        with pytest.raises(EstimatorError):
            learned.decision_for(("nope",))

    def test_exploration_validation(self, abc_space):
        with pytest.raises(EstimatorError):
            DRPolicyLearner(
                abc_space, core.TabularMeanModel(), key_features=(), exploration=1.5
            )

    def test_closed_loop_improves_on_logging_policy(self, rng):
        """The Fig 1 loop: log -> learn -> the learned policy beats the
        logging policy on true value."""
        workload = SyntheticWorkload(n_features=2, cardinality=3, n_decisions=3)
        old = workload.logging_policy(epsilon=0.4)
        trace = workload.generate_trace(old, 3000, rng)
        learner = DRPolicyLearner(
            workload.space(),
            core.TabularMeanModel(key_features=("f0", "f1")),
            key_features=("f0", "f1"),
            exploration=0.05,
        )
        learned = learner.learn(trace, old_policy=old)
        old_value = workload.ground_truth_value(old, trace)
        new_value = workload.ground_truth_value(learned.policy, trace)
        assert new_value > old_value
