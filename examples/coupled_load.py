#!/usr/bin/env python3
"""Decision-reward coupling: evaluating a load-concentrating policy.

The §4.1 "hidden decision-reward coupling" challenge: a policy that
concentrates clients on one server degrades that server for later
clients, so rewards in deployment differ from rewards in a trace where
load was spread.  Following §4.3, this example monitors server load,
detects the regime change with PELT, thresholds segments into load
states, and runs DR only on the records whose state matches deployment.

Run:  python examples/coupled_load.py
"""

from __future__ import annotations

import numpy as np

from repro import core
from repro.core.types import ClientContext, Trace
from repro.stateaware import CoupledLoadSimulator, StateMatchedDR, pelt

N_CLIENTS = 1600


def main() -> None:
    rng = np.random.default_rng(53)
    simulator = CoupledLoadSimulator(
        {"server-a": 90.0, "server-b": 90.0}, session_length=80
    )
    space = simulator.space()
    spread = core.UniformRandomPolicy(space)
    concentrate = core.EpsilonGreedyPolicy(
        core.DeterministicPolicy(space, lambda c: "server-a"), epsilon=0.2
    )

    contexts = [
        ClientContext(region=f"r{int(rng.integers(0, 4))}") for _ in range(N_CLIENTS)
    ]
    half = N_CLIENTS // 2

    # Phase 1: operations spreads load.  Phase 2: a canary of the
    # concentrating policy runs, creating the very congestion it will
    # live in.
    trace_spread, load_spread = simulator.run(spread, contexts[:half], rng)
    trace_canary, load_canary = simulator.run(concentrate, contexts[half:], rng)
    trace = Trace(list(trace_spread) + list(trace_canary))
    load_series = list(load_spread) + list(load_canary)
    print(f"trace: {len(trace)} assignments across two operational phases")
    print(f"mean reward, phase 1 (spread)     : {trace_spread.mean_reward():7.2f}")
    print(f"mean reward, phase 2 (concentrate): {trace_canary.mean_reward():7.2f}")

    # Ground truth: deploy the concentrating policy over the full
    # sequence (it creates — and pays for — its own congestion).
    deployments = [
        simulator.run(concentrate, contexts, np.random.default_rng(s))[0].mean_reward()
        for s in range(5)
    ]
    truth = float(np.mean(deployments))
    print(f"\ntrue deployed value of the concentrating policy: {truth:.2f}")

    # Naive DR: blends the cheap low-load phase into the estimate.
    naive = core.DoublyRobust(core.TabularMeanModel(key_features=())).estimate(
        concentrate, trace
    )
    print(f"naive DR over the whole trace: {naive.value:.2f} "
          f"(rel.err {core.relative_error(truth, naive.value):.3f})")

    # §4.3: change-point detection on the monitored load proxy ...
    segmentation = pelt(load_series, min_segment_length=20)
    print(f"\nPELT change points in the load series: {segmentation.changepoints}")
    segment_means = segmentation.segment_means(load_series)
    threshold = float(np.median(load_series))
    labels = segmentation.labels()
    names = [
        "high-load" if segment_means[int(label)] > threshold else "low-load"
        for label in labels
    ]
    labelled = Trace(
        record.with_state(name) for record, name in zip(trace, names)
    )
    for state in ("low-load", "high-load"):
        subset = labelled.filter(lambda r, state=state: r.state == state)
        print(f"  {state:9s}: {len(subset):4d} records, "
              f"mean reward {subset.mean_reward():7.2f}")

    # ... then DR restricted to the deployment's load state.
    matched = StateMatchedDR(
        lambda: core.TabularMeanModel(key_features=()), target_state="high-load"
    ).estimate(concentrate, labelled)
    print(f"\nstate-matched DR (high-load records only): {matched.value:.2f} "
          f"(rel.err {core.relative_error(truth, matched.value):.3f})")
    print("-> matching on the self-induced load state removes the "
          "optimistic bias (paper §4.3).")


if __name__ == "__main__":
    main()
