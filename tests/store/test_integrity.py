"""Shard integrity: checksums, classification, verify, degraded reads."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    ShardChecksumError,
    ShardMissingError,
    ShardReadError,
    ShardTruncatedError,
    StoreError,
)
from repro.runtime import RetryPolicy
from repro.store import (
    FORMAT_VERSION,
    ShardedTrace,
    load_manifest,
    schema_hash,
    shard_filename,
    verify_store,
)
from repro.testing.faults import (
    EIOOnNthRead,
    SlowRead,
    delete_shard,
    flip_shard_bit,
    tear_manifest,
    truncate_shard,
)

from .conftest import build_trace

RECORDS = 90
SHARD_SIZE = 30  # 3 shards


@pytest.fixture
def shard_dir(tmp_path):
    trace = build_trace(n=RECORDS, with_states=True)
    directory = tmp_path / "shards"
    trace.to_shards(directory, shard_size=SHARD_SIZE)
    return directory


class TestManifestIntegrityFields:
    def test_v2_manifest_records_bytes_and_sha256_per_shard(self, shard_dir):
        manifest = load_manifest(shard_dir)
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["checksum_algorithm"] == "sha256"
        for entry in manifest["shards"]:
            path = shard_dir / entry["file"]
            assert entry["bytes"] == path.stat().st_size
            assert isinstance(entry["sha256"], str)
            assert len(entry["sha256"]) == 64

    def test_missing_integrity_fields_refused(self, shard_dir):
        manifest_path = shard_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["shards"][0]["sha256"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="integrity fields"):
            load_manifest(shard_dir)


class TestVerifyDetectsEveryCorruption:
    def test_clean_store_verifies(self, shard_dir):
        report = verify_store(shard_dir)
        assert report.ok
        assert report.corrupt == ()
        assert "all shards verified" in report.render()

    def test_bit_flip_classifies_as_checksum_mismatch(self, shard_dir):
        flip_shard_bit(shard_dir, 1)
        report = verify_store(shard_dir)
        assert not report.ok
        (bad,) = report.corrupt
        assert bad.kind == "checksum-mismatch"
        assert bad.file == shard_filename(1)
        assert "repro repair" in report.render()

    def test_truncation_classifies_as_truncated(self, shard_dir):
        truncate_shard(shard_dir, 2)
        (bad,) = verify_store(shard_dir).corrupt
        assert bad.kind == "truncated"

    def test_deletion_classifies_as_missing(self, shard_dir):
        delete_shard(shard_dir, 0)
        (bad,) = verify_store(shard_dir).corrupt
        assert bad.kind == "missing"

    def test_torn_manifest_is_a_manifest_error_not_a_crash(self, shard_dir):
        tear_manifest(shard_dir)
        report = verify_store(shard_dir)
        assert not report.ok
        assert report.manifest_error is not None
        assert "CORRUPT" in report.render()

    def test_multiple_faults_all_reported(self, shard_dir):
        flip_shard_bit(shard_dir, 0)
        delete_shard(shard_dir, 2)
        report = verify_store(shard_dir)
        assert {shard.kind for shard in report.corrupt} == {
            "checksum-mismatch",
            "missing",
        }


class TestLazyVerificationOnDecode:
    def test_bit_flip_raises_typed_error_at_first_decode(self, shard_dir):
        flip_shard_bit(shard_dir, 1)
        trace = ShardedTrace(shard_dir)
        trace[0]  # shard 0 is fine
        with pytest.raises(ShardChecksumError):
            trace[SHARD_SIZE]  # first record of shard 1

    def test_truncated_shard_raises_typed_error(self, shard_dir):
        truncate_shard(shard_dir, 0)
        with pytest.raises(ShardTruncatedError):
            ShardedTrace(shard_dir)[0]

    def test_missing_shard_raises_at_open_in_strict_mode(self, shard_dir):
        delete_shard(shard_dir, 0)
        with pytest.raises(StoreError, match="missing shard file"):
            ShardedTrace(shard_dir)

    def test_failure_is_sticky_without_rereading(self, shard_dir):
        flip_shard_bit(shard_dir, 0)
        trace = ShardedTrace(shard_dir)
        with pytest.raises(ShardChecksumError):
            trace[0]
        # Second access re-raises the classified error even if the file
        # has been deleted since — no second read happens.
        delete_shard(shard_dir, 0)
        with pytest.raises(ShardChecksumError):
            trace[0]


class TestTransientFaultRetry:
    def test_transient_eio_recovers_within_policy(self, shard_dir):
        trace = ShardedTrace(shard_dir, retry=RetryPolicy(max_attempts=3))
        # Patch away real sleeping: route through the store's policy but
        # verify recovery, not wall-clock.
        with EIOOnNthRead(fail_on=[1, 2]):
            record = trace[0]
        assert record.reward == build_trace(n=RECORDS, with_states=True)[0].reward

    def test_exhausted_retries_classify_as_io_error(self, shard_dir):
        trace = ShardedTrace(shard_dir, retry=RetryPolicy(max_attempts=2))
        with EIOOnNthRead(fail_on=[1, 2, 3, 4]):
            with pytest.raises(ShardReadError, match="after 2 attempt"):
                trace[0]

    def test_single_attempt_without_policy(self, shard_dir):
        trace = ShardedTrace(shard_dir)
        with EIOOnNthRead(fail_on=[1]):
            with pytest.raises(ShardReadError, match="after 1 attempt"):
                trace[0]

    def test_missing_file_is_never_retried(self, shard_dir):
        delete_shard(shard_dir, 1)
        trace = ShardedTrace(
            shard_dir, on_corruption="quarantine", retry=RetryPolicy(max_attempts=5)
        )
        with EIOOnNthRead(fail_on=[]) as counter:
            with pytest.raises(ShardMissingError):
                trace[SHARD_SIZE]
        # One probe, not five: FileNotFoundError is permanent.
        assert counter.reads == 1

    def test_backoff_is_deterministic_per_shard(self, shard_dir):
        policy = RetryPolicy(max_attempts=3)
        from repro.store.integrity import read_shard_with_retry

        def delays():
            slept = []
            with EIOOnNthRead(fail_on=[1, 2]):
                read_shard_with_retry(
                    shard_dir / shard_filename(0),
                    retry=policy,
                    seed=0,
                    sleep=slept.append,
                )
            return slept

        assert delays() == delays()

    def test_slow_read_injector_counts_stalls(self, shard_dir):
        stalls = []
        with SlowRead(delay=7.5, sleep=stalls.append):
            ShardedTrace(shard_dir)[0]
        assert stalls == [7.5]


class TestV1BackwardCompatibility:
    def _downgrade(self, shard_dir):
        manifest_path = shard_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        manifest["schema_hash"] = schema_hash(
            manifest["schema"]["features"], version=1
        )
        del manifest["checksum_algorithm"]
        for entry in manifest["shards"]:
            del entry["sha256"]
            del entry["bytes"]
        manifest_path.write_text(json.dumps(manifest))

    def test_v1_manifest_loads_with_warning(self, shard_dir):
        self._downgrade(shard_dir)
        with pytest.warns(UserWarning, match="pre-checksum"):
            manifest = load_manifest(shard_dir)
        assert manifest["version"] == 1

    def test_v1_store_reads_and_verifies_without_checksums(self, shard_dir):
        self._downgrade(shard_dir)
        with pytest.warns(UserWarning, match="pre-checksum"):
            trace = ShardedTrace(shard_dir)
        assert len(trace) == RECORDS
        with pytest.warns(UserWarning):
            report = verify_store(shard_dir)
        assert report.ok
        assert not report.checksummed
        assert "pre-checksum" in report.render()

    def test_v1_bit_flip_is_invisible_to_verify_but_decode_may_catch(
        self, shard_dir
    ):
        # The motivating gap: v1 cannot byte-verify. A flip inside the
        # compressed payload is caught only if the zip layer chokes.
        self._downgrade(shard_dir)
        flip_shard_bit(shard_dir, 0)
        with pytest.warns(UserWarning):
            report = verify_store(shard_dir, decode=False)
        assert report.ok  # the documented v1 blind spot


class TestQuarantineDegradation:
    def test_quarantine_skips_bad_shard_and_accounts_loss(self, shard_dir):
        flip_shard_bit(shard_dir, 1)
        trace = ShardedTrace(shard_dir, on_corruption="quarantine")
        seen = sum(len(chunk) for chunk in trace.iter_chunks())
        assert seen == RECORDS - SHARD_SIZE
        assert trace.quarantined_records() == SHARD_SIZE
        report = trace.quarantine_report()
        assert report.dropped_shards == 1
        assert report.dropped_records == SHARD_SIZE
        assert report.reason_counts == {"checksum-mismatch": 1}
        assert "dropped 1/3" in report.render()

    def test_missing_shard_quarantines_at_read_time(self, shard_dir):
        delete_shard(shard_dir, 2)
        trace = ShardedTrace(shard_dir, on_corruption="quarantine")
        seen = sum(len(chunk) for chunk in trace.iter_chunks())
        assert seen == RECORDS - SHARD_SIZE
        assert trace.quarantine_report().reason_counts == {"missing": 1}

    def test_random_access_still_raises_under_quarantine_policy(self, shard_dir):
        flip_shard_bit(shard_dir, 1)
        trace = ShardedTrace(shard_dir, on_corruption="quarantine")
        with pytest.raises(ShardChecksumError):
            trace[SHARD_SIZE]

    def test_bad_policy_name_refused(self, shard_dir):
        with pytest.raises(StoreError, match="on_corruption"):
            ShardedTrace(shard_dir, on_corruption="ignore")

    def test_quarantine_emits_obs_metrics(self, shard_dir):
        from repro import obs

        flip_shard_bit(shard_dir, 0)
        trace = ShardedTrace(shard_dir, on_corruption="quarantine")
        recorder = obs.enable()
        try:
            list(trace.iter_chunks())
        finally:
            obs.disable()
        metrics = recorder.metrics.snapshot()
        assert metrics["counters"]["ope.store.quarantine.shards"] == 1
        assert metrics["counters"]["ope.store.quarantine.records"] == SHARD_SIZE
