"""Confidence sequences: merge algebra, anytime coverage, ratio form."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.live import ConfidenceSequence, RatioConfidenceSequence, WelfordState


class TestWelfordState:
    def test_chunk_merge_matches_numpy_moments(self):
        rng = np.random.default_rng(11)
        values = rng.normal(2.0, 3.0, 10_000)
        state = WelfordState()
        for chunk in np.array_split(values, 13):
            mean = float(chunk.mean())
            state.merge_chunk(chunk.size, mean, float(((chunk - mean) ** 2).sum()))
        assert state.count == values.size
        assert state.mean == pytest.approx(values.mean(), rel=1e-12)
        assert state.variance == pytest.approx(values.var(), rel=1e-10)

    def test_chunking_invariance_up_to_float_noise(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(1.0, 5_000)
        states = []
        for pieces in (1, 7, 100):
            state = WelfordState()
            for chunk in np.array_split(values, pieces):
                mean = float(chunk.mean())
                state.merge_chunk(
                    chunk.size, mean, float(((chunk - mean) ** 2).sum())
                )
            states.append(state)
        for state in states[1:]:
            assert state.count == states[0].count
            assert state.mean == pytest.approx(states[0].mean, rel=1e-12)
            assert state.variance == pytest.approx(states[0].variance, rel=1e-10)

    def test_empty_chunk_ignored(self):
        state = WelfordState()
        state.merge_chunk(0, 0.0, 0.0)
        assert state.count == 0
        assert state.variance == 0.0


class TestConfidenceSequence:
    def test_center_tracks_running_mean(self):
        cs = ConfidenceSequence()
        cs.update(np.array([1.0, 2.0, 3.0]))
        assert cs.center == pytest.approx(2.0)
        cs.update(np.array([6.0]))
        assert cs.center == pytest.approx(3.0)
        assert cs.count == 4

    def test_radius_shrinks_with_data(self):
        rng = np.random.default_rng(3)
        cs = ConfidenceSequence()
        cs.update(rng.normal(0.0, 1.0, 100))
        early = cs.radius()
        cs.update(rng.normal(0.0, 1.0, 100_000))
        assert cs.radius() < early / 5

    def test_interval_covers_true_mean_on_stationary_stream(self):
        # A seeded sanity check, not a coverage experiment: on one long
        # stationary stream the anytime interval should contain the true
        # mean at every refresh point.
        rng = np.random.default_rng(42)
        cs = ConfidenceSequence(alpha=0.05)
        for _ in range(50):
            cs.update(rng.normal(1.5, 2.0, 2_000))
            lower, upper = cs.interval()
            assert lower <= 1.5 <= upper

    def test_fixed_scale_used_verbatim(self):
        cs = ConfidenceSequence(scale=1.0)
        cs.update(np.zeros(100))
        # zero variance: the radius is exactly the range term 3·b·ℓ/n.
        assert cs.radius() == pytest.approx(3.0 * cs.log_epochs() / 100)

    def test_width_is_twice_radius(self):
        cs = ConfidenceSequence()
        cs.update(np.array([0.0, 1.0, 2.0]))
        assert cs.width() == pytest.approx(2.0 * cs.radius())

    def test_no_data_is_infinite_and_center_raises(self):
        cs = ConfidenceSequence()
        assert cs.radius() == float("inf")
        with pytest.raises(EstimatorError, match="no data"):
            cs.center

    def test_non_finite_values_rejected(self):
        cs = ConfidenceSequence()
        with pytest.raises(EstimatorError, match="non-finite"):
            cs.update(np.array([1.0, np.nan]))

    def test_alpha_validated(self):
        with pytest.raises(EstimatorError, match="alpha"):
            ConfidenceSequence(alpha=1.5)

    def test_deterministic_for_a_fixed_chunk_sequence(self):
        rng = np.random.default_rng(9)
        chunks = [rng.normal(0.0, 1.0, 500) for _ in range(10)]
        first, second = ConfidenceSequence(), ConfidenceSequence()
        for chunk in chunks:
            first.update(chunk)
            second.update(chunk)
        assert first.center == second.center
        assert first.radius() == second.radius()


class TestRatioConfidenceSequence:
    def test_center_is_ratio_of_means(self):
        cs = RatioConfidenceSequence()
        cs.update(np.array([2.0, 4.0]), np.array([1.0, 1.0]))
        assert cs.center == pytest.approx(3.0)
        assert cs.count == 2

    def test_straddling_denominator_gives_infinite_interval(self):
        cs = RatioConfidenceSequence()
        # Denominator mean ~0 with real spread: its interval includes 0.
        cs.update(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        assert cs.interval() == (float("-inf"), float("inf"))
        assert cs.width() == float("inf")

    def test_interval_covers_snips_style_ratio(self):
        rng = np.random.default_rng(17)
        cs = RatioConfidenceSequence(alpha=0.05)
        # weights with mean 1, rewards with mean 2 → true ratio 2.
        for _ in range(40):
            weights = rng.uniform(0.5, 1.5, 5_000)
            rewards = 2.0 + rng.normal(0.0, 1.0, 5_000)
            cs.update(weights * rewards, weights)
        lower, upper = cs.interval()
        assert np.isfinite(lower) and np.isfinite(upper)
        assert lower <= 2.0 <= upper

    def test_alpha_validated(self):
        with pytest.raises(EstimatorError, match="alpha"):
            RatioConfidenceSequence(alpha=0.0)
