"""The span/tracing API and the in-memory recorder.

``with obs.span("estimate", estimator="dr"):`` wraps a phase of work and
records its wall-clock and CPU time into every **active recorder**.
Spans nest: each completed span knows its depth and its *path* — the
``>``-joined chain of labels from the outermost span down
(``estimate[estimator=dr]>model.fit[model=WiseRewardModel]``) — which is
the aggregation key for flat profiles, tree renders, and telemetry
counts (a parent pointer would be redundant: the path encodes the full
ancestry).

Recorder activation model (process-global, fork-safe):

* :func:`capture` pushes a fresh :class:`Recorder` for the duration of a
  ``with`` block — the per-seed capture the retry executor uses;
* :func:`enable` / :func:`disable` manage a long-lived process recorder
  (what ``repro trace`` and ``--profile`` use);
* with **no** active recorder, :func:`span` and the metric helpers are
  near-free no-ops, so instrumented hot paths cost nothing by default.

Thread-safety: span *nesting* is tracked per thread (a thread-local
stack), while the recorder list and every recorder's buffers are locked,
so concurrent threads cannot corrupt state.  Fork-safety: all module
state is keyed by ``os.getpid()`` and reset on first use in a forked
child, so a worker process never inherits (or double-reports into) its
parent's recorders — workers ship telemetry home explicitly via their
:class:`~repro.runtime.records.RunRecord`.

Determinism: recording never touches a random generator, and nothing an
estimator computes depends on whether a recorder is active — telemetry
is a pure side channel.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

#: Separator between nested span labels in a span path.
PATH_SEPARATOR = ">"


def span_label(name: str, attributes: Dict[str, Any]) -> str:
    """Canonical label of one span: ``name[key=value,...]``.

    Attributes are sorted by key so the label (and therefore every span
    path) is deterministic regardless of keyword order at the call site.
    Attribute values containing :data:`PATH_SEPARATOR` are sanitised so
    a label can never be mistaken for a nesting boundary (fallback chain
    names such as ``chain(dr>snips>dm)`` would otherwise split paths).
    """
    if not attributes:
        return name
    inner = ",".join(
        f"{key}={str(attributes[key]).replace(PATH_SEPARATOR, '/')}"
        for key in sorted(attributes)
    )
    return f"{name}[{inner}]"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span as stored by a :class:`Recorder`.

    ``wall_seconds``/``cpu_seconds`` are real measurements; everything
    else (name, attributes, path, depth, ordering) is deterministic.
    """

    name: str
    attributes: Dict[str, Any]
    path: str
    depth: int
    index: int
    wall_seconds: float
    cpu_seconds: float


class Recorder:
    """An in-memory sink for spans and metrics.

    One recorder corresponds to one observation scope: a per-seed
    capture, or the process-level recorder behind ``repro trace``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry()

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        """Completed spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def record_span(
        self,
        name: str,
        attributes: Dict[str, Any],
        path: str,
        depth: int,
        wall_seconds: float,
        cpu_seconds: float,
    ) -> None:
        """Append one completed span."""
        with self._lock:
            self._spans.append(
                SpanRecord(
                    name=name,
                    attributes=dict(attributes),
                    path=path,
                    depth=depth,
                    index=len(self._spans),
                    wall_seconds=wall_seconds,
                    cpu_seconds=cpu_seconds,
                )
            )

    def span_counts(self) -> Dict[str, int]:
        """Deterministic ``{span path: completed count}`` aggregation."""
        counts: Dict[str, int] = {}
        for record in self.spans:
            counts[record.path] = counts.get(record.path, 0) + 1
        return counts

    def flat_profile(self) -> Dict[str, Dict[str, float]]:
        """``{span path: {count, wall, cpu}}`` — the per-span flat profile.

        Wall/CPU totals are real timings (use :meth:`span_counts` for
        the deterministic view).
        """
        profile: Dict[str, Dict[str, float]] = {}
        for record in self.spans:
            entry = profile.get(record.path)
            if entry is None:
                profile[record.path] = {
                    "count": 1,
                    "wall": record.wall_seconds,
                    "cpu": record.cpu_seconds,
                }
            else:
                entry["count"] += 1
                entry["wall"] += record.wall_seconds
                entry["cpu"] += record.cpu_seconds
        return profile


@dataclass
class _ProcessState:
    """All module state, owned by exactly one process id."""

    pid: int
    lock: threading.Lock = field(default_factory=threading.Lock)
    recorders: List[Recorder] = field(default_factory=list)
    process_recorder: Optional[Recorder] = None


_STATE = _ProcessState(pid=os.getpid())


class _ThreadState(threading.local):
    """Per-thread span-path stack (for nesting/depth tracking)."""

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.paths: List[str] = []


_THREAD = _ThreadState()


def _state() -> _ProcessState:
    """The current process's state, reset after a fork."""
    global _STATE
    pid = os.getpid()
    if _STATE.pid != pid:
        # Forked child: drop inherited recorders — telemetry travels back
        # to the parent explicitly, never through shared memory.
        _STATE = _ProcessState(pid=pid)
    return _STATE


def _thread_paths() -> List[str]:
    pid = os.getpid()
    if _THREAD.pid != pid:
        _THREAD.pid = pid
        _THREAD.paths = []
    return _THREAD.paths


def active_recorders() -> Tuple[Recorder, ...]:
    """Every currently active recorder (innermost last)."""
    state = _state()
    with state.lock:
        return tuple(state.recorders)


def recording() -> bool:
    """Whether any recorder is active in this process."""
    return bool(active_recorders())


@contextmanager
def capture() -> Iterator[Recorder]:
    """Activate a fresh :class:`Recorder` for the ``with`` block.

    Captures stack: spans and metrics recorded inside the block land in
    this recorder *and* in any outer active recorders, so a per-seed
    capture does not blind a process-level profiler.

    A capture is a *fresh observation scope*: the calling thread's span
    stack is cleared for the duration of the block (and restored after),
    so the paths it records never depend on ambient nesting.  This is
    what makes a per-seed capture's span paths identical whether the
    seed ran inline on the main thread or on a forked pool worker.
    """
    recorder = Recorder()
    state = _state()
    paths = _thread_paths()
    ambient = paths[:]
    paths.clear()
    with state.lock:
        state.recorders.append(recorder)
    try:
        yield recorder
    finally:
        with state.lock:
            if recorder in state.recorders:
                state.recorders.remove(recorder)
        paths[:] = ambient


def enable() -> Recorder:
    """Activate (or return) the long-lived process-level recorder."""
    state = _state()
    with state.lock:
        if state.process_recorder is None:
            state.process_recorder = Recorder()
            state.recorders.insert(0, state.process_recorder)
        return state.process_recorder


def disable() -> Optional[Recorder]:
    """Deactivate and return the process-level recorder (``None`` if off)."""
    state = _state()
    with state.lock:
        recorder = state.process_recorder
        state.process_recorder = None
        if recorder is not None and recorder in state.recorders:
            state.recorders.remove(recorder)
        return recorder


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[None]:
    """Record one timed, nested span into every active recorder.

    A pure no-op (beyond one tuple allocation) when nothing records.
    Never touches RNG state; safe to wrap hot paths unconditionally.
    """
    recorders = active_recorders()
    if not recorders:
        yield
        return
    paths = _thread_paths()
    label = span_label(name, attributes)
    path = paths[-1] + PATH_SEPARATOR + label if paths else label
    depth = len(paths)
    paths.append(path)
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    try:
        yield
    finally:
        wall = time.perf_counter() - wall_started
        cpu = time.process_time() - cpu_started
        paths.pop()
        for recorder in recorders:
            recorder.record_span(
                name=name,
                attributes=attributes,
                path=path,
                depth=depth,
                wall_seconds=wall,
                cpu_seconds=cpu,
            )


def increment(name: str, value: float = 1) -> None:
    """Add *value* to counter *name* in every active recorder."""
    for recorder in active_recorders():
        recorder.metrics.increment(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge *name* in every active recorder."""
    for recorder in active_recorders():
        recorder.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram sample into every active recorder."""
    for recorder in active_recorders():
        recorder.metrics.observe(name, value)
