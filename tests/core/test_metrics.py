"""Tests for evaluation-error metrics."""

import pytest

from repro.core.metrics import (
    BiasVarianceSummary,
    ErrorSummary,
    error_reduction,
    paired_error_table,
    relative_error,
)
from repro.errors import EstimatorError


class TestRelativeError:
    def test_basic(self):
        assert relative_error(2.0, 1.5) == pytest.approx(0.25)
        assert relative_error(2.0, 2.5) == pytest.approx(0.25)

    def test_negative_truth(self):
        assert relative_error(-2.0, -1.0) == pytest.approx(0.5)

    def test_zero_truth_rejected(self):
        with pytest.raises(EstimatorError):
            relative_error(0.0, 1.0)


class TestErrorSummary:
    def test_from_errors(self):
        summary = ErrorSummary.from_errors([0.1, 0.2, 0.3])
        assert summary.mean == pytest.approx(0.2)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.3)
        assert summary.runs == 3

    def test_single_run_zero_std(self):
        assert ErrorSummary.from_errors([0.5]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            ErrorSummary.from_errors([])

    def test_render(self):
        text = ErrorSummary.from_errors([0.1, 0.2]).render("dr")
        assert "dr" in text
        assert "mean=" in text


class TestErrorReduction:
    def test_paper_style_reduction(self):
        baseline = ErrorSummary.from_errors([0.10, 0.10])
        improved = ErrorSummary.from_errors([0.068, 0.068])
        assert error_reduction(baseline, improved) == pytest.approx(0.32)

    def test_zero_baseline_rejected(self):
        baseline = ErrorSummary.from_errors([0.0])
        improved = ErrorSummary.from_errors([0.1])
        with pytest.raises(EstimatorError):
            error_reduction(baseline, improved)


class TestBiasVariance:
    def test_decomposition(self):
        summary = BiasVarianceSummary.from_runs(2.0, [2.5, 2.5, 2.5])
        assert summary.bias == pytest.approx(0.5)
        assert summary.variance == pytest.approx(0.0)
        assert summary.mse == pytest.approx(0.25)

    def test_variance_only(self):
        summary = BiasVarianceSummary.from_runs(2.0, [1.0, 3.0])
        assert summary.bias == pytest.approx(0.0)
        assert summary.variance == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            BiasVarianceSummary.from_runs(1.0, [])

    def test_render(self):
        text = BiasVarianceSummary.from_runs(1.0, [1.0, 1.2]).render("ips")
        assert "bias=" in text and "ips" in text


class TestTable:
    def test_renders_rows(self):
        table = paired_error_table(
            ["dm", "dr"],
            [ErrorSummary.from_errors([0.2]), ErrorSummary.from_errors([0.1])],
        )
        assert "dm" in table and "dr" in table
        assert table.count("\n") == 2

    def test_mismatched_lengths(self):
        with pytest.raises(EstimatorError):
            paired_error_table(["a"], [])
