"""REP003 export fixture: implemented but missing from __all__ (line 6)."""

from repro.core.estimators.base import OffPolicyEstimator


class UnexportedEstimator(OffPolicyEstimator):
    """Implements the hook but is not exported from the package."""

    @property
    def name(self):
        """Estimator name."""
        return "unexported"

    def _estimate(self, new_policy, trace, propensities):
        """Degenerate estimate."""
        return None
