"""Graceful estimator degradation: the fallback chain.

Jiang & Li and Farajtabar et al. both sell DR on *graceful degradation*
— when one ingredient (model or propensities) is broken, the estimator
leans on the other.  :class:`EstimatorFallbackChain` applies the same
principle one level up: given an ordered chain such as DR → SNIPS → DM,
it answers with the first link whose input contracts hold, records every
hop it took to get there, and **never degrades silently** — the hops are
written into the result's diagnostics and surfaced by
:meth:`repro.experiments.harness.ExperimentResult.render` and
:meth:`repro.core.reporting.EvaluationReport.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.estimators.base import EstimateResult, OffPolicyEstimator
from repro.core.policy import Policy
from repro.core.propensity import PropensityModel, PropensitySource
from repro.core.types import Trace
from repro.errors import EstimatorError, FallbackExhaustedError
from repro.obs.spans import increment, span

#: Key under which chain metadata lands in ``EstimateResult.diagnostics``.
FALLBACK_DIAGNOSTIC = "fallback"


@dataclass(frozen=True)
class FallbackHop:
    """One link that failed and was fallen through.

    Attributes
    ----------
    link:
        The failing estimator's name.
    error_type, message:
        What it raised.
    declared_modes:
        The link's :attr:`~repro.core.estimators.base.OffPolicyEstimator.failure_modes`,
        so reports can say whether the failure was an anticipated one.
    """

    link: str
    error_type: str
    message: str
    declared_modes: Tuple[str, ...] = ()

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable representation (for diagnostics/ledgers)."""
        return {
            "link": self.link,
            "error_type": self.error_type,
            "message": self.message,
            "declared_modes": list(self.declared_modes),
        }


class EstimatorFallbackChain(OffPolicyEstimator):
    """Try estimators in order; answer with the first that succeeds.

    Each link is attempted with the full inputs; a link raising
    :class:`EstimatorError` (no overlap, singular fit, propensity
    violation, ...) is recorded as a :class:`FallbackHop` and the next
    link is tried.  The successful link's result is returned with a
    ``diagnostics["fallback"]`` entry::

        {"answered_by": "snips", "chain": ["dr", "snips", "dm"],
         "hops": [{"link": "dr", "error_type": "PropensityError", ...}]}

    If every link fails, :class:`FallbackExhaustedError` is raised with
    every hop enumerated — degradation is reported, never masked.
    """

    # The chain defers propensity resolution to its links: a DM tail
    # must stay usable even when the propensity column is the thing
    # that is broken.
    requires_propensities = False

    def __init__(self, links: Sequence[OffPolicyEstimator]):
        if not links:
            raise EstimatorError("fallback chain needs at least one estimator")
        for link in links:
            if not isinstance(link, OffPolicyEstimator):
                raise EstimatorError(
                    f"fallback chain links must be estimators, got "
                    f"{type(link).__name__}"
                )
        self._links: Tuple[OffPolicyEstimator, ...] = tuple(links)

    @property
    def name(self) -> str:
        return "chain(" + ">".join(link.name for link in self._links) + ")"

    @property
    def links(self) -> Tuple[OffPolicyEstimator, ...]:
        """The chain's estimators, in fall-through order."""
        return self._links

    def estimate(
        self,
        new_policy: Policy,
        trace: Trace,
        old_policy: Optional[Policy] = None,
        propensity_model: Optional[PropensityModel] = None,
        propensity_floor: Optional[float] = None,
    ) -> EstimateResult:
        """Estimate via the first link whose contracts hold."""
        hops: List[FallbackHop] = []
        with span("fallback_chain", chain=self.name):
            for link in self._links:
                try:
                    result = link.estimate(
                        new_policy,
                        trace,
                        old_policy=old_policy,
                        propensity_model=propensity_model,
                        propensity_floor=propensity_floor,
                    )
                except EstimatorError as failure:
                    hops.append(
                        FallbackHop(
                            link=link.name,
                            error_type=type(failure).__name__,
                            message=str(failure),
                            declared_modes=link.failure_modes,
                        )
                    )
                    # Telemetry side channel: every hop is countable in
                    # aggregate (total and per failing link), not just
                    # visible in one result's diagnostics.
                    increment("ope.fallback.hops")
                    increment(f"ope.fallback.hops.{link.name}")
                    continue
                diagnostics = dict(result.diagnostics)
                diagnostics[FALLBACK_DIAGNOSTIC] = {
                    "answered_by": link.name,
                    "chain": [l.name for l in self._links],
                    "hops": [hop.to_json() for hop in hops],
                }
                return replace(result, diagnostics=diagnostics)
        detail = "; ".join(
            f"{hop.link}: {hop.error_type}({hop.message})" for hop in hops
        )
        raise FallbackExhaustedError(
            f"every link of {self.name} failed — {detail}"
        )

    def _estimate(self, new_policy, trace, propensities):  # pragma: no cover
        """Unreachable: :meth:`estimate` dispatches to the links directly."""
        raise EstimatorError("EstimatorFallbackChain dispatches via estimate()")


def fallback_metadata(result: EstimateResult) -> Optional[Dict[str, Any]]:
    """The chain metadata of *result*, or ``None`` if it did not come
    from a fallback chain."""
    metadata = result.diagnostics.get(FALLBACK_DIAGNOSTIC)
    if isinstance(metadata, dict):
        return metadata
    return None


def degradation_label(result: EstimateResult) -> Optional[str]:
    """Which link answered, when *result* actually degraded.

    Returns ``None`` both for non-chain results and for chain results
    answered by the first link (no degradation happened).
    """
    metadata = fallback_metadata(result)
    if metadata is None or not metadata.get("hops"):
        return None
    return str(metadata["answered_by"])
