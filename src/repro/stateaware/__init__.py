"""State-aware extensions of DR (paper §4.1 challenges, §4.3 remedies).

Change-point detection (PELT, binary segmentation), state-transition
modelling, state-matched and transition-adjusted DR estimators, and the
self-induced-load simulator for the decision-reward coupling challenge.
"""

from repro.stateaware.changepoint import Segmentation, binary_segmentation, pelt
from repro.stateaware.coupling import CoupledLoadSimulator
from repro.stateaware.estimators import StateMatchedDR, TransitionAdjustedDR
from repro.stateaware.transition import (
    StateTransitionModel,
    TransitionEstimate,
    label_trace_by_hour,
    label_trace_by_segmentation,
)

__all__ = [
    "pelt",
    "binary_segmentation",
    "Segmentation",
    "StateTransitionModel",
    "TransitionEstimate",
    "label_trace_by_hour",
    "label_trace_by_segmentation",
    "StateMatchedDR",
    "TransitionAdjustedDR",
    "CoupledLoadSimulator",
]
