"""Tests for the lazy reader (repro.store.sharded)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.types import Trace
from repro.errors import StoreError, TraceError
from repro.store import ShardedTrace, is_streaming_trace
from repro.store.sharded import ShardChunk

from tests.store.conftest import build_trace


@pytest.fixture
def trace():
    return build_trace(n=50, with_states=True)


@pytest.fixture
def sharded(trace, tmp_path):
    return trace.to_shards(tmp_path / "s", shard_size=13)


class TestContainerProtocol:
    def test_len_and_iteration_order(self, trace, sharded):
        assert len(sharded) == len(trace)
        assert list(sharded) == list(trace)

    def test_integer_indexing(self, trace, sharded):
        assert sharded[0] == trace[0]
        assert sharded[13] == trace[13]  # first record of shard 1
        assert sharded[-1] == trace[-1]
        with pytest.raises(IndexError):
            sharded[50]
        with pytest.raises(IndexError):
            sharded[-51]

    def test_step_one_slice_is_lazy_view(self, trace, sharded):
        view = sharded[5:40]
        assert isinstance(view, ShardedTrace)
        assert len(view) == 35
        assert list(view) == list(trace)[5:40]
        assert view[0] == trace[5]

    def test_nested_views_compose(self, trace, sharded):
        view = sharded[5:40][10:20]
        assert list(view) == list(trace)[15:25]

    def test_stepped_slice_materialises(self, trace, sharded):
        stepped = sharded[0:20:3]
        assert isinstance(stepped, Trace)
        assert list(stepped) == list(trace)[0:20:3]

    def test_take_preserves_order_and_repeats(self, trace, sharded):
        indices = [49, 0, 13, 0, 26]
        taken = sharded.take(indices)
        assert isinstance(taken, Trace)
        assert list(taken) == [trace[i] for i in indices]

    def test_take_out_of_range(self, sharded):
        with pytest.raises(TraceError):
            sharded.take([50])

    def test_subsample_matches_dense_subsample(self, trace, sharded):
        dense = trace.subsample(20, np.random.default_rng(5))
        streamed = sharded.subsample(20, np.random.default_rng(5))
        assert list(streamed) == list(dense)

    def test_subsample_too_large(self, sharded):
        with pytest.raises(TraceError):
            sharded.subsample(51, np.random.default_rng(0))


class TestChunking:
    def test_chunks_cover_trace_in_order(self, trace, sharded):
        records = [record for chunk in sharded.iter_chunks() for record in chunk]
        assert records == list(trace)

    def test_chunks_never_span_shards(self, sharded):
        # shard sizes are 13/13/13/11; a bound of 10 must split at 13s.
        sizes = [len(chunk) for chunk in sharded.iter_chunks(max_records=10)]
        assert sizes == [10, 3, 10, 3, 10, 3, 10, 1]

    def test_chunk_bound_respected(self, sharded):
        for chunk in sharded.iter_chunks(max_records=7):
            assert 1 <= len(chunk) <= 7

    def test_rechunked_sets_default_bound(self, sharded):
        sizes = [len(chunk) for chunk in sharded.rechunked(13).iter_chunks()]
        assert sizes == [13, 13, 13, 11]

    def test_bad_chunk_bounds_rejected(self, sharded, tmp_path):
        with pytest.raises(StoreError):
            sharded.rechunked(0)
        with pytest.raises(StoreError):
            list(sharded.iter_chunks(max_records=0))
        with pytest.raises(StoreError):
            ShardedTrace(tmp_path / "s", chunk_records=0)

    def test_chunk_api(self, trace, sharded):
        chunk = next(sharded.iter_chunks(max_records=5))
        assert isinstance(chunk, ShardChunk)
        assert len(chunk) == 5
        assert chunk.feature_names() == trace.feature_names()
        assert chunk.has_propensities()
        assert list(chunk) == list(trace)[:5]
        assert chunk[2] == trace[2]
        columns = chunk.columns()
        np.testing.assert_array_equal(columns.rewards, trace.columns().rewards[:5])
        assert columns.feature_names() == trace.feature_names()

    def test_chunk_columns_are_views_not_copies(self, sharded):
        chunk = next(sharded.iter_chunks(max_records=5))
        shard_rewards = sharded._store.shard(0).columns.rewards
        assert np.shares_memory(chunk.columns().rewards, shard_rewards)


class TestMetadata:
    def test_feature_names_from_manifest(self, trace, sharded):
        assert sharded.feature_names() == trace.feature_names()

    def test_has_propensities_true(self, sharded):
        assert sharded.has_propensities()

    def test_has_propensities_false(self, tmp_path):
        bare = build_trace(n=10, with_propensities=False)
        sharded = bare.to_shards(tmp_path / "bare", shard_size=4)
        assert not sharded.has_propensities()

    def test_has_propensities_on_boundary_view(self, sharded):
        # A view cutting into a shard cannot use the manifest summary
        # for that shard and must fall back to the decoded column.
        assert sharded[5:20].has_propensities()

    def test_aggregates_match_dense(self, trace, sharded):
        assert sharded.mean_reward() == trace.mean_reward()
        assert sharded.decision_set() == trace.decision_set()
        np.testing.assert_array_equal(sharded.rewards(), trace.rewards())

    def test_columns_escape_hatch(self, trace, sharded):
        np.testing.assert_array_equal(
            sharded.columns().rewards, trace.columns().rewards
        )

    def test_is_streaming_trace(self, trace, sharded):
        assert is_streaming_trace(sharded)
        assert is_streaming_trace(sharded[1:5])
        assert not is_streaming_trace(trace)


class TestCacheAndPickle:
    def test_single_shard_cache_still_correct(self, trace, tmp_path):
        sharded = ShardedTrace(
            trace.to_shards(tmp_path / "s", shard_size=13).directory,
            cache_shards=1,
        )
        assert list(sharded) == list(trace)
        assert sharded[49] == trace[49]
        assert sharded[0] == trace[0]

    def test_cache_bound_enforced(self, sharded):
        list(sharded)  # touch all four shards
        assert len(sharded._store._cache) <= 2

    def test_bad_cache_bound(self, tmp_path, trace):
        directory = trace.to_shards(tmp_path / "s", shard_size=13).directory
        with pytest.raises(StoreError):
            ShardedTrace(directory, cache_shards=0)

    def test_pickle_round_trip_drops_cache(self, trace, sharded):
        list(sharded)  # warm the cache
        clone = pickle.loads(pickle.dumps(sharded))
        assert len(clone._store._cache) == 0
        assert list(clone) == list(trace)

    def test_views_share_one_store(self, sharded):
        assert sharded[0:10]._store is sharded._store


class TestDirectoryValidation:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ShardedTrace(tmp_path / "nope")
