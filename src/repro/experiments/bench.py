"""Estimator and sweep throughput benchmarks (``repro bench``).

Two layers:

* **Estimator micro-benchmark** — how many full estimate() calls per
  second each estimator family sustains on a uniformly-logged synthetic
  trace.  This exercises the columnar trace cache and the batched
  policy/propensity/model APIs directly.
* **fig7a sweep benchmark** — wall-clock for the paper's 50-seed Fig 7a
  sweep, sequentially and with a worker pool, compared against the
  pre-optimisation baseline measured on the same scenario (recorded in
  :data:`PRE_PR_BASELINE`).  Sequential and parallel summaries must be
  identical — the benchmark asserts it on every run.

Results land in ``benchmark_results/BENCH_estimators.json``; CI runs the
quick variant and fails when fig7a throughput regresses more than 25%
against the committed numbers (see :func:`check_against_baseline`).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro import core
from repro.core.estimators import (
    IPS,
    DirectMethod,
    DoublyRobust,
    SelfNormalizedIPS,
    SwitchDR,
)
from repro.core.models import TabularMeanModel
from repro.experiments.fig7 import run_fig7a

DEFAULT_OUTPUT = Path("benchmark_results") / "BENCH_estimators.json"

#: Sequential fig7a sweep measured on this scenario immediately before
#: the columnar-trace / batched-evaluation rewrite; the denominator for
#: the reported speedups.
PRE_PR_BASELINE = {
    "runs": 50,
    "seed": 2017,
    "seconds": 58.958,
    "runs_per_second": 0.848,
}


def _micro_trace(n: int = 2000) -> core.Trace:
    """A uniformly-logged trace with mixed numeric/categorical context."""
    rng = np.random.default_rng(20170805)
    space = core.DecisionSpace(("a", "b", "c"))
    old = core.UniformRandomPolicy(space)
    records = []
    for _ in range(n):
        context = core.ClientContext(
            x=float(rng.integers(0, 5)), isp=f"isp-{rng.integers(0, 2)}"
        )
        decision = old.sample(context, rng)
        base = {"a": 1.0, "b": 2.0, "c": 3.0}[decision]
        reward = base + 0.1 * float(context["x"]) + float(rng.normal(0.0, 0.2))
        records.append(
            core.TraceRecord(
                context=context,
                decision=decision,
                reward=reward,
                propensity=old.propensity(decision, context),
            )
        )
    return core.Trace(records)


def _timed_rate(body: Callable[[], None], repeats: int) -> float:
    """Calls per second of *body* over *repeats* invocations."""
    started = time.perf_counter()
    for _ in range(repeats):
        body()
    elapsed = time.perf_counter() - started
    return repeats / elapsed if elapsed > 0 else float("inf")


def bench_micro(repeats: int = 20, trace_size: int = 2000) -> Dict[str, float]:
    """estimate() calls per second for each estimator family."""
    trace = _micro_trace(trace_size)
    space = core.DecisionSpace(("a", "b", "c"))
    new = core.EpsilonGreedyPolicy(
        core.DeterministicPolicy(space, lambda context: "c"), epsilon=0.2
    )
    old = core.UniformRandomPolicy(space)

    def model() -> TabularMeanModel:
        return TabularMeanModel(key_features=("isp",))

    suites: Dict[str, Callable[[], None]] = {
        "ips": lambda: IPS().estimate(new, trace, old_policy=old),
        "snips": lambda: SelfNormalizedIPS().estimate(new, trace, old_policy=old),
        "dm": lambda: DirectMethod(model()).estimate(new, trace),
        "dr": lambda: DoublyRobust(model()).estimate(new, trace, old_policy=old),
        "switch-dr": lambda: SwitchDR(model()).estimate(
            new, trace, old_policy=old
        ),
    }
    return {
        name: _timed_rate(body, repeats) for name, body in suites.items()
    }


def bench_fig7a(
    runs: int, seed: int, workers: int, repeats: int = 2
) -> Dict[str, object]:
    """Time the fig7a sweep sequentially and with *workers* processes.

    Each mode is timed *repeats* times, interleaved (seq, par, seq, par,
    ...) so slow machine-load drift hits both modes alike, and the best
    time per mode is reported — the measurement with the least noise,
    which is what a throughput comparison between the two modes needs.
    """
    sequential_seconds = float("inf")
    parallel_seconds = float("inf")
    sequential = parallel = None
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        sequential = run_fig7a(runs=runs, seed=seed)
        sequential_seconds = min(
            sequential_seconds, time.perf_counter() - started
        )
        started = time.perf_counter()
        parallel = run_fig7a(runs=runs, seed=seed, workers=workers)
        parallel_seconds = min(parallel_seconds, time.perf_counter() - started)
    if sequential.summaries != parallel.summaries:
        raise SystemExit(
            "parallel execution changed the results: sequential and "
            f"workers={workers} sweeps must produce identical summaries"
        )
    return {
        "runs": runs,
        "seed": seed,
        "sequential_seconds": sequential_seconds,
        "sequential_runs_per_second": runs / sequential_seconds,
        "workers": workers,
        "parallel_seconds": parallel_seconds,
        "parallel_runs_per_second": runs / parallel_seconds,
        "summaries_identical": True,
        "parallel_beats_sequential": parallel_seconds < sequential_seconds,
    }


def run_benchmark(
    runs: int = 50,
    seed: int = 2017,
    workers: int = 4,
    micro_repeats: int = 20,
    output: Optional[Path] = None,
) -> Dict[str, object]:
    """Run both layers, write the JSON payload, and return it."""
    from repro.kernels import get_backend

    fig7a = bench_fig7a(runs, seed, workers)
    payload: Dict[str, object] = {
        "benchmark": "estimators",
        "kernels_backend": get_backend().name,
        "fig7a": fig7a,
        "estimators_per_second": bench_micro(repeats=micro_repeats),
        "pre_pr_baseline": dict(PRE_PR_BASELINE),
        "speedup_vs_pre_pr": {
            "sequential": fig7a["sequential_runs_per_second"]
            / PRE_PR_BASELINE["runs_per_second"],
            "parallel": fig7a["parallel_runs_per_second"]
            / PRE_PR_BASELINE["runs_per_second"],
        },
    }
    if output is not None:
        from repro.ioutil import atomic_write_text

        output.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            output, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    return payload


def check_against_baseline(
    payload: Dict[str, object],
    baseline_path: Path,
    tolerance: float = 0.25,
    parallel_tolerance: float = 0.05,
) -> Optional[str]:
    """``None`` if fig7a throughput is within *tolerance* of the baseline
    at *baseline_path*, else a human-readable failure message.

    The baseline may be a committed JSON (informational — numbers from
    different hardware need a generous tolerance) or the ``--output`` of
    a warmup run in the same job, which is what CI gates on: same
    hardware, same load, so a tight relative tolerance is meaningful.

    Beyond the baseline comparison, the gate asserts the payload is
    internally healthy: parallel throughput must reach at least
    ``(1 - parallel_tolerance)`` of sequential throughput.  This is the
    blind spot that let a parallel-*slower*-than-sequential pool ship
    while the sequential-only gate stayed green; *parallel_tolerance*
    absorbs scheduler noise, not a structurally slower pool.
    """
    measured_parallel = float(payload["fig7a"]["parallel_runs_per_second"])
    measured = float(payload["fig7a"]["sequential_runs_per_second"])
    parallel_floor = (1.0 - parallel_tolerance) * measured
    if measured_parallel < parallel_floor:
        return (
            "fig7a parallel throughput fell behind sequential: "
            f"{measured_parallel:.2f} runs/s with "
            f"workers={payload['fig7a']['workers']} is below "
            f"{parallel_floor:.2f} runs/s "
            f"({parallel_tolerance:.0%} under the sequential "
            f"{measured:.2f} runs/s); the worker pool is overhead, "
            "not parallelism"
        )
    committed = json.loads(Path(baseline_path).read_text())
    reference = float(committed["fig7a"]["sequential_runs_per_second"])
    floor = (1.0 - tolerance) * reference
    if measured < floor:
        return (
            f"fig7a throughput regressed: {measured:.2f} runs/s is below "
            f"{floor:.2f} runs/s ({tolerance:.0%} under the baseline of "
            f"{reference:.2f} runs/s in {baseline_path})"
        )
    return None
