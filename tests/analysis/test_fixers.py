"""Tests for the --fix autofixers (repro.analysis.fixers)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import apply_fixes, lint_paths, plan_fixes, render_diff
from repro.analysis.fixers import SEED_TODO

UNSEEDED = (
    '"""Doc."""\n'
    "\n"
    "import numpy as np\n"
    "\n"
    "rng = np.random.default_rng()\n"
)

BAD_NOQA = (
    '"""Doc."""\n'
    "\n"
    "FIRST = 1  # noqa: REP999\n"
    "SECOND = 2  # noqa: rep001,REP998\n"
)


def lint(path):
    return lint_paths([str(path)])


class TestPlanning:
    def test_plans_seed_injection_for_unseeded_default_rng(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        report = lint(target)
        fixes = plan_fixes(report.violations)
        assert [fix.rule_id for fix in fixes] == ["REP001"]
        assert "default_rng(0)" in fixes[0].new
        assert SEED_TODO in fixes[0].new

    def test_global_draws_not_autofixable(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Doc."""\n\nimport numpy as np\n\nx = np.random.normal()\n'
        )
        report = lint(target)
        assert report.violations  # REP001 fires
        assert plan_fixes(report.violations) == []  # but no mechanical fix

    def test_plans_noqa_normalisation(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_NOQA)
        report = lint(target)
        fixes = plan_fixes(report.warnings)
        assert [fix.line for fix in fixes] == [3, 4]
        # Unknown code alone: the whole comment goes away.
        assert "noqa" not in fixes[0].new
        # Mixed: unknown dropped, known canonicalised to upper-case.
        assert fixes[1].new.endswith("# noqa: REP001")

    def test_sources_override_skips_disk(self):
        from repro.analysis import Violation

        violation = Violation(
            path="virtual.py",
            line=1,
            rule_id="REP001",
            message="m",
            detail="unseeded-default-rng",
        )
        fixes = plan_fixes(
            [violation], sources={"virtual.py": ["x = np.random.default_rng()"]}
        )
        assert len(fixes) == 1
        assert fixes[0].new.startswith("x = np.random.default_rng(0)")


class TestApplyAndDiff:
    def test_apply_rewrites_and_relint_goes_clean(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        report = lint(target)
        applied = apply_fixes(plan_fixes(report.violations))
        assert applied == {str(target): 1}
        assert "default_rng(0)" in target.read_text()
        assert lint(target).ok

    def test_noqa_fix_clears_the_warning(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_NOQA)
        report = lint(target)
        apply_fixes(plan_fixes(report.warnings))
        after = lint(target)
        assert after.warnings == ()
        assert "REP999" not in target.read_text()

    def test_stale_plan_is_skipped_not_misapplied(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        fixes = plan_fixes(lint(target).violations)
        target.write_text('"""Doc."""\n\nVALUE = 1\n')  # file changed under us
        applied = apply_fixes(fixes)
        assert applied == {str(target): 0}
        assert target.read_text() == '"""Doc."""\n\nVALUE = 1\n'

    def test_diff_shows_minus_and_plus_lines(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        diff = render_diff(plan_fixes(lint(target).violations))
        assert f"--- a/{target}" in diff
        assert f"+++ b/{target}" in diff
        assert "-rng = np.random.default_rng()" in diff
        assert "+rng = np.random.default_rng(0)" in diff
        # Dry run must not touch the file.
        assert target.read_text() == UNSEEDED

    def test_trailing_newline_preserved(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(UNSEEDED)
        apply_fixes(plan_fixes(lint(target).violations))
        assert target.read_text().endswith("\n")
