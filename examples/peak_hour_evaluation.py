#!/usr/bin/env python3
"""System-state-aware evaluation: morning trace, peak-hour deployment.

The §4.1 "system state of the world" challenge: the trace was collected
mostly in quiet morning hours, but the new policy will run at peak.
This example labels the trace by state, estimates the morning→peak
transition ratio from the few peak samples, and compares naive DR with
the two §4.3 remedies (state matching, transition adjustment).

Run:  python examples/peak_hour_evaluation.py
"""

from __future__ import annotations

import numpy as np

from repro import core
from repro.core.types import Trace, TraceRecord
from repro.stateaware import (
    StateMatchedDR,
    StateTransitionModel,
    TransitionAdjustedDR,
)
from repro.workloads import SyntheticWorkload

PEAK_FRACTION = 0.08      # "a few samples from various network states"
PEAK_DEGRADATION = 0.8    # peak performance is 20% worse (§4.3's example)


def main() -> None:
    rng = np.random.default_rng(41)
    workload = SyntheticWorkload(noise_scale=0.25)
    old = workload.logging_policy(epsilon=0.3)
    new = workload.optimal_policy()
    population = workload.population()

    # Build a state-labelled trace: mostly morning, a sliver of peak.
    records = []
    truth_total = 0.0
    n = 4000
    for _ in range(n):
        context = population.sample(rng)
        state = "peak" if rng.uniform() < PEAK_FRACTION else "morning"
        factor = PEAK_DEGRADATION if state == "peak" else 1.0
        decision = old.sample(context, rng)
        reward = factor * workload.true_mean_reward(context, decision) + rng.normal(
            0.0, workload.noise_scale
        )
        records.append(
            TraceRecord(
                context,
                decision,
                float(reward),
                propensity=old.propensity(decision, context),
                state=state,
            )
        )
        for d, p in new.probabilities(context).items():
            truth_total += p * PEAK_DEGRADATION * workload.true_mean_reward(context, d)
    trace = Trace(records)
    truth = truth_total / n
    peak_records = trace.filter(lambda r: r.state == "peak")
    print(f"trace: {len(trace)} records, {len(peak_records)} at peak "
          f"({len(peak_records) / len(trace):.0%})")

    # The estimated transition function (paper: "identify the transition
    # function" from a few samples per state).
    transition = StateTransitionModel().fit(trace)
    estimate = transition.transition("morning", "peak")
    print(f"estimated morning->peak reward ratio: {estimate.ratio:.3f} "
          f"(true {PEAK_DEGRADATION})\n")

    model_factory = lambda: core.TabularMeanModel(key_features=("f0",))
    naive = core.DoublyRobust(model_factory()).estimate(new, trace, old_policy=old)
    matched = StateMatchedDR(model_factory, target_state="peak").estimate(
        new, trace, old_policy=old
    )
    adjusted = TransitionAdjustedDR(model_factory, target_state="peak").estimate(
        new, trace, old_policy=old
    )

    print(f"ground-truth peak-hour value of the new policy: {truth:.4f}\n")
    print(f"{'estimator':<28} {'estimate':>9} {'rel.err':>8} {'records used':>13}")
    for name, result in (
        ("naive DR (state-blind)", naive),
        ("state-matched DR", matched),
        ("transition-adjusted DR", adjusted),
    ):
        print(f"{name:<28} {result.value:9.4f} "
              f"{core.relative_error(truth, result.value):8.4f} {result.n:13d}")

    print("\n-> naive DR reports the morning world; matching is unbiased "
          "but uses only the peak sliver; the transition adjustment uses "
          "everything (paper §4.3).")


if __name__ == "__main__":
    main()
