"""Ground-truth video quality for the CFA scenario.

CFA (the paper's [15]) predicts video QoE from client features with
strong feature interactions — quality depends on which CDN serves which
ASN, what the device can decode, and the chosen bitrate.  We realise a
fixed random ground truth with those interaction structures: per-seed
random effect tables for (asn, cdn), (device, bitrate) and a bitrate
utility curve, so the function is reproducible, smooth in nothing, and
definitely not additive.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

from repro.core.types import ClientContext, Decision
from repro.errors import SimulationError


class QualityFunction:
    """A fixed random ground-truth quality surface.

    ``quality(c, (cdn, bitrate)) = base
        + asn_cdn_effect[c.asn, cdn]
        + device_bitrate_effect[c.device, bitrate]
        + bitrate_utility(bitrate)
        + city_effect[c.city]``

    Effects are drawn once from *seed*; :meth:`observe` adds i.i.d.
    Gaussian noise on top for trace generation.

    Parameters
    ----------
    asns, cities, devices:
        Feature vocabularies.
    cdns, bitrates:
        Decision factor vocabularies.
    interaction_scale:
        Standard deviation of the random interaction effects; the larger
        it is, the more a purely additive model is misspecified.
    noise_scale:
        Observation noise added by :meth:`observe`.
    """

    def __init__(
        self,
        asns: Tuple[Hashable, ...],
        cities: Tuple[Hashable, ...],
        devices: Tuple[Hashable, ...],
        cdns: Tuple[Hashable, ...],
        bitrates: Tuple[float, ...],
        seed: int = 0,
        base_quality: float = 3.0,
        interaction_scale: float = 0.8,
        noise_scale: float = 0.25,
    ):
        for name, values in (
            ("asns", asns),
            ("cities", cities),
            ("devices", devices),
            ("cdns", cdns),
            ("bitrates", bitrates),
        ):
            if not values:
                raise SimulationError(f"{name} must be non-empty")
        if interaction_scale < 0 or noise_scale < 0:
            raise SimulationError("scales must be non-negative")
        rng = np.random.default_rng(seed)
        self._base = float(base_quality)
        self._noise_scale = float(noise_scale)
        self._asn_cdn: Dict[Tuple[Hashable, Hashable], float] = {
            (asn, cdn): float(rng.normal(0.0, interaction_scale))
            for asn in asns
            for cdn in cdns
        }
        self._device_bitrate: Dict[Tuple[Hashable, float], float] = {
            (device, bitrate): float(rng.normal(0.0, interaction_scale / 2.0))
            for device in devices
            for bitrate in bitrates
        }
        self._city: Dict[Hashable, float] = {
            city: float(rng.normal(0.0, interaction_scale / 2.0)) for city in cities
        }
        max_bitrate = max(bitrates)
        self._bitrate_utility: Dict[float, float] = {
            bitrate: float(np.log1p(3.0 * bitrate / max_bitrate)) for bitrate in bitrates
        }

    def mean_quality(self, context: ClientContext, decision: Decision) -> float:
        """Noise-free quality of (context, decision)."""
        cdn, bitrate = decision
        try:
            return (
                self._base
                + self._asn_cdn[(context["asn"], cdn)]
                + self._device_bitrate[(context["device"], bitrate)]
                + self._city[context["city"]]
                + self._bitrate_utility[bitrate]
            )
        except KeyError as exc:
            raise SimulationError(
                f"unknown feature/decision value in quality lookup: {exc}"
            ) from exc

    def observe(
        self, context: ClientContext, decision: Decision, rng: np.random.Generator
    ) -> float:
        """One noisy quality observation."""
        return float(
            self.mean_quality(context, decision) + rng.normal(0.0, self._noise_scale)
        )
